"""Tests for NoC traffic generation, link-trace simulation and power."""

import numpy as np
import pytest

from repro.noc.power import optimize_vertical_links
from repro.noc.simulation import simulate_link_traces
from repro.noc.topology import MeshTopology
from repro.noc.traffic import (
    Packet,
    hotspot_traffic,
    transpose_traffic,
    uniform_traffic,
)


@pytest.fixture(scope="module")
def topo():
    return MeshTopology(3, 3, 2)


class TestTraffic:
    def test_uniform_no_self_packets(self, topo):
        trace = uniform_traffic(topo, 100, rng=np.random.default_rng(0))
        assert len(trace.packets) == 100
        assert all(p.source != p.destination for p in trace.packets)

    def test_hotspot_biases_destination(self, topo):
        hotspot = (1, 1, 0)
        trace = hotspot_traffic(
            topo, 400, hotspot=hotspot, hotspot_fraction=0.7,
            rng=np.random.default_rng(1),
        )
        hits = sum(p.destination == hotspot for p in trace.packets)
        assert hits > 0.5 * len(trace.packets)

    def test_hotspot_validation(self, topo):
        with pytest.raises(ValueError):
            hotspot_traffic(topo, 10, hotspot=(9, 9, 9))
        with pytest.raises(ValueError):
            hotspot_traffic(topo, 10, hotspot=(0, 0, 0), hotspot_fraction=1.5)

    def test_transpose_pairs(self, topo):
        trace = transpose_traffic(topo, rng=np.random.default_rng(2))
        for packet in trace.packets:
            x, y, z = packet.source
            assert packet.destination == (y, x, topo.nz - 1 - z)

    def test_transpose_needs_square(self):
        with pytest.raises(ValueError):
            transpose_traffic(MeshTopology(2, 3, 2))

    def test_payload_kinds(self, topo):
        rng = np.random.default_rng(3)
        random_trace = uniform_traffic(topo, 20, payload="random", rng=rng)
        gauss_trace = uniform_traffic(topo, 20, payload="gaussian", rng=rng)
        for trace in (random_trace, gauss_trace):
            for packet in trace.packets:
                assert (packet.flits >= 0).all()
                assert (packet.flits < (1 << trace.flit_width)).all()
        with pytest.raises(ValueError):
            uniform_traffic(topo, 5, payload="morse", rng=rng)

    def test_packet_validation(self):
        with pytest.raises(ValueError):
            Packet((0, 0, 0), (1, 0, 0), np.array([], dtype=np.int64))


class TestSimulation:
    def test_flit_conservation_per_hop(self, topo):
        """Every link a packet traverses carries all of its flits."""
        rng = np.random.default_rng(4)
        trace = uniform_traffic(topo, 30, flits_per_packet=5, rng=rng)
        traces = simulate_link_traces(topo, trace, idle="zero")
        from repro.noc.routing import path_links, xyz_route

        expected = {}
        for packet in trace.packets:
            for hop in path_links(
                xyz_route(topo, packet.source, packet.destination)
            ):
                expected[hop] = expected.get(hop, 0) + len(packet.flits)
        for hop, count in expected.items():
            carried = traces.trace(*hop)
            # idle cycles add at most (packets-1) extra words.
            assert len(carried) >= count

    def test_single_packet_trace_is_verbatim(self, topo):
        rng = np.random.default_rng(5)
        trace = uniform_traffic(topo, 1, flits_per_packet=6, rng=rng)
        traces = simulate_link_traces(topo, trace)
        packet = trace.packets[0]
        from repro.noc.routing import path_links, xyz_route

        hop = path_links(
            xyz_route(topo, packet.source, packet.destination)
        )[0]
        np.testing.assert_array_equal(traces.trace(*hop), packet.flits)

    def test_idle_modes_differ(self, topo):
        rng = np.random.default_rng(6)
        trace = hotspot_traffic(topo, 40, hotspot=(0, 0, 1), rng=rng)
        hold = simulate_link_traces(topo, trace, idle="hold")
        zero = simulate_link_traces(topo, trace, idle="zero")
        busiest = max(hold.utilization(), key=hold.utilization().get)
        assert len(hold.trace(*busiest)) == len(zero.trace(*busiest))
        assert (hold.trace(*busiest) != zero.trace(*busiest)).any()

    def test_unknown_idle_mode(self, topo):
        trace = uniform_traffic(topo, 2, rng=np.random.default_rng(7))
        with pytest.raises(ValueError):
            simulate_link_traces(topo, trace, idle="tristate")

    def test_missing_link_raises(self, topo):
        trace = uniform_traffic(topo, 1, rng=np.random.default_rng(8))
        traces = simulate_link_traces(topo, trace)
        with pytest.raises(KeyError):
            traces.trace((0, 0, 0), (0, 0, 9))

    def test_bits_shape(self, topo):
        rng = np.random.default_rng(9)
        trace = uniform_traffic(topo, 20, flit_width=9, rng=rng)
        traces = simulate_link_traces(topo, trace)
        hop = next(iter(traces.words))
        bits = traces.bits(*hop)
        assert bits.shape[1] == 9
        assert set(np.unique(bits)) <= {0, 1}


class TestVerticalPower:
    def test_network_report(self, topo):
        rng = np.random.default_rng(10)
        trace = hotspot_traffic(
            topo, 120, hotspot=(1, 1, 0), flit_width=9,
            flits_per_packet=12, rng=rng,
        )
        traces = simulate_link_traces(topo, trace)
        report = optimize_vertical_links(
            traces, sa_steps=40, baseline_samples=15,
            rng=np.random.default_rng(0),
        )
        assert report.n_links > 0
        # The assignment is free and must pay; combining with the code
        # must beat the code alone.
        assert report.assigned < report.plain
        assert report.coded_assigned < report.coded
        assert report.reduction("assigned") > 0.0

    def test_no_traffic_raises(self):
        flat = MeshTopology(2, 2, 1)  # no vertical links at all
        trace = uniform_traffic(flat, 10, rng=np.random.default_rng(11))
        traces = simulate_link_traces(flat, trace)
        with pytest.raises(ValueError):
            optimize_vertical_links(traces)
