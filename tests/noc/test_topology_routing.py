"""Tests for the 3-D mesh topology and XYZ routing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.routing import ORDERS, path_links, xyz_route
from repro.noc.topology import Link, MeshTopology


class TestLink:
    def test_vertical_flag(self):
        assert Link((0, 0, 0), (0, 0, 1)).vertical
        assert not Link((0, 0, 0), (1, 0, 0)).vertical

    def test_rejects_non_adjacent(self):
        with pytest.raises(ValueError):
            Link((0, 0, 0), (2, 0, 0))
        with pytest.raises(ValueError):
            Link((0, 0, 0), (1, 1, 0))
        with pytest.raises(ValueError):
            Link((0, 0, 0), (0, 0, 0))


class TestMesh:
    def test_counts(self):
        topo = MeshTopology(3, 2, 2)
        assert topo.n_routers == 12
        # Directed links: x: 2*2*2*2=8... count via formula below.
        expected = 2 * (
            (topo.nx - 1) * topo.ny * topo.nz
            + topo.nx * (topo.ny - 1) * topo.nz
            + topo.nx * topo.ny * (topo.nz - 1)
        )
        assert len(topo.links()) == expected

    def test_vertical_links_count(self):
        topo = MeshTopology(2, 2, 3)
        assert len(topo.vertical_links()) == 2 * 2 * 2 * 2  # 2 per pair, 2 pairs

    def test_validation(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 2, 2)
        topo = MeshTopology(2, 2, 2)
        with pytest.raises(ValueError):
            topo.node_index((5, 0, 0))
        with pytest.raises(ValueError):
            topo.neighbors((0, 0, 9))

    def test_node_index_bijection(self):
        topo = MeshTopology(3, 2, 2)
        indices = {topo.node_index(n) for n in topo.nodes()}
        assert indices == set(range(12))

    def test_corner_has_three_neighbors(self):
        topo = MeshTopology(3, 3, 3)
        assert len(topo.neighbors((0, 0, 0))) == 3
        assert len(topo.neighbors((1, 1, 1))) == 6


class TestRouting:
    def test_known_path_xyz(self):
        topo = MeshTopology(3, 3, 2)
        path = xyz_route(topo, (0, 0, 0), (2, 1, 1), order="xyz")
        assert path == [
            (0, 0, 0), (1, 0, 0), (2, 0, 0), (2, 1, 0), (2, 1, 1),
        ]

    def test_zxy_crosses_stack_first(self):
        topo = MeshTopology(3, 3, 2)
        path = xyz_route(topo, (0, 0, 0), (2, 1, 1), order="zxy")
        assert path[1] == (0, 0, 1)

    def test_self_route(self):
        topo = MeshTopology(2, 2, 2)
        assert xyz_route(topo, (1, 1, 1), (1, 1, 1)) == [(1, 1, 1)]

    def test_rejects_unknown_order(self):
        topo = MeshTopology(2, 2, 2)
        with pytest.raises(ValueError):
            xyz_route(topo, (0, 0, 0), (1, 1, 1), order="yzx")

    def test_rejects_outside_nodes(self):
        topo = MeshTopology(2, 2, 2)
        with pytest.raises(ValueError):
            xyz_route(topo, (0, 0, 0), (5, 0, 0))

    def test_path_links(self):
        hops = path_links([(0, 0, 0), (1, 0, 0), (1, 1, 0)])
        assert hops == [((0, 0, 0), (1, 0, 0)), ((1, 0, 0), (1, 1, 0))]


@settings(max_examples=40, deadline=None)
@given(
    dims=st.tuples(st.integers(1, 4), st.integers(1, 4), st.integers(1, 3)),
    seed=st.integers(0, 2**31 - 1),
    order=st.sampled_from(ORDERS),
)
def test_route_is_minimal_and_valid(dims, seed, order):
    """Routes are shortest paths made of valid adjacent hops."""
    topo = MeshTopology(*dims)
    rng = np.random.default_rng(seed)
    nodes = list(topo.nodes())
    src = nodes[rng.integers(len(nodes))]
    dst = nodes[rng.integers(len(nodes))]
    path = xyz_route(topo, src, dst, order=order)
    assert path[0] == src and path[-1] == dst
    manhattan = sum(abs(a - b) for a, b in zip(src, dst))
    assert len(path) == manhattan + 1
    for a, b in path_links(path):
        Link(a, b)  # raises if not adjacent
