"""Tests for result/assignment serialization."""

import json

import numpy as np
import pytest

from repro.core.assignment import SignedPermutation
from repro.experiments.common import ExperimentRow
from repro.reporting import (
    assignment_from_dict,
    assignment_from_json,
    assignment_to_dict,
    assignment_to_json,
    rows_to_csv,
    rows_to_json,
    rows_to_records,
)


@pytest.fixture()
def rows():
    return [
        ExperimentRow("alpha", {"optimal": 0.25, "spiral": 0.1}),
        ExperimentRow("beta", {"optimal": 0.5, "extra": 1.0}),
    ]


class TestRows:
    def test_records(self, rows):
        records = rows_to_records(rows)
        assert records[0] == {"label": "alpha", "optimal": 0.25, "spiral": 0.1}
        assert records[1]["extra"] == 1.0  # repro: noqa[REP004] exact round-trip

    def test_json_roundtrip(self, rows):
        parsed = json.loads(rows_to_json(rows))
        assert len(parsed) == 2
        assert parsed[0]["label"] == "alpha"

    def test_csv_union_columns(self, rows):
        text = rows_to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0] == "label,optimal,spiral,extra"
        assert lines[1].startswith("alpha,0.25,0.1,")
        assert lines[2].endswith("1.0")

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""


class TestAssignments:
    def test_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        assignment = SignedPermutation.random(6, rng, with_inversions=True)
        again = assignment_from_dict(assignment_to_dict(assignment))
        assert again == assignment

    def test_json_roundtrip(self):
        assignment = SignedPermutation.from_sequence([2, 0, 1], [True, False, False])
        again = assignment_from_json(assignment_to_json(assignment))
        assert again == assignment

    def test_from_dict_validates(self):
        with pytest.raises(ValueError):
            assignment_from_dict({"line_of_bit": [0, 0], "inverted": [False, False]})
        with pytest.raises(ValueError):
            assignment_from_dict({"nope": 1})
