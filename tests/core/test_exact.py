"""Tests for the exact branch-and-bound / inversion solvers."""

import numpy as np
import pytest

from repro.core.exact import (
    alternating_exact,
    branch_and_bound,
    optimal_inversions,
)
from repro.core.optimize import exhaustive_search
from repro.core.power import PowerModel
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


def instance(n=6, seed=0, rows=2):
    geom = TSVArrayGeometry(rows=rows, cols=n // rows, pitch=8e-6,
                            radius=2e-6)
    cap = CapacitanceExtractor(geom, method="compact").extract()
    rng = np.random.default_rng(seed)
    bits = (rng.random((400, n)) < rng.uniform(0.2, 0.8, n)).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    return stats, cap


class TestBranchAndBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_exhaustive(self, seed):
        stats, cap = instance(6, seed)
        model = PowerModel(stats, cap)
        exact = exhaustive_search(model.power, 6, with_inversions=False)
        assignment, cost, nodes = branch_and_bound(stats, cap)
        assert cost == pytest.approx(exact.power, rel=1e-12)
        assert model.power(assignment) == pytest.approx(cost, rel=1e-12)
        assert nodes < 720  # strictly fewer nodes than enumeration

    def test_respects_fixed_inversions(self):
        stats, cap = instance(4, 5, rows=2)
        inverted = (True, False, True, False)
        assignment, cost, _ = branch_and_bound(stats, cap, inverted=inverted)
        assert assignment.inverted == inverted
        model = PowerModel(stats, cap)
        assert model.power(assignment) == pytest.approx(cost, rel=1e-12)

    def test_node_limit(self):
        stats, cap = instance(6, 0)
        with pytest.raises(RuntimeError):
            branch_and_bound(stats, cap, node_limit=3)

    def test_size_validation(self):
        stats, cap = instance(6, 0)
        with pytest.raises(ValueError):
            branch_and_bound(stats, np.eye(4))
        with pytest.raises(ValueError):
            branch_and_bound(stats, cap, inverted=(False,) * 3)


class TestOptimalInversions:
    def test_matches_pinned_exhaustive(self):
        stats, cap = instance(5, 7, rows=1)
        from repro.core.assignment import AssignmentConstraints

        model = PowerModel(stats, cap)
        line_of_bit = [2, 0, 4, 1, 3]
        constraints = AssignmentConstraints(
            pinned={b: l for b, l in enumerate(line_of_bit)}
        )
        exact = exhaustive_search(
            model.power, 5, with_inversions=True, constraints=constraints
        )
        assignment, cost = optimal_inversions(stats, cap, line_of_bit)
        assert cost == pytest.approx(exact.power, rel=1e-12)
        assert assignment.line_of_bit == tuple(line_of_bit)

    def test_respects_invertible_subset(self):
        stats, cap = instance(4, 8, rows=2)
        assignment, _ = optimal_inversions(
            stats, cap, [0, 1, 2, 3], invertible=[1]
        )
        assert not assignment.inverted[0]
        assert not assignment.inverted[2]
        assert not assignment.inverted[3]

    def test_refuses_huge_enumeration(self):
        stats, cap = instance(4, 0, rows=2)
        with pytest.raises(ValueError):
            optimal_inversions(stats, cap, [0, 1, 2, 3], max_bits=2)

    def test_never_worse_than_no_inversions(self):
        stats, cap = instance(6, 9)
        model = PowerModel(stats, cap)
        from repro.core.assignment import SignedPermutation

        base = SignedPermutation.identity(6)
        _, cost = optimal_inversions(stats, cap, base.line_of_bit)
        assert cost <= model.power(base) + 1e-25


class TestAlternating:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_close_to_joint_optimum(self, seed):
        stats, cap = instance(6, seed)
        model = PowerModel(stats, cap)
        exact = exhaustive_search(model.power, 6, with_inversions=True)
        assignment, cost = alternating_exact(stats, cap)
        assert model.power(assignment) == pytest.approx(cost, rel=1e-12)
        assert cost <= exact.power * 1.05  # within a few percent, often exact

    def test_beats_unsigned_optimum(self):
        # With inversions available the result can only improve on the
        # unsigned branch-and-bound optimum.
        stats, cap = instance(6, 2)
        _, unsigned_cost, _ = branch_and_bound(stats, cap)
        _, signed_cost = alternating_exact(stats, cap)
        assert signed_cost <= unsigned_cost + 1e-25
