"""Tests for the Spiral and Sawtooth systematic assignments (Fig. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import SignedPermutation
from repro.core.power import PowerModel
from repro.core.systematic import (
    activity_sorted_assignment,
    greedy_coupling_assignment,
    sawtooth_assignment,
    sawtooth_order,
    spiral_assignment,
    spiral_assignment_for_stats,
    spiral_order,
)
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import PositionClass, TSVArrayGeometry
from repro.tsv.matrices import total_capacitance


def geom(rows, cols, pitch=8e-6, radius=2e-6):
    return TSVArrayGeometry(rows=rows, cols=cols, pitch=pitch, radius=radius)


class TestSpiralOrder:
    def test_3x3_walk(self):
        g = geom(3, 3)
        # clockwise from (0,0): perimeter then centre
        assert spiral_order(g) == [0, 1, 2, 5, 8, 7, 6, 3, 4]

    def test_4x4_walk_starts_on_perimeter_ends_inside(self):
        g = geom(4, 4)
        order = spiral_order(g)
        assert sorted(order) == list(range(16))
        outer = [i for i in order[:12]]
        inner = [i for i in order[12:]]
        assert all(g.position_class(i) != PositionClass.MIDDLE for i in outer)
        assert all(g.position_class(i) == PositionClass.MIDDLE for i in inner)

    def test_single_row(self):
        g = geom(1, 4)
        assert spiral_order(g) == [0, 1, 2, 3]

    def test_single_column(self):
        g = geom(4, 1)
        assert spiral_order(g) == [0, 1, 2, 3]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(1, 6))
def test_spiral_order_is_permutation(rows, cols):
    g = geom(rows, cols)
    assert sorted(spiral_order(g)) == list(range(rows * cols))


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6))
def test_spiral_order_steps_are_adjacent(rows, cols):
    """Consecutive spiral positions are direct neighbours in the array."""
    g = geom(rows, cols)
    order = spiral_order(g)
    for a, b in zip(order, order[1:]):
        assert b in g.direct_neighbors(a)


class TestSawtoothOrder:
    def test_4x4_matches_fig1b(self):
        g = geom(4, 4)
        expected = [
            g.index(0, 0), g.index(1, 0), g.index(0, 1), g.index(1, 1),
            g.index(0, 2), g.index(1, 2), g.index(0, 3), g.index(1, 3),
            g.index(2, 0), g.index(2, 1), g.index(2, 2), g.index(2, 3),
            g.index(3, 0), g.index(3, 1), g.index(3, 2), g.index(3, 3),
        ]
        assert sawtooth_order(g) == expected

    def test_single_row(self):
        g = geom(1, 5)
        assert sawtooth_order(g) == [0, 1, 2, 3, 4]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(2, 6))
def test_sawtooth_order_is_permutation(rows, cols):
    g = geom(rows, cols)
    assert sorted(sawtooth_order(g)) == list(range(rows * cols))


class TestSpiralAssignment:
    def test_lsb_lands_on_corner_msb_in_middle(self):
        g = geom(4, 4)
        a = spiral_assignment(g)
        assert g.position_class(a.line_of_bit[0]) == PositionClass.CORNER
        assert g.position_class(a.line_of_bit[15]) == PositionClass.MIDDLE

    def test_no_inversions(self):
        a = spiral_assignment(geom(3, 3))
        assert not any(a.inverted)

    def test_rejects_bad_activity_order(self):
        with pytest.raises(ValueError):
            spiral_assignment(geom(2, 2), activity_order=[0, 0, 1, 2])

    def test_stats_ranking_places_stable_lines_innermost(self):
        g = geom(3, 3)
        self_sw = np.array([0.5] * 8 + [0.0])  # bit 8 stable
        stats = BitStatistics.from_moments(
            self_sw, np.zeros((9, 9)), np.full(9, 0.5)
        )
        a = spiral_assignment_for_stats(g, stats)
        # The stable bit must take the last spiral position (array centre).
        assert a.line_of_bit[8] == g.index(1, 1)

    def test_stats_size_mismatch(self):
        g = geom(3, 3)
        stats = BitStatistics.from_moments(
            np.full(4, 0.5), np.zeros((4, 4)), np.full(4, 0.5)
        )
        with pytest.raises(ValueError):
            spiral_assignment_for_stats(g, stats)


class TestSawtoothAssignment:
    def test_msb_on_corner_next_on_adjacent_edge(self):
        g = geom(4, 4)
        a = sawtooth_assignment(g)
        msb_line = a.line_of_bit[15]
        next_line = a.line_of_bit[14]
        assert g.position_class(msb_line) == PositionClass.CORNER
        assert next_line in g.direct_neighbors(msb_line)

    def test_no_inversions(self):
        assert not any(sawtooth_assignment(geom(4, 4)).inverted)

    def test_rejects_bad_significance_order(self):
        with pytest.raises(ValueError):
            sawtooth_assignment(geom(2, 2), significance_order=[3, 3, 1, 0])


class TestGreedyCouplingRule:
    def test_starts_like_fig1b_sawtooth(self):
        """The recursive biggest-accumulated-coupling rule opens exactly like
        Fig. 1.b: MSB on a corner, next bit on a direct adjacent edge TSV,
        and the first four placements zigzag through a 2x2 corner block.
        (Further in, the strict rule deviates from the closed-form sawtooth
        with our extracted matrices — the closed form stays within a few
        percent in power, tested below.)"""
        g = geom(4, 4)
        cap = CapacitanceExtractor(g, method="compact").extract()
        greedy = greedy_coupling_assignment(g, cap)
        walk = [greedy.line_of_bit[b] for b in range(15, -1, -1)]
        assert g.position_class(walk[0]) == PositionClass.CORNER
        assert walk[1] in g.direct_neighbors(walk[0])
        block = {g.row_col(i) for i in walk[:4]}
        rows = {r for r, _ in block}
        cols = {c for _, c in block}
        assert len(block) == 4 and len(rows) == 2 and len(cols) == 2

    def test_power_close_to_closed_form_sawtooth(self):
        """On mean-free Gaussian statistics the closed-form sawtooth is a
        faithful stand-in for the greedy rule (and vice versa)."""
        from repro.stats.dbt import dbt_statistics

        g = geom(4, 4)
        cap = CapacitanceExtractor(g, method="compact").extract()
        stats = dbt_statistics(16, sigma=256.0, rho=0.0)
        model = PowerModel(stats, cap)
        p_greedy = model.power(greedy_coupling_assignment(g, cap))
        p_closed = model.power(sawtooth_assignment(g))
        assert p_closed == pytest.approx(p_greedy, rel=0.05)

    def test_rejects_size_mismatch(self):
        g = geom(3, 3)
        with pytest.raises(ValueError):
            greedy_coupling_assignment(g, np.eye(4))


class TestActivitySorted:
    def test_is_exact_optimum_for_uncorrelated_balanced(self):
        """Eq. 12: with T_c = 0 and balanced probabilities the sorted
        assignment must beat or match every other permutation."""
        g = geom(2, 2)
        cap = CapacitanceExtractor(g, method="compact").extract()
        rng = np.random.default_rng(3)
        self_sw = rng.uniform(0.1, 0.9, 4)
        stats = BitStatistics.from_moments(
            self_sw, np.zeros((4, 4)), np.full(4, 0.5)
        )
        model = PowerModel(stats, cap)
        best = activity_sorted_assignment(g, cap, stats)
        best_power = model.power(best)
        import itertools
        for perm in itertools.permutations(range(4)):
            other = SignedPermutation.from_sequence(perm)
            assert best_power <= model.power(other) + 1e-20

    def test_high_activity_on_low_capacitance(self):
        g = geom(3, 3)
        cap = CapacitanceExtractor(g, method="compact").extract()
        self_sw = np.linspace(0.9, 0.1, 9)  # bit 0 most active
        stats = BitStatistics.from_moments(
            self_sw, np.zeros((9, 9)), np.full(9, 0.5)
        )
        a = activity_sorted_assignment(g, cap, stats)
        totals = total_capacitance(cap)
        assert a.line_of_bit[0] == int(np.argmin(totals))
        assert a.line_of_bit[8] == int(np.argmax(totals))
