"""Tests for signed permutations (the A_pi algebra)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.stats.switching import BitStatistics


def random_perm_strategy(n_max=8):
    return st.integers(2, n_max).flatmap(
        lambda n: st.tuples(
            st.permutations(range(n)),
            st.lists(st.booleans(), min_size=n, max_size=n),
        )
    ).map(lambda t: SignedPermutation.from_sequence(t[0], t[1]))


class TestConstruction:
    def test_identity(self):
        p = SignedPermutation.identity(3)
        assert p.line_of_bit == (0, 1, 2)
        assert p.inverted == (False, False, False)

    def test_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            SignedPermutation((0, 0, 1), (False,) * 3)

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            SignedPermutation((0, 1), (False,))

    def test_paper_example_matrix(self):
        # Eq. 5: bit 3 negated -> line 1, bit 1 -> line 2, bit 2 -> line 3
        # (1-indexed in the paper).
        a = np.array([
            [0, 0, -1],
            [1, 0, 0],
            [0, 1, 0],
        ])
        p = SignedPermutation.from_matrix(a)
        assert p.line_of_bit == (1, 2, 0)
        assert p.inverted == (False, False, True)
        np.testing.assert_allclose(p.matrix(), a)

    def test_from_matrix_rejects_invalid(self):
        with pytest.raises(ValueError):
            SignedPermutation.from_matrix(np.array([[1, 1], [0, 1]]))
        with pytest.raises(ValueError):
            SignedPermutation.from_matrix(np.array([[2, 0], [0, 1]]))

    def test_random_without_inversions(self):
        rng = np.random.default_rng(0)
        p = SignedPermutation.random(6, rng)
        assert not any(p.inverted)


@settings(max_examples=50, deadline=None)
@given(random_perm_strategy())
def test_matrix_roundtrip(perm):
    again = SignedPermutation.from_matrix(perm.matrix())
    assert again == perm


@settings(max_examples=50, deadline=None)
@given(random_perm_strategy())
def test_matrix_is_signed_orthogonal(perm):
    a = perm.matrix()
    np.testing.assert_allclose(a @ a.T, np.eye(perm.n_bits), atol=1e-12)


@settings(max_examples=50, deadline=None)
@given(random_perm_strategy())
def test_inverse_matrix_is_transpose(perm):
    np.testing.assert_allclose(perm.inverse().matrix(), perm.matrix().T)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.data())
def test_compose_matches_matrix_product(n, data):
    outer = data.draw(
        st.permutations(range(n)).map(SignedPermutation.from_sequence)
    )
    inner_lines = data.draw(st.permutations(range(n)))
    inner_inv = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    inner = SignedPermutation.from_sequence(inner_lines, inner_inv)
    composed = outer.compose(inner)
    np.testing.assert_allclose(
        composed.matrix(), outer.matrix() @ inner.matrix()
    )


@settings(max_examples=50, deadline=None)
@given(random_perm_strategy())
def test_bit_of_line_inverts_line_of_bit(perm):
    for bit, line in enumerate(perm.line_of_bit):
        assert perm.bit_of_line[line] == bit


class TestApplyToBits:
    def test_routing_and_inversion(self):
        bits = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        # bit0 -> line 2 inverted, bit1 -> line 0, bit2 -> line 1
        p = SignedPermutation.from_sequence([2, 0, 1], [True, False, False])
        routed = p.apply_to_bits(bits)
        np.testing.assert_array_equal(routed[:, 0], bits[:, 1])
        np.testing.assert_array_equal(routed[:, 1], bits[:, 2])
        np.testing.assert_array_equal(routed[:, 2], 1 - bits[:, 0])

    def test_rejects_wrong_width(self):
        p = SignedPermutation.identity(3)
        with pytest.raises(ValueError):
            p.apply_to_bits(np.zeros((4, 2), dtype=np.uint8))


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 6),
    st.integers(0, 2**31 - 1),
)
def test_statistics_transform_matches_stream_transform(n, seed):
    """The Eq. 4 algebra must agree with physically rerouting the stream."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((60, n)) < 0.4).astype(np.uint8)
    perm = SignedPermutation.from_sequence(
        rng.permutation(n), rng.integers(0, 2, n).astype(bool)
    )
    via_algebra = perm.apply_to_statistics(BitStatistics.from_stream(bits))
    via_stream = BitStatistics.from_stream(perm.apply_to_bits(bits))
    np.testing.assert_allclose(
        via_algebra.self_switching, via_stream.self_switching, atol=1e-12
    )
    np.testing.assert_allclose(
        via_algebra.coupling, via_stream.coupling, atol=1e-12
    )
    np.testing.assert_allclose(
        via_algebra.probabilities, via_stream.probabilities, atol=1e-12
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
def test_statistics_transform_matches_eq4_matrices(n, seed):
    """T'_s and T'_c equal the explicit congruences of Eq. 4."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((50, n)) < 0.5).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    perm = SignedPermutation.from_sequence(
        rng.permutation(n), rng.integers(0, 2, n).astype(bool)
    )
    a = perm.matrix()
    transformed = perm.apply_to_statistics(stats)
    np.testing.assert_allclose(
        transformed.t_s, a @ stats.t_s @ a.T, atol=1e-12
    )
    np.testing.assert_allclose(
        transformed.t_c, a @ stats.t_c @ a.T, atol=1e-12
    )


class TestConstraints:
    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            AssignmentConstraints(no_invert=frozenset({5})).validate_for(3)
        with pytest.raises(ValueError):
            AssignmentConstraints(pinned={0: 9}).validate_for(3)

    def test_validate_rejects_duplicate_pinned_line(self):
        with pytest.raises(ValueError):
            AssignmentConstraints(pinned={0: 1, 2: 1}).validate_for(3)

    def test_allows(self):
        c = AssignmentConstraints(no_invert=frozenset({0}), pinned={1: 2})
        good = SignedPermutation.from_sequence([0, 2, 1], [False, True, False])
        bad_inv = SignedPermutation.from_sequence([0, 2, 1], [True, False, False])
        bad_pin = SignedPermutation.identity(3)
        assert c.allows(good)
        assert not c.allows(bad_inv)
        assert not c.allows(bad_pin)

    def test_free_and_invertible(self):
        c = AssignmentConstraints(no_invert=frozenset({1}), pinned={0: 0})
        assert c.free_bits(3) == (1, 2)
        assert c.invertible_bits(3) == (0, 2)
