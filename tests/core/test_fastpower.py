"""Tests for the compiled fast-path kernels (``repro.core.fastpower``).

The contract under test: every fast-path quantity is either bit-identical
to the reference path (single evaluations, annealing best powers) or
within ``1e-12`` relative of it (delta-updated running powers), for both
fixed capacitance matrices and the MOS-aware linear model.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import (
    CompiledPowerModel,
    as_compiled,
    random_assignments,
)
from repro.core.optimize import (
    exhaustive_search,
    greedy_descent,
    simulated_annealing,
)
from repro.core.pipeline import AssignmentReport, optimize_assignment
from repro.core.power import PowerModel
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

N = 6


def stats_from_seed(n, seed, samples=300):
    rng = np.random.default_rng(seed)
    bits = (rng.random((samples, n)) < rng.uniform(0.2, 0.8, n)).astype(
        np.uint8
    )
    return BitStatistics.from_stream(bits)


@functools.lru_cache(maxsize=None)
def make_model(n, seed, mos_aware):
    """A small PowerModel: MOS-aware (linear cap model) or fixed matrix."""
    stats = stats_from_seed(n, seed)
    if mos_aware:
        geometry = TSVArrayGeometry(rows=2, cols=n // 2, pitch=8e-6,
                                    radius=2e-6)
        capacitance = LinearCapacitanceModel.fit(
            CapacitanceExtractor(geometry, method="compact3d"), n_probes=5
        )
        return PowerModel(stats, capacitance)
    rng = np.random.default_rng(seed + 1)
    matrix = rng.uniform(0.1, 1.0, (n, n)) * 1e-15
    return PowerModel(stats, (matrix + matrix.T) / 2.0)


class TestCompiledEvaluation:
    @pytest.mark.parametrize("mos_aware", [False, True])
    def test_single_eval_bit_identical(self, mos_aware):
        model = make_model(N, 3, mos_aware)
        compiled = CompiledPowerModel.compile(model)
        rng = np.random.default_rng(0)
        for assignment in random_assignments(N, 10, rng,
                                             with_inversions=True):
            assert compiled.power(assignment) == model.power(assignment)

    @pytest.mark.parametrize("mos_aware", [False, True])
    def test_batched_matches_loop(self, mos_aware):
        model = make_model(N, 4, mos_aware)
        compiled = CompiledPowerModel.compile(model)
        rng = np.random.default_rng(1)
        samples = random_assignments(N, 32, rng, with_inversions=True)
        batched = compiled.powers(samples)
        loop = np.array([compiled.power(a) for a in samples])
        assert batched.shape == (32,)
        np.testing.assert_allclose(batched, loop, rtol=1e-12, atol=0.0)

    def test_empty_batch(self):
        compiled = CompiledPowerModel.compile(make_model(N, 4, False))
        assert compiled.powers([]).shape == (0,)

    def test_default_assignment_is_identity(self):
        model = make_model(N, 5, True)
        compiled = CompiledPowerModel.compile(model)
        assert compiled.power() == model.power(SignedPermutation.identity(N))

    def test_random_assignments_helper(self):
        rng = np.random.default_rng(7)
        plain = random_assignments(N, 20, rng)
        assert len(plain) == 20
        assert not any(any(a.inverted) for a in plain)
        signed = random_assignments(N, 20, rng, with_inversions=True)
        assert any(any(a.inverted) for a in signed)


class TestDeltaWalk:
    """Delta pricing and applied moves track the reference power exactly
    enough (<= 1e-12 relative) over arbitrary move sequences."""

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 7),
        mos_aware=st.booleans(),
        moves=st.lists(
            st.tuples(
                st.booleans(),            # True: toggle, False: swap
                st.integers(0, N - 1),
                st.integers(0, N - 1),
            ),
            min_size=1,
            max_size=20,
        ),
    )
    def test_walk_matches_reference(self, seed, mos_aware, moves):
        model = make_model(N, seed, mos_aware)
        compiled = CompiledPowerModel.compile(model)
        current = SignedPermutation.random(
            N, np.random.default_rng(seed), with_inversions=True
        )
        state = compiled.start(current)
        scale = abs(state.power) or 1.0
        for is_toggle, i, j in moves:
            before = model.power(current)
            if is_toggle:
                candidate = current.with_toggled_inversion(i)
                delta = state.delta_toggle(i)
                state.toggle(i, delta)
            else:
                if i == j:
                    continue
                candidate = current.with_swapped_bits(i, j)
                delta = state.delta_swap(i, j)
                state.swap(i, j, delta)
            reference = model.power(candidate)
            assert abs(before + delta - reference) <= 1e-12 * scale
            assert abs(state.power - reference) <= 1e-12 * scale
            current = candidate
        assert state.assignment() == current

    @pytest.mark.parametrize("mos_aware", [False, True])
    def test_batched_kernels_match_single(self, mos_aware):
        model = make_model(N, 6, mos_aware)
        compiled = CompiledPowerModel.compile(model)
        start = SignedPermutation.random(
            N, np.random.default_rng(2), with_inversions=True
        )
        state = compiled.start(start)
        bits = np.arange(N)
        singles = np.array([state.delta_toggle(b) for b in bits])
        np.testing.assert_array_equal(state.delta_toggles(bits), singles)
        pairs = np.array(
            [(a, b) for a in range(N) for b in range(a + 1, N)]
        )
        singles = np.array([state.delta_swap(a, b) for a, b in pairs])
        np.testing.assert_array_equal(state.delta_swaps(pairs), singles)

    def test_resync_is_stable(self):
        model = make_model(N, 8, True)
        state = CompiledPowerModel.compile(model).start(
            SignedPermutation.identity(N)
        )
        before = state.power
        state.resync()
        assert state.power == before


class TestSearchParity:
    """Fast and naive paths take the same chain: bit-identical results."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("mos_aware", [False, True])
    def test_annealing_identical(self, seed, mos_aware):
        model = make_model(N, seed, mos_aware)
        fast = simulated_annealing(
            model, N, rng=np.random.default_rng(seed)
        )
        naive = simulated_annealing(
            model.power, N, rng=np.random.default_rng(seed)
        )
        assert fast.power == naive.power
        assert fast.evaluations == naive.evaluations

    def test_annealing_identical_under_constraints(self):
        model = make_model(N, 3, True)
        constraints = AssignmentConstraints(
            no_invert=frozenset({0}), pinned={1: 1}
        )
        fast = simulated_annealing(
            model, N, constraints=constraints,
            rng=np.random.default_rng(11),
        )
        naive = simulated_annealing(
            model.power, N, constraints=constraints,
            rng=np.random.default_rng(11),
        )
        assert fast.power == naive.power
        assert constraints.allows(fast.assignment)

    def test_greedy_identical(self):
        model = make_model(N, 5, True)
        start = SignedPermutation.random(
            N, np.random.default_rng(3), with_inversions=True
        )
        fast = greedy_descent(model, start)
        naive = greedy_descent(model.power, start)
        assert fast.power == naive.power
        assert fast.assignment == naive.assignment

    def test_exhaustive_identical(self):
        model = make_model(N, 6, False)
        fast = exhaustive_search(model, N, with_inversions=False)
        naive = exhaustive_search(model.power, N, with_inversions=False)
        assert fast.power == naive.power
        assert fast.assignment == naive.assignment


class TestSymmetryGuard:
    def asymmetric_model(self):
        matrix = np.eye(N) * 1e-15
        matrix[0, 1] = 5e-16  # no matching [1, 0] entry
        return PowerModel(stats_from_seed(N, 9), matrix)

    def test_as_compiled_refuses_asymmetric(self):
        model = self.asymmetric_model()
        compiled = CompiledPowerModel.compile(model)
        assert not compiled.symmetric
        assert as_compiled(model) is None
        assert as_compiled(compiled) is None

    def test_as_compiled_refuses_generic_callable(self):
        assert as_compiled(lambda assignment: 0.0) is None

    def test_search_state_refuses_asymmetric(self):
        compiled = CompiledPowerModel.compile(self.asymmetric_model())
        with pytest.raises(ValueError, match="symmetric"):
            compiled.start(SignedPermutation.identity(N))

    def test_searches_fall_back_to_generic_path(self):
        model = self.asymmetric_model()
        via_model = simulated_annealing(
            model, N, rng=np.random.default_rng(4)
        )
        via_callable = simulated_annealing(
            model.power, N, rng=np.random.default_rng(4)
        )
        assert via_model.power == via_callable.power


class TestMultiChain:
    def test_restart_results_independent_of_jobs(self):
        model = make_model(N, 2, True)
        serial = simulated_annealing(
            model, N, rng=np.random.default_rng(21), n_restarts=3, n_jobs=1
        )
        threaded = simulated_annealing(
            model, N, rng=np.random.default_rng(21), n_restarts=3, n_jobs=3
        )
        assert serial.power == threaded.power
        assert serial.assignment == threaded.assignment
        assert serial.evaluations == threaded.evaluations

    def test_restart_power_is_consistent(self):
        model = make_model(N, 2, True)
        compiled = CompiledPowerModel.compile(model)
        single = simulated_annealing(
            model, N, rng=np.random.default_rng(22), n_restarts=1
        )
        multi = simulated_annealing(
            model, N, rng=np.random.default_rng(22), n_restarts=4
        )
        # The reported power is the reference power of the reported
        # assignment, and chain evaluations accumulate.
        assert multi.power == compiled.power(multi.assignment)
        assert multi.evaluations > single.evaluations

    def test_rejects_bad_restarts(self):
        model = make_model(N, 2, False)
        with pytest.raises(ValueError):
            simulated_annealing(model, N, n_restarts=0)


class TestPipelineRegressions:
    @pytest.fixture(scope="class")
    def setup(self):
        geometry = TSVArrayGeometry(rows=2, cols=3, pitch=8e-6, radius=2e-6)
        bits = gaussian_bit_stream(
            1500, 6, sigma=8.0, rho=0.5, rng=np.random.default_rng(13)
        )
        return geometry, bits

    def test_baseline_identical_across_methods(self, setup):
        """The search must not perturb the baseline sampling stream (the
        rng.spawn split), or reductions are not comparable across methods."""
        geometry, bits = setup
        baselines = {
            method: optimize_assignment(
                bits, geometry, method=method, cap_method="compact",
                rng=np.random.default_rng(31),
            ).random_mean_power
            for method in ("optimal", "greedy", "identity", "spiral")
        }
        assert len(set(baselines.values())) == 1

    def test_zero_baseline_reduction_is_zero(self):
        report = AssignmentReport(
            assignment=SignedPermutation.identity(3),
            power=0.0,
            random_mean_power=0.0,
            random_worst_power=0.0,
            method="identity",
        )
        assert report.reduction_vs_random == 0.0
        assert report.reduction_vs_worst == 0.0
