"""Tests for delay-constrained assignment optimization."""

import numpy as np
import pytest

from repro.core.assignment import SignedPermutation
from repro.core.constrained import (
    DelayModel,
    delay_constrained_annealing,
    pairwise_miller_bounds,
)
from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


class TestMillerBounds:
    def test_opposite_pair(self):
        bits = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        bounds = pairwise_miller_bounds(bits)
        assert bounds[0, 1] == 2.0  # repro: noqa[REP004] exact count ratio
        assert bounds[1, 0] == 2.0  # repro: noqa[REP004] exact count ratio

    def test_same_direction_pair(self):
        bits = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        bounds = pairwise_miller_bounds(bits)
        assert bounds[0, 1] == 0.0

    def test_quiet_aggressor(self):
        bits = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        bounds = pairwise_miller_bounds(bits)
        assert bounds[0, 1] == 1.0  # repro: noqa[REP004] exact count ratio
        assert bounds[1, 0] == 0.0  # bit 1 never switches

    def test_mixed_takes_maximum(self):
        bits = np.array([[0, 0], [1, 1], [0, 1]], dtype=np.uint8)
        # cycle 1: same direction (0); cycle 2: bit0 falls, bit1 quiet (1).
        bounds = pairwise_miller_bounds(bits)
        assert bounds[0, 1] == 1.0  # repro: noqa[REP004] exact count ratio

    def test_diagonal_zero(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((50, 4)) < 0.5).astype(np.uint8)
        np.testing.assert_allclose(np.diag(pairwise_miller_bounds(bits)), 0.0)


@pytest.fixture(scope="module")
def setup():
    geometry = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    cap = CapacitanceExtractor(geometry, method="compact").extract()
    rng = np.random.default_rng(3)
    bits = gaussian_bit_stream(6000, 9, sigma=16.0, rho=-0.5, rng=rng)
    stats = BitStatistics.from_stream(bits)
    miller = pairwise_miller_bounds(bits)
    delay_model = DelayModel(geometry, cap, miller)
    power_model = PowerModel(stats, cap)
    return geometry, stats, delay_model, power_model


class TestDelayModel:
    def test_validation(self, setup):
        geometry, _, delay_model, _ = setup
        with pytest.raises(ValueError):
            DelayModel(geometry, np.eye(4), delay_model.miller_bounds)
        with pytest.raises(ValueError):
            DelayModel(geometry, delay_model.cap_matrix, np.zeros((2, 2)))

    def test_delay_is_assignment_dependent(self, setup):
        _, _, delay_model, _ = setup
        rng = np.random.default_rng(0)
        delays = {
            delay_model.worst_line_delay(SignedPermutation.random(9, rng))
            for _ in range(20)
        }
        assert len(delays) > 1

    def test_inversion_invariance(self, setup):
        _, _, delay_model, _ = setup
        base = SignedPermutation.identity(9)
        flipped = SignedPermutation.from_sequence(
            range(9), [True, False] * 4 + [True]
        )
        assert delay_model.worst_line_delay(base) == pytest.approx(
            delay_model.worst_line_delay(flipped)
        )


class TestConstrainedAnnealing:
    def test_loose_bound_recovers_unconstrained(self, setup):
        _, stats, delay_model, power_model = setup
        unconstrained = simulated_annealing(
            power_model.power, 9, rng=np.random.default_rng(1),
            steps_per_temperature=80,
        )
        result = delay_constrained_annealing(
            stats, delay_model, power_model, delay_bound=1.0,  # 1 second!
            rng=np.random.default_rng(1), steps_per_temperature=80,
        )
        assert result.feasible
        assert result.power == pytest.approx(unconstrained.power, rel=0.02)

    def test_tight_bound_trades_power_for_delay(self, setup):
        _, stats, delay_model, power_model = setup
        loose = delay_constrained_annealing(
            stats, delay_model, power_model, delay_bound=1.0,
            rng=np.random.default_rng(2), steps_per_temperature=80,
        )
        # Tighten the bound below the power-optimal delay.
        bound = loose.delay * 0.97
        tight = delay_constrained_annealing(
            stats, delay_model, power_model, delay_bound=bound,
            rng=np.random.default_rng(2), steps_per_temperature=80,
        )
        if tight.feasible:
            assert tight.delay <= bound * (1 + 1e-9)
            assert tight.power >= loose.power - 1e-25

    def test_rejects_bad_bound(self, setup):
        _, stats, delay_model, power_model = setup
        with pytest.raises(ValueError):
            delay_constrained_annealing(
                stats, delay_model, power_model, delay_bound=0.0
            )
