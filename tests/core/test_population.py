"""Population annealing: lockstep chains == the per-chain search, bit for bit.

Two contracts:

* :class:`PopulationState` prices and applies moves over a stacked
  ``(chains, n)`` state matrix with results bit-identical to a
  :class:`SearchState` per chain (same float op order, same memory
  layout before each contraction);
* ``simulated_annealing(..., population=True)`` returns the same best
  power, assignment and evaluation count as ``population=False`` for
  every chain, because both paths consume the same spawned seeds and
  replicate the same batched-rejection proposal schedule.
"""

import functools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import (
    CompiledPowerModel,
    PopulationState,
    random_assignments,
)
from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

N = 6


def stats_from_seed(n, seed, samples=300):
    rng = np.random.default_rng(seed)
    bits = (rng.random((samples, n)) < rng.uniform(0.2, 0.8, n)).astype(
        np.uint8
    )
    return BitStatistics.from_stream(bits)


@functools.lru_cache(maxsize=None)
def make_compiled(n, seed, mos_aware):
    stats = stats_from_seed(n, seed)
    if mos_aware:
        geometry = TSVArrayGeometry(rows=2, cols=n // 2, pitch=8e-6,
                                    radius=2e-6)
        capacitance = LinearCapacitanceModel.fit(
            CapacitanceExtractor(geometry, method="compact3d"), n_probes=5
        )
        return CompiledPowerModel.compile(PowerModel(stats, capacitance))
    rng = np.random.default_rng(seed + 1)
    matrix = rng.uniform(0.1, 1.0, (n, n)) * 1e-15
    return CompiledPowerModel.compile(
        PowerModel(stats, (matrix + matrix.T) / 2.0)
    )


class TestPopulationState:
    """Stacked kernels vs one SearchState per chain."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 5),
        mos_aware=st.booleans(),
        moves=st.lists(
            st.tuples(
                st.integers(0, 3),        # acting chain
                st.booleans(),            # True: toggle, False: swap
                st.integers(0, N - 1),
                st.integers(0, N - 1),
            ),
            min_size=1,
            max_size=15,
        ),
    )
    def test_tracks_per_chain_search_states(self, seed, mos_aware, moves):
        compiled = make_compiled(N, seed, mos_aware)
        rng = np.random.default_rng(seed + 100)
        starts = random_assignments(N, 4, rng, with_inversions=True)
        population = PopulationState(compiled, starts)
        singles = [compiled.start(a) for a in starts]

        for chain, is_toggle, a, b in moves:
            chains = np.arange(4, dtype=np.intp)
            bits = np.full(4, a, dtype=np.intp)
            one_bit = np.array([a], dtype=np.intp)
            np.testing.assert_array_equal(
                population.delta_toggles(chains, bits),
                [float(s.delta_toggles(one_bit)[0]) for s in singles],
            )
            if a != b:
                pairs = np.tile([a, b], (4, 1)).astype(np.intp)
                one_pair = np.array([[a, b]], dtype=np.intp)
                np.testing.assert_array_equal(
                    population.delta_swaps(chains, pairs),
                    [float(s.delta_swaps(one_pair)[0]) for s in singles],
                )
            if is_toggle:
                population.toggle(chain, a)
                singles[chain].toggle(a)
            elif a != b:
                population.swap(chain, a, b)
                singles[chain].swap(a, b)
            for index, single in enumerate(singles):
                assert population.powers[index] == single.power
                assert population.assignment(index) == single.assignment()

    def test_requires_symmetric_model(self):
        compiled = make_compiled(N, 0, False)
        start = [SignedPermutation.identity(N)]
        if compiled.symmetric:
            PopulationState(compiled, start)  # must not raise


class TestPopulationAnnealingIdentity:
    """population=True vs population=False: bit-equal results per seed."""

    @pytest.mark.parametrize("mos_aware", [False, True])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_identical_results(self, mos_aware, seed):
        compiled = make_compiled(N, seed, mos_aware)
        runs = {}
        for population in (True, False):
            runs[population] = simulated_annealing(
                compiled, N, rng=np.random.default_rng(seed),
                n_restarts=3, population=population,
            )
        assert runs[True].power == runs[False].power
        assert runs[True].assignment == runs[False].assignment
        assert runs[True].evaluations == runs[False].evaluations

    def test_identical_under_constraints(self):
        compiled = make_compiled(N, 4, True)
        constraints = AssignmentConstraints(
            pinned={0: 0}, no_invert={1, 2}
        )
        runs = {}
        for population in (True, False):
            runs[population] = simulated_annealing(
                compiled, N, rng=np.random.default_rng(11),
                n_restarts=3, population=population,
                constraints=constraints,
            )
        assert runs[True].power == runs[False].power
        assert runs[True].assignment == runs[False].assignment
        assert runs[True].evaluations == runs[False].evaluations
        assert runs[True].assignment.line_of_bit[0] == 0
        assert not runs[True].assignment.inverted[1]
        assert not runs[True].assignment.inverted[2]

    def test_identical_with_fixed_schedule(self):
        compiled = make_compiled(N, 5, False)
        kwargs = dict(
            n_restarts=2,
            initial_temperature=1e-13,
            steps_per_temperature=37,
            cooling=0.8,
        )
        runs = {}
        for population in (True, False):
            runs[population] = simulated_annealing(
                compiled, N, rng=np.random.default_rng(6),
                population=population, **kwargs,
            )
        assert runs[True].power == runs[False].power
        assert runs[True].assignment == runs[False].assignment
        assert runs[True].evaluations == runs[False].evaluations

    def test_population_requires_compiled_objective(self):
        model = PowerModel(
            stats_from_seed(N, 0),
            np.eye(N) * 1e-15,
        )
        with pytest.raises(ValueError, match="population"):
            simulated_annealing(
                model.power, N, rng=np.random.default_rng(0),
                population=True,
            )

    def test_population_rejects_checkpoint_store(self, tmp_path):
        compiled = make_compiled(N, 0, False)
        with pytest.raises(ValueError, match="population"):
            simulated_annealing(
                compiled, N, rng=np.random.default_rng(0),
                population=True, checkpoint_dir=tmp_path / "ckpt",
            )
