"""Tests for wide-bus partitioning across TSV bundles."""

import numpy as np
import pytest

from repro.core.partition import (
    PartitionedReport,
    optimize_partitioned,
    partition_bits,
)
from repro.datagen.gaussian import gaussian_bit_stream
from repro.datagen.util import interleave_streams
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry


class TestPartitionBits:
    def test_contiguous(self):
        groups = partition_bits(8, [4, 4], strategy="contiguous")
        assert groups == [[0, 1, 2, 3], [4, 5, 6, 7]]

    def test_interleaved(self):
        groups = partition_bits(6, [3, 3], strategy="interleaved")
        assert groups == [[0, 2, 4], [1, 3, 5]]

    def test_unequal_sizes(self):
        groups = partition_bits(7, [4, 3], strategy="contiguous")
        assert [len(g) for g in groups] == [4, 3]
        assert sorted(sum(groups, [])) == list(range(7))

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            partition_bits(8, [4, 3])

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            partition_bits(8, [4, 4], strategy="magic")

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            partition_bits(4, [4, 0])

    def test_correlation_requires_stats(self):
        with pytest.raises(ValueError):
            partition_bits(8, [4, 4], strategy="correlation")

    def test_correlation_groups_correlated_bits(self):
        # Two independent 4-bit Gaussian words interleaved on the bus:
        # bits {0,2,4,6} belong to word A, {1,3,5,7} to word B. The
        # correlation clustering must recover the two words.
        rng = np.random.default_rng(0)
        a = gaussian_bit_stream(6000, 4, sigma=4.0, rho=0.9, rng=rng)
        b = gaussian_bit_stream(6000, 4, sigma=4.0, rho=0.9, rng=rng)
        bus = np.empty((6000, 8), dtype=np.uint8)
        bus[:, 0::2] = a
        bus[:, 1::2] = b
        stats = BitStatistics.from_stream(bus)
        groups = partition_bits(8, [4, 4], strategy="correlation",
                                stats=stats)
        parities = [{bit % 2 for bit in group} for group in groups]
        assert parities == [{0}, {1}] or parities == [{1}, {0}]

    def test_groups_always_form_partition(self):
        rng = np.random.default_rng(1)
        bits = (rng.random((500, 9)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        for strategy in ("contiguous", "interleaved", "correlation"):
            groups = partition_bits(9, [4, 5], strategy=strategy,
                                    stats=stats)
            flat = sorted(sum(groups, []))
            assert flat == list(range(9))


class TestOptimizePartitioned:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(2)
        words_a = gaussian_bit_stream(3000, 9, sigma=16.0, rho=0.7, rng=rng)
        words_b = gaussian_bit_stream(3000, 9, sigma=16.0, rho=0.7, rng=rng)
        bus = np.concatenate([words_a, words_b], axis=1)
        geometries = [
            TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6),
            TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6),
        ]
        return bus, geometries

    def test_aggregate_report(self, setup):
        bus, geometries = setup
        report = optimize_partitioned(
            bus, geometries, strategy="contiguous",
            baseline_samples=30, rng=np.random.default_rng(0),
        )
        assert isinstance(report, PartitionedReport)
        assert len(report.reports) == 2
        assert report.total_power == pytest.approx(
            sum(r.power for r in report.reports)
        )
        assert 0.0 < report.reduction_vs_random < 1.0

    def test_bit_lookup(self, setup):
        bus, geometries = setup
        report = optimize_partitioned(
            bus, geometries, strategy="contiguous", method="spiral",
            baseline_samples=10, rng=np.random.default_rng(0),
        )
        array_index, line = report.bit_to_array_line(0)
        assert array_index == 0 and 0 <= line < 9
        array_index, _ = report.bit_to_array_line(17)
        assert array_index == 1
        with pytest.raises(ValueError):
            report.bit_to_array_line(99)

    def test_correlation_strategy_not_worse_than_interleaved(self, setup):
        """Keeping each word's bits together preserves the exploitable
        coupling structure; scattering them across bundles destroys it."""
        bus, geometries = setup
        kwargs = dict(baseline_samples=40, rng=np.random.default_rng(0))
        together = optimize_partitioned(
            bus, geometries, strategy="correlation", **kwargs
        )
        scattered = optimize_partitioned(
            bus, geometries, strategy="interleaved", **kwargs
        )
        assert together.total_power <= scattered.total_power * 1.02
