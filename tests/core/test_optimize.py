"""Tests for the assignment search algorithms (Eq. 10)."""

import numpy as np
import pytest

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.optimize import (
    exhaustive_search,
    greedy_descent,
    optimize_power_model,
    simulated_annealing,
)
from repro.core.power import PowerModel
from repro.core.systematic import activity_sorted_assignment
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


def small_problem(n=4, seed=0, correlated=True):
    """A PowerModel on an n-line compact-model array with random stats."""
    rng = np.random.default_rng(seed)
    rows = 2 if n % 2 == 0 else 1
    geom = TSVArrayGeometry(rows=rows, cols=n // rows, pitch=8e-6, radius=2e-6)
    cap = CapacitanceExtractor(geom, method="compact").extract()
    bits = (rng.random((300, n)) < rng.uniform(0.2, 0.8, n)).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    if not correlated:
        stats = BitStatistics.from_moments(
            stats.self_switching, np.zeros((n, n)), np.full(n, 0.5)
        )
    return geom, cap, PowerModel(stats, cap)


class TestExhaustive:
    def test_finds_global_minimum_vs_brute_force(self):
        _, _, model = small_problem(4, seed=1)
        result = exhaustive_search(model.power, 4, with_inversions=True)
        # 4! * 2^4 = 384 candidates.
        assert result.evaluations == 384
        # Nothing sampled at random may beat it.
        rng = np.random.default_rng(2)
        for _ in range(100):
            perm = SignedPermutation.random(4, rng, with_inversions=True)
            assert result.power <= model.power(perm) + 1e-25

    def test_respects_no_invert(self):
        _, _, model = small_problem(4, seed=3)
        constraints = AssignmentConstraints(no_invert=frozenset({0, 1, 2, 3}))
        result = exhaustive_search(
            model.power, 4, with_inversions=True, constraints=constraints
        )
        assert not any(result.assignment.inverted)
        assert result.evaluations == 24

    def test_respects_pinned(self):
        _, _, model = small_problem(4, seed=4)
        constraints = AssignmentConstraints(pinned={2: 0})
        result = exhaustive_search(
            model.power, 4, with_inversions=False, constraints=constraints
        )
        assert result.assignment.line_of_bit[2] == 0

    def test_rejects_huge_space(self):
        with pytest.raises(ValueError):
            exhaustive_search(lambda a: 0.0, 16)


class TestGreedy:
    def test_never_worse_than_start(self):
        _, _, model = small_problem(6, seed=5)
        start = SignedPermutation.identity(6)
        result = greedy_descent(model.power, start)
        assert result.power <= model.power(start) + 1e-25

    def test_reaches_local_optimum(self):
        _, _, model = small_problem(4, seed=6)
        result = greedy_descent(model.power, SignedPermutation.identity(4))
        # No single swap or toggle may improve further.
        for a in range(4):
            for b in range(a + 1, 4):
                assert model.power(
                    result.assignment.with_swapped_bits(a, b)
                ) >= result.power - 1e-25
            assert model.power(
                result.assignment.with_toggled_inversion(a)
            ) >= result.power - 1e-25

    def test_rejects_invalid_start(self):
        _, _, model = small_problem(4, seed=7)
        constraints = AssignmentConstraints(pinned={0: 3})
        with pytest.raises(ValueError):
            greedy_descent(
                model.power, SignedPermutation.identity(4),
                constraints=constraints,
            )


class TestSimulatedAnnealing:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_exhaustive_on_small_problems(self, seed):
        _, _, model = small_problem(4, seed=seed)
        exact = exhaustive_search(model.power, 4, with_inversions=True)
        sa = simulated_annealing(
            model.power, 4, with_inversions=True,
            rng=np.random.default_rng(seed),
        )
        assert sa.power == pytest.approx(exact.power, rel=1e-9)

    def test_matches_sorting_oracle_on_uncorrelated(self):
        geom, cap, model = small_problem(6, seed=8, correlated=False)
        oracle = activity_sorted_assignment(geom, cap, model.stats)
        sa = simulated_annealing(
            model.power, 6, with_inversions=False,
            rng=np.random.default_rng(0),
        )
        assert sa.power == pytest.approx(model.power(oracle), rel=1e-9)

    def test_respects_constraints(self):
        _, _, model = small_problem(6, seed=9)
        constraints = AssignmentConstraints(
            no_invert=frozenset({0}), pinned={1: 4}
        )
        sa = simulated_annealing(
            model.power, 6, constraints=constraints,
            rng=np.random.default_rng(1),
        )
        assert constraints.allows(sa.assignment)

    def test_single_free_bit_short_circuits(self):
        _, _, model = small_problem(4, seed=10)
        constraints = AssignmentConstraints(
            no_invert=frozenset(range(4)),
            pinned={0: 0, 1: 1, 2: 2},
        )
        sa = simulated_annealing(
            model.power, 4, constraints=constraints,
            rng=np.random.default_rng(2),
        )
        assert sa.evaluations == 1

    def test_inversion_only_search(self):
        # All lines pinned: SA may only toggle inversions.
        _, _, model = small_problem(4, seed=11)
        constraints = AssignmentConstraints(
            pinned={b: b for b in range(4)}
        )
        sa = simulated_annealing(
            model.power, 4, constraints=constraints,
            rng=np.random.default_rng(3),
        )
        exact = exhaustive_search(
            model.power, 4, with_inversions=True, constraints=constraints
        )
        assert sa.assignment.line_of_bit == (0, 1, 2, 3)
        assert sa.power == pytest.approx(exact.power, rel=1e-9)


class TestWrapper:
    def test_methods_agree_on_small_problem(self):
        _, _, model = small_problem(4, seed=12)
        exact = optimize_power_model(model, method="exhaustive")
        sa = optimize_power_model(
            model, method="sa", rng=np.random.default_rng(0)
        )
        greedy = optimize_power_model(model, method="greedy")
        assert sa.power == pytest.approx(exact.power, rel=1e-9)
        assert greedy.power >= exact.power - 1e-25

    def test_unknown_method(self):
        _, _, model = small_problem(4, seed=13)
        with pytest.raises(ValueError):
            optimize_power_model(model, method="magic")
