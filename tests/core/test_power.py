"""Tests for the P_n = <T, C> power model and its transforms."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.assignment import SignedPermutation
from repro.core.power import PowerModel, normalized_power
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


def stats_from_seed(n, seed, samples=200):
    rng = np.random.default_rng(seed)
    bits = (rng.random((samples, n)) < rng.uniform(0.2, 0.8, n)).astype(np.uint8)
    return BitStatistics.from_stream(bits)


def random_spd_capacitance(n, seed):
    rng = np.random.default_rng(seed)
    c = rng.uniform(0.0, 1.0, (n, n))
    c = (c + c.T) / 2.0
    return c


class TestNormalizedPower:
    def test_matches_frobenius_definition(self):
        stats = stats_from_seed(5, 0)
        cap = random_spd_capacitance(5, 1)
        direct = float(np.sum(stats.t_matrix * cap))
        assert normalized_power(stats, cap) == pytest.approx(direct)

    def test_matches_eq1_expansion(self):
        # Eq. 1: sum_i E{db_i^2} C_ii + sum_{i != j} E{db_i^2 - db_i db_j} C_ij.
        stats = stats_from_seed(4, 2)
        cap = random_spd_capacitance(4, 3)
        expected = 0.0
        for i in range(4):
            expected += stats.self_switching[i] * cap[i, i]
            for j in range(4):
                if j != i:
                    expected += (
                        stats.self_switching[i] - stats.coupling[i, j]
                    ) * cap[i, j]
        assert normalized_power(stats, cap) == pytest.approx(expected)

    def test_rejects_size_mismatch(self):
        stats = stats_from_seed(3, 0)
        with pytest.raises(ValueError):
            normalized_power(stats, np.eye(4))

    def test_matches_transition_energy_ground_truth(self):
        """P_n equals the average per-cycle charge-based energy, computed
        transition by transition from the capacitance network."""
        rng = np.random.default_rng(42)
        n = 4
        bits = (rng.random((2000, n)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        cap = random_spd_capacitance(n, 5)

        deltas = np.diff(bits.astype(np.int8), axis=0).astype(float)
        total = 0.0
        for db in deltas:
            # Ground capacitances: energy_n ~ db_i^2 * C_ii.
            total += float(np.sum(db**2 * np.diag(cap)))
            # Coupling capacitances: ~ (db_i - db_j)^2 / 2 * C_ij per
            # unordered pair = db_i^2 - db_i db_j summed over ordered pairs.
            for i in range(n):
                for j in range(n):
                    if i != j:
                        total += (db[i] ** 2 - db[i] * db[j]) * cap[i, j]
        expected = total / len(deltas)
        assert normalized_power(stats, cap) == pytest.approx(expected)


class TestPowerModel:
    def test_identity_matches_normalized_power(self):
        stats = stats_from_seed(5, 7)
        cap = random_spd_capacitance(5, 8)
        model = PowerModel(stats, cap)
        assert model.power() == pytest.approx(normalized_power(stats, cap))

    def test_rejects_size_mismatch(self):
        stats = stats_from_seed(3, 0)
        with pytest.raises(ValueError):
            PowerModel(stats, np.eye(4))

    def test_power_watts_scaling(self):
        stats = stats_from_seed(3, 1)
        cap = random_spd_capacitance(3, 2)
        model = PowerModel(stats, cap)
        pn = model.power()
        assert model.power_watts(vdd=1.0, frequency=2.0) == pytest.approx(pn)
        assert model.power_watts(vdd=2.0, frequency=2.0) == pytest.approx(4 * pn)

    def test_assignment_equals_explicit_congruence(self):
        """model.power(A) must equal <A T A^T, C> with explicit matrices."""
        rng = np.random.default_rng(11)
        n = 5
        stats = stats_from_seed(n, 12)
        cap = random_spd_capacitance(n, 13)
        model = PowerModel(stats, cap)
        perm = SignedPermutation.from_sequence(
            rng.permutation(n), rng.integers(0, 2, n).astype(bool)
        )
        a = perm.matrix()
        ones = np.ones((n, n))
        t_prime = a @ stats.t_s @ a.T @ ones - a @ stats.t_c @ a.T
        expected = float(np.sum(t_prime * cap))
        assert model.power(perm) == pytest.approx(expected)

    def test_mos_aware_power_uses_eq9(self):
        """With a linear capacitance model, the assignment also transforms C
        according to Eq. 9; check against the explicit matrix algebra."""
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        extractor = CapacitanceExtractor(geom, method="compact")
        lin = LinearCapacitanceModel.fit(extractor)
        stats = stats_from_seed(4, 21)
        model = PowerModel(stats, lin)
        rng = np.random.default_rng(22)
        perm = SignedPermutation.from_sequence(
            rng.permutation(4), rng.integers(0, 2, 4).astype(bool)
        )
        a = perm.matrix()
        n = 4
        ones = np.ones((n, n))
        eps = (stats.probabilities - 0.5).reshape(-1, 1)
        c_prime = lin.c_r + lin.delta_c * (
            (a @ eps) @ np.ones((1, n)) + np.ones((n, 1)) @ (a @ eps).T
        )
        t_prime = a @ stats.t_s @ a.T @ ones - a @ stats.t_c @ a.T
        expected = float(np.sum(t_prime * c_prime))
        assert model.power(perm) == pytest.approx(expected, rel=1e-12)

    def test_inverting_anticorrelated_pair_lowers_power(self):
        """The paper's core argument: negated transmission of one bit of a
        negatively correlated pair reduces the coupling power."""
        n = 2
        stats = BitStatistics.from_moments(
            self_switching=np.array([0.5, 0.5]),
            coupling=np.array([[0.5, -0.4], [-0.4, 0.5]]),
            probabilities=np.array([0.5, 0.5]),
        )
        cap = np.array([[1.0, 2.0], [2.0, 1.0]])
        model = PowerModel(stats, cap)
        plain = model.power()
        inverted = model.power(
            SignedPermutation.from_sequence([0, 1], [True, False])
        )
        assert inverted < plain

    def test_raising_one_probability_lowers_power_via_mos(self):
        """With the MOS model, inverting a mostly-0 stable bit (making it
        mostly-1) widens its depletion region and lowers the power."""
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        extractor = CapacitanceExtractor(geom, method="compact")
        lin = LinearCapacitanceModel.fit(extractor)
        stats = BitStatistics.from_moments(
            self_switching=np.array([0.5, 0.5, 0.5, 0.0]),
            coupling=np.zeros((4, 4)),
            probabilities=np.array([0.5, 0.5, 0.5, 0.0]),  # bit 3 stable at 0
        )
        model = PowerModel(stats, lin)
        plain = model.power()
        inverted = model.power(
            SignedPermutation.from_sequence(
                [0, 1, 2, 3], [False, False, False, True]
            )
        )
        assert inverted < plain


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
def test_power_invariant_under_simultaneous_relabeling(n, seed):
    """Permuting both the statistics and the capacitance matrix with the
    same (unsigned) permutation leaves P_n unchanged."""
    rng = np.random.default_rng(seed)
    stats = stats_from_seed(n, seed)
    cap = random_spd_capacitance(n, seed + 1)
    perm = SignedPermutation.from_sequence(rng.permutation(n))
    order = np.asarray(perm.bit_of_line)
    permuted_stats = perm.apply_to_statistics(stats)
    permuted_cap = cap[np.ix_(order, order)]
    assert normalized_power(permuted_stats, permuted_cap) == pytest.approx(
        normalized_power(stats, cap)
    )


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.integers(0, 2**31 - 1))
def test_double_inversion_is_identity(n, seed):
    stats = stats_from_seed(n, seed)
    cap = random_spd_capacitance(n, seed + 2)
    model = PowerModel(stats, cap)
    flip_all = SignedPermutation.from_sequence(range(n), [True] * n)
    double = flip_all.compose(flip_all)
    assert double == SignedPermutation.identity(n)
    # With balanced-probability C (fixed matrix), inverting every bit leaves
    # the coupling signs pairwise unchanged, hence the power too.
    assert model.power(flip_all) == pytest.approx(model.power())
