"""Tests for the high-level optimize/evaluate pipeline."""

import numpy as np
import pytest

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.pipeline import (
    build_power_model,
    evaluate_assignment,
    optimize_assignment,
    random_baseline_power,
)
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(5)
    geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    bits = gaussian_bit_stream(4000, 9, sigma=16.0, rho=0.5, rng=rng)
    return geom, bits


class TestBuildPowerModel:
    def test_accepts_stats_or_stream(self, setup):
        geom, bits = setup
        from_stream = build_power_model(bits, geom, cap_method="compact")
        from_stats = build_power_model(
            BitStatistics.from_stream(bits), geom, cap_method="compact"
        )
        assert from_stream.power() == pytest.approx(from_stats.power())

    def test_rejects_size_mismatch(self, setup):
        geom, bits = setup
        with pytest.raises(ValueError):
            build_power_model(bits[:, :4], geom, cap_method="compact")

    def test_mos_aware_toggle(self, setup):
        geom, bits = setup
        aware = build_power_model(bits, geom, cap_method="compact",
                                  mos_aware=True)
        fixed = build_power_model(bits, geom, cap_method="compact",
                                  mos_aware=False)
        assert aware.cap_model is not None
        assert fixed.cap_matrix is not None


class TestRandomBaseline:
    def test_mean_not_above_worst(self, setup):
        geom, bits = setup
        model = build_power_model(bits, geom, cap_method="compact")
        mean, worst = random_baseline_power(model, n_samples=50)
        assert mean <= worst

    def test_deterministic_with_seed(self, setup):
        geom, bits = setup
        model = build_power_model(bits, geom, cap_method="compact")
        a = random_baseline_power(model, n_samples=20,
                                  rng=np.random.default_rng(1))
        b = random_baseline_power(model, n_samples=20,
                                  rng=np.random.default_rng(1))
        assert a == b


class TestOptimizeAssignment:
    def test_rejects_unknown_method(self, setup):
        geom, bits = setup
        with pytest.raises(ValueError):
            optimize_assignment(bits, geom, method="fancy")

    def test_optimal_beats_systematics_and_identity(self, setup):
        geom, bits = setup
        reports = {
            m: optimize_assignment(
                bits, geom, method=m, cap_method="compact",
                rng=np.random.default_rng(0), baseline_samples=50,
            )
            for m in ("optimal", "spiral", "sawtooth", "identity")
        }
        best = reports["optimal"].power
        for method, report in reports.items():
            assert best <= report.power + 1e-25, method

    def test_reduction_metrics(self, setup):
        geom, bits = setup
        report = optimize_assignment(
            bits, geom, method="optimal", cap_method="compact",
            rng=np.random.default_rng(0), baseline_samples=50,
        )
        assert 0.0 < report.reduction_vs_random < 1.0
        assert report.reduction_vs_worst >= report.reduction_vs_random - 1e-12

    def test_constraints_forwarded(self, setup):
        geom, bits = setup
        constraints = AssignmentConstraints(
            no_invert=frozenset(range(9)), pinned={8: 4}
        )
        report = optimize_assignment(
            bits, geom, method="optimal", cap_method="compact",
            constraints=constraints, rng=np.random.default_rng(0),
            baseline_samples=20,
        )
        assert constraints.allows(report.assignment)

    def test_shared_extractor_is_used(self, setup):
        geom, bits = setup
        extractor = CapacitanceExtractor(geom, method="compact")
        report = optimize_assignment(
            bits, geom, method="spiral", extractor=extractor,
            baseline_samples=10,
        )
        assert report.method == "spiral"


class TestEvaluateAssignment:
    def test_identity_matches_optimize_identity(self, setup):
        geom, bits = setup
        via_optimize = optimize_assignment(
            bits, geom, method="identity", cap_method="compact",
            rng=np.random.default_rng(0), baseline_samples=30,
        )
        via_evaluate = evaluate_assignment(
            SignedPermutation.identity(9), bits, geom, cap_method="compact",
            rng=np.random.default_rng(0), baseline_samples=30,
        )
        assert via_evaluate.power == pytest.approx(via_optimize.power)
        assert via_evaluate.method == "user"
