"""Tests for the Sec. 3 local-routing overhead model."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing.local import (
    LocalRoutingModel,
    permutation_statistic_moments,
)
from repro.tsv.geometry import TSVArrayGeometry


def model_3x3(**kwargs):
    geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    return LocalRoutingModel(geom, **kwargs)


class TestPermutationMoments:
    def test_matches_enumeration(self):
        rng = np.random.default_rng(1)
        a = rng.uniform(0.0, 1.0, (5, 5))
        values = [
            sum(a[k, perm[k]] for k in range(5))
            for perm in itertools.permutations(range(5))
        ]
        mean, var = permutation_statistic_moments(a)
        assert mean == pytest.approx(np.mean(values))
        assert var == pytest.approx(np.var(values))

    def test_degenerate_single_element(self):
        mean, var = permutation_statistic_moments(np.array([[3.0]]))
        assert mean == 3.0 and var == 0.0  # repro: noqa[REP004] degenerate exact moments

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            permutation_statistic_moments(np.ones((2, 3)))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 5), st.integers(0, 2**31 - 1))
    def test_constant_matrix_has_zero_variance(self, n, seed):
        value = np.random.default_rng(seed).uniform(0.1, 5.0)
        mean, var = permutation_statistic_moments(np.full((n, n), value))
        assert mean == pytest.approx(n * value)
        assert var == pytest.approx(0.0, abs=1e-18)


class TestGeometry:
    def test_bus_terminals_below_array(self):
        model = model_3x3()
        terminals = model.bus_terminal_positions()
        pads = model.pad_positions()
        assert (terminals[:, 1] < pads[:, 1].min()).all()
        # The bus is much tighter than the array.
        assert np.ptp(terminals[:, 0]) < np.ptp(pads[:, 0])

    def test_wire_lengths_positive(self):
        lengths = model_3x3().wire_length_matrix()
        assert lengths.shape == (9, 9)
        assert (lengths > 0.0).all()

    def test_validation(self):
        geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            LocalRoutingModel(geom, bus_pitch=0.0)
        with pytest.raises(ValueError):
            LocalRoutingModel(geom, global_wire_length=-1.0)


class TestOverhead:
    def test_sec3_claim_order_of_magnitude(self):
        """The paper reports <=0.4 % worst case, <0.2 % mean, <0.1 % std —
        our model must land in the same 'negligible' regime (all < 2 %)
        with std < mean < worst."""
        overhead = model_3x3().overhead()
        assert 0.0 < overhead.worst_case < 0.02
        assert 0.0 < overhead.mean < overhead.worst_case
        assert 0.0 < overhead.std < overhead.mean

    def test_bigger_standoff_dilutes_overhead(self):
        # A longer fixed fan-out makes the assignment-dependent share smaller
        # relative... it grows both; instead a longer *global* net dilutes it.
        near = model_3x3(global_wire_length=10e-6).overhead()
        far = model_3x3(global_wire_length=200e-6).overhead()
        assert far.worst_case < near.worst_case

    def test_wider_array_higher_overhead(self):
        geom_small = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        geom_large = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
        small = LocalRoutingModel(geom_small).overhead()
        large = LocalRoutingModel(geom_large).overhead()
        assert large.worst_case > small.worst_case
