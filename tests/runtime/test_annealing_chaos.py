"""Acceptance tests: the annealing search under faults, deadlines, resume."""

import numpy as np
import pytest

from repro.core.optimize import SearchResult, simulated_annealing
from repro.runtime.faults import inject_faults

from .conftest import make_model


def reference(model, seed=42, **kwargs):
    return simulated_annealing(
        model, model.n_lines, rng=np.random.default_rng(seed), **kwargs
    )


class TestValidation:
    def test_n_restarts(self, model):
        with pytest.raises(ValueError, match="got 0"):
            reference(model, n_restarts=0)

    def test_n_jobs(self, model):
        with pytest.raises(ValueError, match="got -3"):
            reference(model, n_restarts=2, n_jobs=-3)

    def test_negative_deadline(self, model):
        with pytest.raises(ValueError, match="got -1.0"):
            reference(model, deadline_s=-1.0)

    def test_checkpoint_every(self, model):
        with pytest.raises(ValueError, match="got 0"):
            reference(model, checkpoint_every=0)

    def test_max_chain_retries(self, model):
        with pytest.raises(ValueError, match="got -1"):
            reference(model, n_restarts=2, max_chain_retries=-1)


class TestInterruptResume:
    def test_interrupt_returns_best_so_far_and_checkpoint(
        self, model, tmp_path
    ):
        clean = reference(model)
        with inject_faults("interrupt_at(5)"):
            partial = reference(model, checkpoint_dir=tmp_path)
        # Satellite (c): the interrupted run still hands back a valid
        # SearchResult and leaves a resumable checkpoint on disk.
        assert isinstance(partial, SearchResult)
        assert not partial.completed
        assert np.isfinite(partial.power)
        assert partial.assignment.n_bits == model.n_lines
        assert list(tmp_path.glob("*.ckpt.json"))

        resumed = reference(model, resume_from=tmp_path)
        assert resumed.completed
        assert resumed.power == clean.power
        assert resumed.evaluations == clean.evaluations
        assert resumed.assignment == clean.assignment

    def test_resume_of_finished_run_is_stable(self, model, tmp_path):
        first = reference(model, checkpoint_dir=tmp_path)
        second = reference(model, resume_from=tmp_path)
        assert second.completed
        assert second.power == first.power

    def test_callable_objective_resume(self, tmp_path):
        model = make_model(5, seed=3)
        clean = simulated_annealing(
            model.power, 5, rng=np.random.default_rng(9)
        )
        with inject_faults("interrupt_at(4)"):
            partial = simulated_annealing(
                model.power, 5, rng=np.random.default_rng(9),
                checkpoint_dir=tmp_path,
            )
        assert not partial.completed
        resumed = simulated_annealing(
            model.power, 5, rng=np.random.default_rng(9),
            resume_from=tmp_path,
        )
        assert resumed.power == clean.power
        assert resumed.evaluations == clean.evaluations

    def test_stale_checkpoint_ignored(self, model, tmp_path, caplog):
        with inject_faults("interrupt_at(5)"):
            reference(model, checkpoint_dir=tmp_path)
        # Different search configuration -> different fingerprint: the
        # stale checkpoint must not leak into this run.
        with caplog.at_level("WARNING", logger="repro.runtime"):
            other = reference(model, cooling=0.9, checkpoint_dir=tmp_path)
        assert other.completed
        assert "stale" in caplog.text or "ignoring" in caplog.text


class TestDegradation:
    def test_two_of_four_chains_crashed_still_returns(
        self, model, caplog
    ):
        clean = simulated_annealing(
            model, model.n_lines, rng=np.random.default_rng(7), n_restarts=4
        )
        with inject_faults("chain_crash(0,2)"):
            with caplog.at_level("WARNING"):
                degraded = simulated_annealing(
                    model, model.n_lines, rng=np.random.default_rng(7),
                    n_restarts=4,
                )
        assert isinstance(degraded, SearchResult)
        assert degraded.completed
        assert degraded.n_failed_chains == 2
        assert np.isfinite(degraded.power)
        # The survivors' chains are untouched, so the degraded best can
        # only be the clean best or worse.
        assert degraded.power >= clean.power
        assert "degraded run: 2 of 4" in caplog.text

    def test_crash_once_retry_reproduces_clean_run(self, model):
        clean = simulated_annealing(
            model, model.n_lines, rng=np.random.default_rng(7), n_restarts=4
        )
        with inject_faults("chain_crash(1,once)"):
            retried = simulated_annealing(
                model, model.n_lines, rng=np.random.default_rng(7),
                n_restarts=4,
            )
        assert retried.n_failed_chains == 0
        assert retried.power == clean.power
        assert retried.assignment == clean.assignment

    def test_all_chains_crashed_raises(self, model):
        with inject_faults("chain_crash(0,1)"):
            with pytest.raises(RuntimeError, match="annealing chains"):
                simulated_annealing(
                    model, model.n_lines, rng=np.random.default_rng(7),
                    n_restarts=2, max_chain_retries=1,
                )


class TestDeadline:
    def test_zero_deadline_returns_best_so_far(self, model):
        result = reference(model, deadline_s=0.0)
        assert not result.completed
        assert np.isfinite(result.power)
        assert result.assignment.n_bits == model.n_lines

    def test_generous_deadline_completes(self, model):
        result = reference(model, deadline_s=600.0)
        assert result.completed
        assert result.power == reference(model).power
