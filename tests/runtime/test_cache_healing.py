"""Self-healing extraction cache under injected corruption."""

import numpy as np
import pytest

from repro.runtime.faults import inject_faults
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


@pytest.fixture()
def geom():
    return TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)


def fdm_extractor(geom, cache_dir):
    return CapacitanceExtractor(
        geom, method="fdm", resolution=0.5e-6, cache_dir=cache_dir
    )


def test_cache_corrupt_fault_heals_transparently(geom, tmp_path, caplog):
    # The fault plan truncates the entry right after it is written; a
    # fresh extractor must detect, evict and recompute it — and the
    # recomputed numbers must match an undisturbed run exactly.
    reference = fdm_extractor(geom, tmp_path / "clean").extract()
    with inject_faults("cache_corrupt(1)"):
        fdm_extractor(geom, tmp_path / "hurt").extract()
    entry = next((tmp_path / "hurt").glob("cap_*.npz"))
    assert entry.stat().st_size > 0  # truncated, not deleted

    with caplog.at_level("WARNING", logger="repro.tsv.extractor"):
        healed = fdm_extractor(geom, tmp_path / "hurt").extract()
    assert "evicting unusable cache entry" in caplog.text
    np.testing.assert_array_equal(healed, reference)


def test_tampered_matrix_rejected_by_checksum(geom, tmp_path):
    ex = fdm_extractor(geom, tmp_path)
    reference = ex.extract()
    entry = next(tmp_path.glob("cap_*.npz"))
    with np.load(entry) as bundle:
        fields = {name: bundle[name] for name in bundle.files}
    fields["matrix"] = fields["matrix"] * 1.01  # bit-rot, checksum now stale
    np.savez(entry, **fields)

    healed = fdm_extractor(geom, tmp_path).extract()
    np.testing.assert_array_equal(healed, reference)


def test_version_bump_invalidates_old_entries(geom, tmp_path, monkeypatch):
    ex = fdm_extractor(geom, tmp_path)
    reference = ex.extract()
    monkeypatch.setattr("repro.tsv.extractor._CACHE_VERSION", 999)
    healed = fdm_extractor(geom, tmp_path).extract()
    np.testing.assert_array_equal(healed, reference)
