"""Chain supervision: retry determinism, bounded retries, deadlines."""

import numpy as np
import pytest

from repro.runtime.supervision import (
    ChainSupervisor,
    Deadline,
    RunControl,
    spawn_seed_sequences,
)


def draw_chain(index, rng, control, attempt):
    """A deterministic 'chain': its result is a pure function of its rng."""
    return float(rng.random(100).sum()) + index


class TestSpawnSeedSequences:
    def test_matches_generator_spawn(self):
        sequences = spawn_seed_sequences(np.random.default_rng(11), 3)
        spawned = np.random.default_rng(11).spawn(3)
        for seq, gen in zip(sequences, spawned):
            rebuilt = np.random.Generator(np.random.PCG64(seq))
            np.testing.assert_array_equal(
                rebuilt.random(8), gen.random(8)
            )

    def test_rejects_generator_without_seed_sequence(self):
        from types import SimpleNamespace

        bare = SimpleNamespace(bit_generator=SimpleNamespace(seed_seq=None))
        with pytest.raises(ValueError, match="SeedSequence"):
            spawn_seed_sequences(bare, 2)


class TestValidation:
    def test_n_chains(self):
        with pytest.raises(ValueError, match="got 0"):
            ChainSupervisor(np.random.default_rng(0), n_chains=0)

    def test_n_jobs(self):
        with pytest.raises(ValueError, match="got -1"):
            ChainSupervisor(np.random.default_rng(0), n_chains=1, n_jobs=-1)

    def test_max_retries(self):
        with pytest.raises(ValueError, match="got -2"):
            ChainSupervisor(
                np.random.default_rng(0), n_chains=1, max_retries=-2
            )

    def test_negative_deadline(self):
        with pytest.raises(ValueError, match="got -0.5"):
            Deadline(-0.5)


class TestRetryDeterminism:
    def clean_results(self, n_jobs=1):
        supervisor = ChainSupervisor(
            np.random.default_rng(7), n_chains=4, n_jobs=n_jobs
        )
        return supervisor.run(draw_chain).results()

    @pytest.mark.parametrize("n_jobs", [1, 4])
    def test_retried_chain_reproduces_clean_result(self, n_jobs):
        failures = {"left": 2}

        def flaky(index, rng, control, attempt):
            if index == 2 and failures["left"] > 0:
                failures["left"] -= 1
                raise RuntimeError("injected flake")
            return draw_chain(index, rng, control, attempt)

        supervisor = ChainSupervisor(
            np.random.default_rng(7), n_chains=4, n_jobs=n_jobs,
            max_retries=2,
        )
        report = supervisor.run(flaky)
        assert report.n_failed == 0
        assert report.n_retried == 2
        assert report.results() == self.clean_results(n_jobs)

    def test_results_in_index_order_parallel(self):
        assert self.clean_results(n_jobs=4) == self.clean_results(n_jobs=1)


class TestDegradation:
    @pytest.mark.parametrize("n_jobs", [1, 3])
    def test_exhausted_chain_dropped_with_warning(self, caplog, n_jobs):
        def doomed(index, rng, control, attempt):
            if index == 1:
                raise RuntimeError("always fails")
            return draw_chain(index, rng, control, attempt)

        supervisor = ChainSupervisor(
            np.random.default_rng(3), n_chains=3, n_jobs=n_jobs,
            max_retries=1,
        )
        with caplog.at_level("WARNING", logger="repro.runtime"):
            report = supervisor.run(doomed)
        assert report.n_failed == 1
        assert len(report.results()) == 2
        assert report.outcomes[1].attempts == 2  # initial + 1 retry, bounded
        assert "degraded run" in caplog.text

    def test_zero_retries(self):
        calls = []

        def failing(index, rng, control, attempt):
            calls.append((index, attempt))
            raise RuntimeError("boom")

        report = ChainSupervisor(
            np.random.default_rng(0), n_chains=2, max_retries=0
        ).run(failing)
        assert report.n_failed == 2
        assert calls == [(0, 0), (1, 0)]


class TestControl:
    def test_deadline_flips_control(self):
        control = RunControl(deadline=Deadline(0.0))
        assert control.should_stop()
        assert not control.interrupted

    def test_interrupt_recorded(self):
        control = RunControl()
        control.request_stop(interrupted=True)
        assert control.should_stop()
        assert control.interrupted

    def test_chain_keyboard_interrupt_stops_run(self):
        ran = []

        def chain(index, rng, control, attempt):
            if control.should_stop():
                return f"best-so-far-{index}"
            ran.append(index)
            if index == 0:
                raise KeyboardInterrupt
            return draw_chain(index, rng, control, attempt)

        supervisor = ChainSupervisor(
            np.random.default_rng(0), n_chains=3, n_jobs=1
        )
        report = supervisor.run(chain)
        assert report.interrupted
        assert ran == [0]
