"""Checkpointed experiment sweeps: interrupt, resume, identical rows."""

import numpy as np
import pytest

from repro.experiments import fig3
from repro.experiments.common import ExperimentSweep
from repro.runtime.faults import inject_faults


class TestExperimentSweepUnit:
    def test_completed_points_not_recomputed_on_resume(self, tmp_path):
        calls = []

        def run(sweep):
            rows = {}
            with sweep.interruptible():
                for label in ("a", "b", "c"):
                    def point(label=label):
                        calls.append(label)
                        return {"value": float(len(label))}

                    rows[label] = sweep.compute(label, point)
            return rows

        first = run(ExperimentSweep("unit", tmp_path, fingerprint={"v": 1}))
        assert calls == ["a", "b", "c"]
        second = run(ExperimentSweep("unit", tmp_path, fingerprint={"v": 1}))
        assert calls == ["a", "b", "c"]  # all served from the checkpoint
        assert second == first

    def test_fingerprint_change_recomputes(self, tmp_path):
        sweep = ExperimentSweep("unit", tmp_path, fingerprint={"v": 1})
        with sweep.interruptible():
            sweep.compute("a", lambda: {"value": 1.0})
        stale = ExperimentSweep("unit", tmp_path, fingerprint={"v": 2})
        calls = []
        with stale.interruptible():
            stale.compute("a", lambda: calls.append("a") or {"value": 2.0})
        assert calls == ["a"]

    def test_interrupt_drops_inflight_point(self, tmp_path):
        sweep = ExperimentSweep("unit", tmp_path)
        with sweep.interruptible():
            sweep.compute("a", lambda: {"value": 1.0})
            def exploding():
                raise KeyboardInterrupt
            sweep.compute("b", exploding)
            pytest.fail("interrupt must leave the loop")  # pragma: no cover
        assert sweep.interrupted
        resumed = ExperimentSweep("unit", tmp_path)
        assert resumed._points == {
            "a": {"fingerprint": None, "values": {"value": 1.0}}
        }

    def test_no_checkpoint_dir_is_stateless(self):
        sweep = ExperimentSweep("unit")
        with sweep.interruptible():
            assert sweep.compute("a", lambda: {"value": 1.0}) == {
                "value": 1.0
            }
        assert ExperimentSweep("unit")._points == {}


class TestFigureSweepResume:
    """End-to-end satellite: a figure interrupted mid-sweep resumes
    bit-identically for a fixed seed."""

    KWARGS = dict(fast=True, rhos=(0.0, -0.6), sigmas=(4.0,), seed=7)

    def rows(self, **extra):
        return {
            r.label: r.values for r in fig3.run(**self.KWARGS, **extra)
        }

    def test_interrupted_then_resumed_rows_identical(self, tmp_path):
        clean = self.rows()
        # interrupt_at counts both sweep-point boundaries and annealing
        # temperature levels (~133 firings for this two-point sweep);
        # 100 lands inside the second point's search.
        with inject_faults("interrupt_at(100)"):
            partial = self.rows(checkpoint_dir=tmp_path)
        assert len(partial) < len(clean)  # the interrupt really bit

        resumed = self.rows(checkpoint_dir=tmp_path)
        assert resumed.keys() == clean.keys()
        for label, values in clean.items():
            for key, value in values.items():
                assert resumed[label][key] == value, (label, key)
