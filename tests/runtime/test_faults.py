"""Fault-injection harness: spec parsing, activation, firing semantics."""

import numpy as np
import pytest

from repro.runtime.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    InjectedFault,
    active_plan,
    fault_point,
    inject_faults,
)


class TestSpecParsing:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultPlan("chain_explode(0)")

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            FaultPlan("chain_crash(0")

    def test_chain_crash_needs_index(self):
        with pytest.raises(ValueError, match="chain index"):
            FaultPlan("chain_crash(once)")

    def test_interrupt_at_needs_positive_count(self):
        with pytest.raises(ValueError, match="got 0"):
            FaultPlan("interrupt_at(0)")

    def test_slow_solve_needs_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan("slow_solve()")

    def test_multi_entry_spec(self):
        plan = FaultPlan("chain_crash(0, 2); slow_solve(0.0);interrupt_at(9)")
        assert plan.active("chain_crash")
        assert plan.active("slow_solve")
        assert plan.active("interrupt_at")
        assert not plan.active("cache_corrupt")

    def test_empty_spec_is_inert(self):
        plan = FaultPlan("")
        for name in ("chain_crash", "cache_corrupt", "interrupt_at"):
            assert not plan.active(name)


class TestActivation:
    def test_no_plan_by_default(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        assert active_plan() is None
        fault_point("chain_crash", chain=0, attempt=0)  # no-op

    def test_env_activation(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "chain_crash(3)")
        plan = active_plan()
        assert plan is not None and plan.active("chain_crash")
        with pytest.raises(InjectedFault):
            fault_point("chain_crash", chain=3, attempt=0)
        # Other chains sail through.
        fault_point("chain_crash", chain=1, attempt=0)

    def test_context_manager_overrides_env(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV_VAR, "chain_crash(0)")
        with inject_faults("slow_solve(0.0)") as plan:
            assert active_plan() is plan
            fault_point("chain_crash", chain=0, attempt=0)  # env masked
        assert active_plan().active("chain_crash")

    def test_context_manager_restores_previous(self, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        with inject_faults("slow_solve(0.0)") as outer:
            with inject_faults("interrupt_at(1)"):
                assert active_plan().active("interrupt_at")
            assert active_plan() is outer
        assert active_plan() is None


class TestFiring:
    def test_chain_crash_every_attempt(self):
        plan = FaultPlan("chain_crash(1)")
        for attempt in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("chain_crash", chain=1, attempt=attempt)

    def test_chain_crash_once_only_first_attempt(self):
        plan = FaultPlan("chain_crash(1,once)")
        with pytest.raises(InjectedFault):
            plan.fire("chain_crash", chain=1, attempt=0)
        plan.fire("chain_crash", chain=1, attempt=1)  # retry succeeds

    def test_interrupt_at_counts_then_disarms(self):
        plan = FaultPlan("interrupt_at(3)")
        plan.fire("interrupt_at")
        plan.fire("interrupt_at")
        with pytest.raises(KeyboardInterrupt):
            plan.fire("interrupt_at")
        # Disarmed after firing: a resumed run is not re-interrupted.
        for _ in range(5):
            plan.fire("interrupt_at")

    def test_cache_corrupt_truncates_budgeted_files(self, tmp_path):
        plan = FaultPlan("cache_corrupt(1)")
        first = tmp_path / "a.bin"
        second = tmp_path / "b.bin"
        payload = np.arange(64, dtype=np.uint8).tobytes()
        first.write_bytes(payload)
        second.write_bytes(payload)
        plan.fire("cache_corrupt", path=first)
        plan.fire("cache_corrupt", path=second)
        assert len(first.read_bytes()) < len(payload)  # truncated
        assert second.read_bytes() == payload  # budget exhausted


class TestPlanConcurrency:
    def test_concurrent_env_plan_install_is_single(self, monkeypatch):
        """All threads racing active_plan() must agree on one env plan.

        Regression test for the REP2xx analysis fix: the environment plan
        is installed under ``_plan_lock`` with a double-checked fast path,
        so concurrent engines never observe two plans for one spec.
        """
        import threading

        from repro.runtime import faults

        monkeypatch.setenv(FAULTS_ENV_VAR, "slow_solve(0.001)")
        monkeypatch.setattr(faults, "_env_plan", None)
        monkeypatch.setattr(faults, "_local_plan", None)

        barrier = threading.Barrier(8)
        plans, errors = [], []

        def resolve():
            try:
                barrier.wait(timeout=30.0)
                for _ in range(50):
                    plans.append(active_plan())
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=resolve) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        assert len(plans) == 8 * 50
        assert len({id(plan) for plan in plans}) == 1
        assert plans[0].active("slow_solve")

    def test_inject_faults_swap_is_locked_and_stacked(self, monkeypatch):
        """Context-manager swaps stay consistent under a reader thread."""
        import threading

        from repro.runtime import faults

        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        monkeypatch.setattr(faults, "_local_plan", None)

        stop = threading.Event()
        seen, errors = set(), []

        def watch():
            try:
                while not stop.is_set():
                    plan = active_plan()
                    if plan is not None:
                        seen.add(plan.spec)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        watcher = threading.Thread(target=watch)
        watcher.start()
        try:
            for _ in range(200):
                with inject_faults("chain_crash(1)"):
                    with inject_faults("slow_solve(0.001)"):
                        pass
                    assert active_plan().spec == "chain_crash(1)"
                assert active_plan() is None
        finally:
            stop.set()
            watcher.join(timeout=30.0)
        assert errors == []
        # The watcher only ever saw fully-installed plans.
        assert seen <= {"chain_crash(1)", "slow_solve(0.001)"}


class TestWorkerFaultParsing:
    def test_worker_crash_needs_an_index(self):
        with pytest.raises(ValueError, match="worker index"):
            FaultPlan("worker_crash(once)")

    def test_worker_crash_at_must_be_positive(self):
        with pytest.raises(ValueError, match="at="):
            FaultPlan("worker_crash(0,at=0)")

    def test_worker_hang_needs_a_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultPlan("worker_hang()")

    def test_worker_hang_rejects_negative(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan("worker_hang(-1.0)")

    def test_fleet_spec_combines_with_legacy_points(self):
        plan = FaultPlan(
            "worker_crash(1,at=12); snapshot_corrupt(2); slow_solve(0.0)"
        )
        assert plan.active("worker_crash")
        assert plan.active("snapshot_corrupt")
        assert plan.active("slow_solve")
        assert not plan.active("worker_hang")


class TestWorkerCrashFiring:
    def test_targets_only_the_named_worker(self):
        plan = FaultPlan("worker_crash(1)")
        plan.fire("worker_crash", worker=0, generation=0)  # not targeted
        with pytest.raises(InjectedFault):
            plan.fire("worker_crash", worker=1, generation=0)

    def test_every_generation_without_once(self):
        plan = FaultPlan("worker_crash(1)")
        for generation in range(3):
            with pytest.raises(InjectedFault):
                plan.fire("worker_crash", worker=1, generation=generation)

    def test_once_spares_restarted_workers(self):
        plan = FaultPlan("worker_crash(1,once)")
        with pytest.raises(InjectedFault):
            plan.fire("worker_crash", worker=1, generation=0)
        # The restarted incarnation must survive or the fleet livelocks.
        plan.fire("worker_crash", worker=1, generation=1)

    def test_at_counts_requests_of_generation_zero_only(self):
        plan = FaultPlan("worker_crash(0,at=3)")
        plan.fire("worker_crash", worker=0, generation=0)
        plan.fire("worker_crash", worker=0, generation=0)
        with pytest.raises(InjectedFault):
            plan.fire("worker_crash", worker=0, generation=0)
        # A restarted worker has a fresh request counter; counting it
        # again would re-crash every incarnation forever.
        for _ in range(5):
            plan.fire("worker_crash", worker=0, generation=1)


class TestWorkerHangAndSnapshotCorrupt:
    def test_worker_hang_zero_duration_returns(self):
        plan = FaultPlan("worker_hang(0.0)")
        plan.fire("worker_hang", worker=0)  # must not raise nor block

    def test_snapshot_corrupt_truncates_budgeted_checkpoints(
        self, tmp_path
    ):
        plan = FaultPlan("snapshot_corrupt(1)")
        first = tmp_path / "snap-a.json"
        second = tmp_path / "snap-b.json"
        payload = b"x" * 64
        first.write_bytes(payload)
        second.write_bytes(payload)
        plan.fire("snapshot_corrupt", path=first)
        plan.fire("snapshot_corrupt", path=second)
        assert len(first.read_bytes()) < len(payload)  # truncated
        assert second.read_bytes() == payload  # budget exhausted

    def test_snapshot_corrupt_without_path_is_inert(self):
        plan = FaultPlan("snapshot_corrupt(1)")
        plan.fire("snapshot_corrupt")  # no path in context: no-op
