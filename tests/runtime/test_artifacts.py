"""Checkpoint artifact layer: envelope, checksums, atomicity, RNG round-trip."""

import json

import numpy as np
import pytest

from repro.runtime.artifacts import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SUFFIX,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    atomic_write_bytes,
    encode_rng_state,
    generator_from_state,
    jsonify,
    payload_digest,
    restore_rng_state,
)


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        payload = jsonify({
            "i": np.int64(3),
            "f": np.float64(0.25),
            "b": np.bool_(True),
            "a": np.arange(3),
            "t": (1, 2),
            "s": {2, 1},
        })
        assert payload == {
            "i": 3, "f": 0.25, "b": True, "a": [0, 1, 2],
            "t": [1, 2], "s": [1, 2],
        }
        # The result must be plain-json serializable.
        json.dumps(payload)

    def test_unserializable_raises(self):
        with pytest.raises(CheckpointError):
            jsonify(object())


class TestRngRoundTrip:
    def test_state_survives_json(self):
        rng = np.random.default_rng(123)
        rng.random(17)
        state = json.loads(json.dumps(encode_rng_state(rng)))
        fresh = np.random.default_rng(0)
        restore_rng_state(fresh, state)
        np.testing.assert_array_equal(rng.random(32), fresh.random(32))

    def test_generator_from_state(self):
        rng = np.random.default_rng(5)
        rng.integers(0, 100, 9)
        clone = generator_from_state(encode_rng_state(rng))
        np.testing.assert_array_equal(
            rng.integers(0, 1000, 16), clone.integers(0, 1000, 16)
        )

    def test_unknown_bit_generator_raises(self):
        with pytest.raises(CheckpointError):
            generator_from_state({"bit_generator": "NoSuchBitGen"})


class TestStore:
    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path, kind="test", fingerprint={"n": 4})
        payload = {"value": 0.1 + 0.2, "steps": [1, 2, 3]}
        path = store.save("alpha", payload, step=7)
        assert path.name == f"alpha{CHECKPOINT_SUFFIX}"
        loaded = store.load("alpha")
        assert isinstance(loaded, Checkpoint)
        assert loaded.step == 7
        # Floats round-trip exactly through the JSON envelope.
        assert loaded.payload == payload

    def test_envelope_fields(self, tmp_path):
        store = CheckpointStore(tmp_path, kind="test")
        path = store.save("a", {"x": 1})
        document = json.loads(path.read_text())
        assert document["format"] == CHECKPOINT_FORMAT
        assert document["kind"] == "test"
        assert document["sha256"] == payload_digest({"x": 1})

    def test_corrupt_file_evicted(self, tmp_path, caplog):
        store = CheckpointStore(tmp_path, kind="test")
        path = store.save("a", {"x": 1})
        path.write_text("{ truncated")
        with caplog.at_level("WARNING", logger="repro.runtime"):
            assert store.load("a") is None
        assert not path.exists()
        assert "evicting" in caplog.text

    def test_checksum_mismatch_evicted(self, tmp_path):
        store = CheckpointStore(tmp_path, kind="test")
        path = store.save("a", {"x": 1})
        document = json.loads(path.read_text())
        document["payload"]["x"] = 2  # tampered, digest now stale
        path.write_text(json.dumps(document))
        assert store.load("a") is None
        assert not path.exists()

    def test_stale_fingerprint_ignored_not_evicted(self, tmp_path, caplog):
        old = CheckpointStore(tmp_path, kind="test", fingerprint={"n": 4})
        path = old.save("a", {"x": 1})
        new = CheckpointStore(tmp_path, kind="test", fingerprint={"n": 5})
        with caplog.at_level("WARNING", logger="repro.runtime"):
            assert new.load("a") is None
        assert path.exists()  # stale, not corrupt: kept for the old config
        assert old.load("a") is not None

    def test_wrong_kind_ignored(self, tmp_path):
        CheckpointStore(tmp_path, kind="alpha").save("a", {"x": 1})
        assert CheckpointStore(tmp_path, kind="beta").load("a") is None

    def test_load_all_and_discard(self, tmp_path):
        store = CheckpointStore(tmp_path, kind="test")
        store.save("a", {"x": 1})
        store.save("b", {"x": 2})
        assert set(store.load_all()) == {"a", "b"}
        store.discard("a")
        assert set(store.load_all()) == {"b"}

    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        target = tmp_path / "deep" / "file.bin"
        atomic_write_bytes(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert list(target.parent.glob("*.tmp")) == []
