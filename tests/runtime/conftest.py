"""Shared fixtures for the runtime chaos suite."""

import numpy as np
import pytest

from repro.core.power import PowerModel
from repro.stats.switching import BitStatistics


@pytest.fixture
def model():
    """A small fixed-matrix PowerModel (6 lines, correlated stream)."""
    return make_model(6, seed=0)


def make_model(n=6, seed=0):
    rng = np.random.default_rng(seed)
    bits = (rng.random((300, n)) < rng.uniform(0.2, 0.8, n)).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    matrix = rng.uniform(0.1, 1.0, (n, n)) * 1e-15
    return PowerModel(stats, (matrix + matrix.T) / 2.0)
