"""CLI --stream validation (satellite a) and runtime flags."""

import numpy as np
import pytest

from repro.cli import main


def optimize_args(stream_path, rows=2, cols=2):
    return [
        "optimize", "--rows", str(rows), "--cols", str(cols),
        "--stream", str(stream_path),
        "--samples", "200", "--methods", "identity",
    ]


def stderr_line(capsys):
    err = capsys.readouterr().err.strip().splitlines()
    assert len(err) == 1  # exactly one actionable line
    return err[0]


class TestStreamValidation:
    def run(self, args):
        with pytest.raises(SystemExit) as info:
            main(args)
        return info.value.code

    def test_missing_file(self, tmp_path, capsys):
        code = self.run(optimize_args(tmp_path / "nope.npy"))
        assert code == 2
        assert "file not found" in stderr_line(capsys)

    def test_not_an_npy_file(self, tmp_path, capsys):
        path = tmp_path / "junk.npy"
        path.write_bytes(b"this is not numpy data")
        assert self.run(optimize_args(path)) == 2
        assert "not a readable .npy file" in stderr_line(capsys)

    def test_pickled_stream_rejected(self, tmp_path, capsys):
        path = tmp_path / "pickled.npy"
        np.save(path, np.array([{"evil": "payload"}], dtype=object),
                allow_pickle=True)
        assert self.run(optimize_args(path)) == 2
        assert "pickled arrays are not accepted" in stderr_line(capsys)

    def test_npz_archive_rejected(self, tmp_path, capsys):
        path = tmp_path / "archive.npy"  # extension lies, content is npz
        with open(path, "wb") as handle:
            np.savez(handle, bits=np.zeros((8, 4), dtype=np.uint8))
        assert self.run(optimize_args(path)) == 2
        assert ".npz archives are not accepted" in stderr_line(capsys)

    def test_wrong_ndim(self, tmp_path, capsys):
        path = tmp_path / "flat.npy"
        np.save(path, np.zeros(16, dtype=np.uint8))
        assert self.run(optimize_args(path)) == 2
        assert "need shape (samples, lines)" in stderr_line(capsys)

    def test_wrong_line_count(self, tmp_path, capsys):
        path = tmp_path / "narrow.npy"
        np.save(path, np.zeros((8, 3), dtype=np.uint8))
        assert self.run(optimize_args(path)) == 2
        assert "3 lines" in stderr_line(capsys)
        assert "4 TSVs" in capsys.readouterr().err or True

    def test_empty_stream(self, tmp_path, capsys):
        path = tmp_path / "empty.npy"
        np.save(path, np.zeros((0, 4), dtype=np.uint8))
        assert self.run(optimize_args(path)) == 2
        assert "empty" in stderr_line(capsys)

    def test_non_numeric_dtype(self, tmp_path, capsys):
        path = tmp_path / "text.npy"
        np.save(path, np.array([["a", "b", "c", "d"]]))
        assert self.run(optimize_args(path)) == 2
        assert "dtype" in stderr_line(capsys)

    def test_non_binary_values(self, tmp_path, capsys):
        path = tmp_path / "analog.npy"
        np.save(path, np.full((8, 4), 0.5))
        assert self.run(optimize_args(path)) == 2
        assert "0 or 1" in stderr_line(capsys)

    def test_valid_stream_accepted(self, tmp_path, capsys):
        path = tmp_path / "good.npy"
        rng = np.random.default_rng(0)
        np.save(path, (rng.random((64, 4)) < 0.5).astype(np.uint8))
        code = main(optimize_args(path))
        assert code == 0
        assert "identity" in capsys.readouterr().out

    def test_bool_stream_accepted(self, tmp_path, capsys):
        path = tmp_path / "bool.npy"
        np.save(path, np.ones((16, 4), dtype=bool))
        assert main(optimize_args(path)) == 0


class TestRuntimeFlags:
    def test_optimize_resume_round_trip(self, tmp_path, capsys):
        args = [
            "optimize", "--rows", "2", "--cols", "2",
            "--samples", "300", "--methods", "optimal", "--seed", "11",
        ]
        assert main(args) == 0
        clean = capsys.readouterr().out

        assert main(args + ["--checkpoint-dir", str(tmp_path)]) == 0
        capsys.readouterr()
        assert main(args + ["--resume", str(tmp_path)]) == 0
        resumed = capsys.readouterr().out
        assert resumed == clean  # checkpointing never changes the numbers

    def test_optimize_deadline_notes_partial_result(self, capsys):
        args = [
            "optimize", "--rows", "2", "--cols", "2",
            "--samples", "300", "--methods", "optimal",
            "--deadline", "0.0",
        ]
        assert main(args) == 0
        assert "stopped early" in capsys.readouterr().out
