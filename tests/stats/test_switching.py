"""Tests for empirical bit statistics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.stats.switching import BitStatistics, validate_bit_stream


class TestValidation:
    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            validate_bit_stream(np.zeros(10))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            validate_bit_stream(np.zeros((1, 4)))

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            validate_bit_stream(np.full((4, 4), 2))

    def test_returns_uint8(self):
        out = validate_bit_stream(np.zeros((3, 2), dtype=np.int64))
        assert out.dtype == np.uint8


class TestFromStream:
    def test_known_toggling_stream(self):
        # Line 0 toggles every cycle, line 1 constant, line 2 toggles with 0.
        bits = np.array([
            [0, 1, 0],
            [1, 1, 1],
            [0, 1, 0],
            [1, 1, 1],
        ], dtype=np.uint8)
        stats = BitStatistics.from_stream(bits)
        np.testing.assert_allclose(stats.self_switching, [1.0, 0.0, 1.0])
        # Lines 0 and 2 always switch together: E{db0 db2} = 1.
        assert stats.coupling[0, 2] == pytest.approx(1.0)
        assert stats.coupling[0, 1] == pytest.approx(0.0)
        np.testing.assert_allclose(stats.probabilities, [0.5, 1.0, 0.5])

    def test_anticorrelated_lines(self):
        bits = np.array([
            [0, 1],
            [1, 0],
            [0, 1],
        ], dtype=np.uint8)
        stats = BitStatistics.from_stream(bits)
        assert stats.coupling[0, 1] == pytest.approx(-1.0)

    def test_constant_stream(self):
        bits = np.ones((10, 3), dtype=np.uint8)
        stats = BitStatistics.from_stream(bits)
        np.testing.assert_allclose(stats.self_switching, 0.0)
        np.testing.assert_allclose(stats.coupling, 0.0)
        np.testing.assert_allclose(stats.probabilities, 1.0)

    def test_shape_checks_in_constructor(self):
        with pytest.raises(ValueError):
            BitStatistics(
                self_switching=np.zeros(3),
                coupling=np.zeros((2, 2)),
                probabilities=np.zeros(3),
                n_samples=10,
            )


class TestMatrices:
    def test_t_matrix_definition(self):
        bits = (np.random.default_rng(0).random((100, 4)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        n = 4
        expected = stats.t_s @ np.ones((n, n)) - stats.t_c
        np.testing.assert_allclose(stats.t_matrix, expected)

    def test_t_c_diagonal_is_zero(self):
        bits = (np.random.default_rng(1).random((50, 3)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        np.testing.assert_allclose(np.diag(stats.t_c), 0.0)

    def test_epsilon(self):
        stats = BitStatistics.from_moments(
            np.full(2, 0.5), np.zeros((2, 2)), np.array([0.25, 1.0])
        )
        np.testing.assert_allclose(stats.epsilon, [-0.25, 0.5])


class TestConsistency:
    def test_from_moments_fills_diagonal(self):
        stats = BitStatistics.from_moments(
            np.array([0.3, 0.4]),
            np.array([[9.0, 0.1], [0.1, 9.0]]),
            np.array([0.5, 0.5]),
        )
        np.testing.assert_allclose(np.diag(stats.coupling), [0.3, 0.4])

    def test_check_consistency_accepts_empirical(self):
        bits = (np.random.default_rng(3).random((100, 5)) < 0.3).astype(np.uint8)
        BitStatistics.from_stream(bits).check_consistency()

    def test_check_consistency_rejects_bad_probability(self):
        stats = BitStatistics.from_moments(
            np.full(2, 0.5), np.zeros((2, 2)), np.array([0.5, 1.5])
        )
        with pytest.raises(ValueError):
            stats.check_consistency()

    def test_check_consistency_rejects_cauchy_schwarz_violation(self):
        stats = BitStatistics.from_moments(
            np.array([0.1, 0.1]),
            np.array([[0.0, 0.5], [0.5, 0.0]]),
            np.array([0.5, 0.5]),
        )
        with pytest.raises(ValueError):
            stats.check_consistency()


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.uint8, st.tuples(st.integers(5, 60), st.integers(2, 6)),
        elements=st.integers(0, 1),
    )
)
def test_empirical_statistics_always_consistent(bits):
    """Any real stream yields moments satisfying the probabilistic bounds."""
    stats = BitStatistics.from_stream(bits)
    stats.check_consistency()
    assert (np.abs(stats.coupling) <= 1.0 + 1e-12).all()
