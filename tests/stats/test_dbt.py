"""Tests for the dual-bit-type analytic model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.dbt import breakpoints, dbt_statistics, sign_flip_probability
from repro.stats.switching import BitStatistics


class TestSignFlipProbability:
    def test_white_noise(self):
        assert sign_flip_probability(0.0) == pytest.approx(0.5)

    def test_perfect_correlation(self):
        assert sign_flip_probability(1.0) == pytest.approx(0.0)

    def test_perfect_anticorrelation(self):
        assert sign_flip_probability(-1.0) == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        values = [sign_flip_probability(r) for r in (-0.9, -0.5, 0.0, 0.5, 0.9)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            sign_flip_probability(1.5)


class TestBreakpoints:
    def test_ordering(self):
        bp0, bp1 = breakpoints(16, sigma=256.0)
        assert 0.0 <= bp0 <= bp1 <= 15.0

    def test_sigma_moves_both(self):
        lo0, lo1 = breakpoints(16, sigma=16.0)
        hi0, hi1 = breakpoints(16, sigma=1024.0)
        assert hi0 > lo0 and hi1 > lo1

    def test_mean_moves_bp1_only(self):
        base0, base1 = breakpoints(16, sigma=64.0, mean=0.0)
        off0, off1 = breakpoints(16, sigma=64.0, mean=2000.0)
        assert off0 == base0
        assert off1 > base1

    def test_rejects_bad_sigma(self):
        with pytest.raises(ValueError):
            breakpoints(16, sigma=0.0)


class TestDbtStatistics:
    def test_lsbs_are_uniform(self):
        stats = dbt_statistics(16, sigma=256.0, rho=0.7)
        np.testing.assert_allclose(stats.self_switching[:8], 0.5)
        np.testing.assert_allclose(stats.coupling[0, 1:], 0.0, atol=1e-12)
        np.testing.assert_allclose(stats.probabilities[:8], 0.5)

    def test_msbs_copy_the_sign(self):
        stats = dbt_statistics(16, sigma=256.0, rho=0.7)
        p_flip = sign_flip_probability(0.7)
        np.testing.assert_allclose(stats.self_switching[-4:], p_flip)
        assert stats.coupling[14, 15] == pytest.approx(p_flip)

    def test_negative_rho_raises_switching(self):
        stats = dbt_statistics(16, sigma=256.0, rho=-0.7)
        assert (stats.self_switching[-4:] > 0.5).all()

    def test_nonzero_mean_biases_sign_probability(self):
        stats = dbt_statistics(16, sigma=256.0, mean=300.0)
        # Positive mean -> sign bit mostly 0 -> P(1) < 1/2.
        assert stats.probabilities[-1] < 0.5

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            dbt_statistics(0, sigma=16.0)

    @pytest.mark.parametrize("rho", [0.0, 0.6, -0.6])
    def test_matches_empirical_ar1_stream(self, rho):
        """The analytic model must track sampled AR(1) streams closely."""
        rng = np.random.default_rng(99)
        bits = gaussian_bit_stream(40000, 16, sigma=256.0, rho=rho, rng=rng)
        empirical = BitStatistics.from_stream(bits)
        analytic = dbt_statistics(16, sigma=256.0, rho=rho)
        np.testing.assert_allclose(
            analytic.self_switching, empirical.self_switching, atol=0.05
        )
        # MSB block coupling.
        np.testing.assert_allclose(
            analytic.coupling[12:, 12:], empirical.coupling[12:, 12:],
            atol=0.05,
        )


@settings(max_examples=25, deadline=None)
@given(
    width=st.integers(4, 24),
    sigma=st.floats(1.0, 1e5),
    rho=st.floats(-0.95, 0.95),
)
def test_dbt_statistics_always_consistent(width, sigma, rho):
    stats = dbt_statistics(width, sigma=sigma, rho=rho)
    stats.check_consistency()
    assert stats.n_lines == width
