"""Wire framing: pack/parse round trips and corrupt-frame rejection."""

import io

import numpy as np
import pytest

from repro.serve.protocol import (
    HEADER,
    MAGIC,
    ProtocolError,
    pack_frame,
    payload_to_words,
    read_frame_blocking,
    words_to_payload,
    write_frame_blocking,
)


class TestFraming:
    def test_round_trip(self):
        words = np.array([0, 1, 2**62 - 1, 17], dtype=np.int64)
        frame = pack_frame(
            {"op": "encode", "id": 3}, words_to_payload(words)
        )
        header, payload = read_frame_blocking(io.BytesIO(frame))
        assert header == {"op": "encode", "id": 3}
        np.testing.assert_array_equal(payload_to_words(payload), words)

    def test_empty_payload(self):
        header, payload = read_frame_blocking(
            io.BytesIO(pack_frame({"op": "ping", "id": 0}))
        )
        assert payload == b""
        assert len(payload_to_words(payload)) == 0

    def test_blocking_write_matches_pack(self):
        stream = io.BytesIO()
        write_frame_blocking(stream, {"id": 1}, b"\x00" * 8)
        assert stream.getvalue() == pack_frame({"id": 1}, b"\x00" * 8)

    def test_clean_eof(self):
        with pytest.raises(EOFError):
            read_frame_blocking(io.BytesIO(b""))

    def test_truncated_frame(self):
        frame = pack_frame({"op": "ping", "id": 0}, b"\x01" * 16)
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_frame_blocking(io.BytesIO(frame[:-3]))

    def test_bad_magic(self):
        frame = bytearray(pack_frame({"op": "ping"}))
        frame[0:2] = b"XX"
        with pytest.raises(ProtocolError, match="magic"):
            read_frame_blocking(io.BytesIO(bytes(frame)))

    def test_bad_version(self):
        frame = bytearray(pack_frame({"op": "ping"}))
        frame[2] = 99
        with pytest.raises(ProtocolError, match="version"):
            read_frame_blocking(io.BytesIO(bytes(frame)))

    def test_header_must_be_json_object(self):
        body = b"[1, 2]"
        frame = HEADER.pack(MAGIC, 1, len(body), 0) + body
        with pytest.raises(ProtocolError, match="JSON object"):
            read_frame_blocking(io.BytesIO(frame))

    def test_header_must_be_valid_json(self):
        body = b"{nope"
        frame = HEADER.pack(MAGIC, 1, len(body), 0) + body
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_frame_blocking(io.BytesIO(frame))

    def test_oversized_header_rejected_without_reading_it(self):
        frame = HEADER.pack(MAGIC, 1, (1 << 20) + 1, 0)
        with pytest.raises(ProtocolError, match="too large"):
            read_frame_blocking(io.BytesIO(frame))


class TestPayloadCodec:
    def test_words_survive_the_wire(self):
        words = np.array([-1, 0, 2**63 - 1], dtype=np.int64)
        np.testing.assert_array_equal(
            payload_to_words(words_to_payload(words)), words
        )

    def test_ragged_payload_rejected(self):
        with pytest.raises(ProtocolError, match="whole number"):
            payload_to_words(b"\x00" * 9)

    def test_non_integer_stream_rejected(self):
        with pytest.raises(ProtocolError, match="integer"):
            words_to_payload(np.array([1.5]))

    def test_2d_stream_rejected(self):
        with pytest.raises(ProtocolError, match="1-D"):
            words_to_payload(np.zeros((2, 2), dtype=np.int64))
