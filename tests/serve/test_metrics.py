"""Metrics layer: exact energy accounting, histograms, rate meters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.common import cap_model_for
from repro.core.fastpower import CompiledPowerModel
from repro.serve.metrics import (
    EnergyAccount,
    LatencyHistogram,
    LinkMetrics,
    RateMeter,
    merge_latency_states,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

GEOMETRY = TSVArrayGeometry(rows=2, cols=3, pitch=4.0e-6, radius=1.0e-6)


def bit_stream(n, lines, seed=0):
    return np.random.default_rng(seed).integers(
        0, 2, (n, lines)
    ).astype(np.uint8)


class TestEnergyAccountExactness:
    """Batched accumulation == offline whole-stream statistics, bit for bit."""

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 400), max_size=5))
    def test_matches_from_stream_under_any_batching(self, cuts):
        bits = bit_stream(400, 6)
        capacitance = cap_model_for(GEOMETRY)
        account = EnergyAccount(6, capacitance)
        edges = [0] + sorted(set(cuts)) + [len(bits)]
        for a, b in zip(edges[:-1], edges[1:]):
            account.update(bits[a:b])
        offline = BitStatistics.from_stream(bits)
        online = account.statistics()
        np.testing.assert_array_equal(online.coupling, offline.coupling)
        np.testing.assert_array_equal(
            online.self_switching, offline.self_switching
        )
        np.testing.assert_array_equal(
            online.probabilities, offline.probabilities
        )
        offline_power = CompiledPowerModel(offline, capacitance).power()
        assert account.normalized_power() == offline_power

    def test_boundary_transition_is_counted(self):
        capacitance = cap_model_for(GEOMETRY)
        account = EnergyAccount(6, capacitance)
        account.update(np.zeros((1, 6), dtype=np.uint8))
        account.update(np.ones((1, 6), dtype=np.uint8))
        stats = account.statistics()
        # The only transition flips all six lines.
        np.testing.assert_array_equal(
            stats.self_switching, np.ones(6)
        )

    def test_empty_and_single_sample(self):
        account = EnergyAccount(6, cap_model_for(GEOMETRY))
        assert account.statistics() is None
        assert account.normalized_power() is None
        account.update(np.zeros((0, 6), dtype=np.uint8))
        assert account.n_samples == 0
        account.update(np.zeros((1, 6), dtype=np.uint8))
        assert account.statistics() is None
        report = account.report()
        assert report["normalized_power_farad"] is None
        assert report["power_mw"] is None

    def test_shape_validation(self):
        account = EnergyAccount(6, cap_model_for(GEOMETRY))
        with pytest.raises(ValueError, match="expected"):
            account.update(np.zeros((3, 5), dtype=np.uint8))
        with pytest.raises(ValueError, match="n_lines"):
            EnergyAccount(0, cap_model_for(GEOMETRY))

    def test_report_units(self):
        account = EnergyAccount(6, cap_model_for(GEOMETRY))
        account.update(bit_stream(100, 6))
        report = account.report(vdd=1.0, frequency=2.0e9)
        power = account.normalized_power()
        assert report["power_mw"] == pytest.approx(
            1.0e3 * power * 1.0 * 2.0e9 / 2.0
        )


class TestLatencyHistogram:
    def test_percentiles_bracket_recorded_values(self):
        histogram = LatencyHistogram()
        values = np.linspace(1e-4, 1e-2, 1000)
        for v in values:
            histogram.record(float(v))
        p50 = histogram.percentile(50.0)
        p99 = histogram.percentile(99.0)
        assert 3e-3 < p50 < 8e-3
        assert p99 > p50
        assert histogram.percentile(100.0) == pytest.approx(1e-2, rel=0.2)

    def test_empty_histogram(self):
        histogram = LatencyHistogram()
        assert histogram.percentile(99.0) == 0.0
        assert histogram.summary()["count"] == 0.0

    def test_invalid_percentile(self):
        with pytest.raises(ValueError, match="percentile"):
            LatencyHistogram().percentile(101.0)

    def test_summary_fields(self):
        histogram = LatencyHistogram()
        histogram.record(1e-3)
        summary = histogram.summary()
        assert int(summary["count"]) == 1
        assert summary["mean_s"] == pytest.approx(1e-3)
        assert summary["max_s"] == pytest.approx(1e-3)


class TestRateMeter:
    def test_rate_over_window(self):
        meter = RateMeter(window_s=10.0)
        meter.add(100, now=0.0)
        meter.add(100, now=1.0)
        meter.add(100, now=2.0)
        assert meter.rate(now=2.0) == pytest.approx(150.0)
        assert meter.total == 300

    def test_old_events_expire(self):
        meter = RateMeter(window_s=1.0)
        meter.add(1000, now=0.0)
        meter.add(10, now=5.0)
        meter.add(10, now=5.5)
        assert meter.rate(now=5.5) == pytest.approx(40.0)

    def test_empty_meter(self):
        assert RateMeter().rate() == 0.0


class TestLinkMetrics:
    def test_snapshot_counts(self):
        metrics = LinkMetrics()
        metrics.note_submitted(queue_depth=3)
        metrics.note_submitted(queue_depth=5)
        metrics.note_batch("encode", n_requests=2, n_words=100)
        metrics.note_shed()
        metrics.note_deadline_missed()
        snapshot = metrics.snapshot()
        assert snapshot["requests"] == 2
        assert snapshot["batches"] == 1
        assert snapshot["words_encoded"] == 100
        assert snapshot["words_decoded"] == 0
        assert snapshot["shed"] == 1
        assert snapshot["deadline_missed"] == 1
        assert snapshot["max_queue_depth"] == 5
        assert snapshot["mean_batch_requests"] == pytest.approx(2.0)
        assert "latency" in snapshot and "words_per_s" in snapshot


class TestSnapshotConsistency:
    def test_histogram_readers_race_recorders(self):
        """count/percentile/summary must hold the lock (REP202 fixes)."""
        import threading

        histogram = LatencyHistogram()
        stop = threading.Event()
        errors = []

        def record():
            value = 1.0e-5
            while not stop.is_set():
                histogram.record(value)
                value *= 1.0000001

        def read():
            try:
                while not stop.is_set():
                    assert histogram.count >= 0
                    summary = histogram.summary()
                    # The locked snapshot keeps the invariant p99 <= max.
                    assert summary["p99_s"] <= summary["max_s"] + 1e-12
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        writer = threading.Thread(target=record)
        reader = threading.Thread(target=read)
        writer.start()
        reader.start()
        stop_after = 0.2
        writer.join(timeout=stop_after)
        stop.set()
        writer.join(timeout=30.0)
        reader.join(timeout=30.0)
        assert errors == []

    def test_rate_meter_total_is_locked(self):
        import threading

        meter = RateMeter(window_s=100.0)
        threads = [
            threading.Thread(
                target=lambda: [meter.add(1) for _ in range(1000)]
            )
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert meter.total == 4000


class TestMergeLatencyStates:
    """The fleet-level histogram fold must be order-invariant: links
    arrive from workers in whatever order the stats race settles, and
    the merged summary must not depend on it."""

    @staticmethod
    def histogram_state(latencies):
        histogram = LatencyHistogram()
        for seconds in latencies:
            histogram.record(seconds)
        return histogram.state_dict()

    @given(
        batches=st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=30.0,
                          allow_nan=False, allow_infinity=False),
                max_size=30,
            ),
            max_size=8,
        ),
        data=st.data(),
    )
    @settings(max_examples=100, deadline=None)
    def test_any_permutation_merges_bit_identically(self, batches, data):
        states = [self.histogram_state(batch) for batch in batches]
        merged = merge_latency_states(states)
        permuted = data.draw(st.permutations(states))
        assert merge_latency_states(permuted) == merged
        # Sanity: the fold actually aggregated everything.
        assert merged["count"] == sum(len(batch) for batch in batches)

    def test_single_state_matches_its_summary(self):
        latencies = [0.001, 0.01, 0.25, 3.0]
        state = self.histogram_state(latencies)
        merged = merge_latency_states([state])
        histogram = LatencyHistogram()
        for seconds in latencies:
            histogram.record(seconds)
        summary = histogram.summary()
        for key in ("p50_s", "p95_s", "p99_s", "max_s", "mean_s"):
            assert merged[key] == summary[key]

    def test_malformed_state_rejected(self):
        good = self.histogram_state([0.01])
        with pytest.raises(ValueError):
            merge_latency_states([good, "not-a-mapping"])
        bad = dict(good, counts=[1, 2, 3])
        with pytest.raises(ValueError):
            merge_latency_states([bad])
        missing = {k: v for k, v in good.items() if k != "counts"}
        with pytest.raises(ValueError, match="counts"):
            merge_latency_states([missing])
