"""Streaming codec layer: chunk invariance + exact inversion.

The two properties everything above this layer relies on:

* encoding a stream chunk by chunk (any split) is bit-identical to the
  offline :mod:`repro.coding` transform of the whole stream;
* ``decode(encode(x)) == x`` with independent per-direction history, for
  every codec and every chain.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.businvert import (
    bus_invert_encode,
    coupling_invert_encode,
)
from repro.coding.correlator import correlate_words
from repro.coding.gray import gray_encode_words
from repro.serve.codecs import (
    MAX_WORD_WIDTH,
    BusInvertCodec,
    CacCodec,
    CodecChain,
    CorrelatorCodec,
    CouplingInvertCodec,
    GrayCodec,
    build_chain,
    build_codec,
    parse_codec_spec,
)
from repro.tsv.geometry import TSVArrayGeometry

GEOMETRY = TSVArrayGeometry(rows=3, cols=3, pitch=4.0e-6, radius=1.0e-6)


def chunked(codec_method, words, cuts):
    """Apply a stream method chunk by chunk at the given cut points."""
    edges = [0] + sorted(set(cuts)) + [len(words)]
    pieces = [
        codec_method(words[a:b]) for a, b in zip(edges[:-1], edges[1:])
    ]
    pieces = [p for p in pieces if len(p)]
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)


def splits(n, max_cuts=6):
    return st.lists(st.integers(0, n), max_size=max_cuts)


def stream(width, n=257, seed=0):
    return np.random.default_rng(seed).integers(0, 1 << width, n)


class TestChunkInvariance:
    """Chunked streaming == offline whole-stream transform."""

    @settings(max_examples=40, deadline=None)
    @given(splits(257), st.booleans())
    def test_gray(self, cuts, negated):
        words = stream(8)
        codec = GrayCodec(8, negated=negated)
        np.testing.assert_array_equal(
            chunked(codec.encode, words, cuts),
            gray_encode_words(words, 8, negated=negated),
        )

    @settings(max_examples=40, deadline=None)
    @given(splits(257), st.integers(1, 5), st.booleans())
    def test_correlator(self, cuts, n_channels, negated):
        words = stream(8)
        codec = CorrelatorCodec(8, n_channels=n_channels, negated=negated)
        np.testing.assert_array_equal(
            chunked(codec.encode, words, cuts),
            correlate_words(
                words, 8, n_channels=n_channels, negated=negated
            ),
        )

    @settings(max_examples=40, deadline=None)
    @given(splits(257))
    def test_businvert(self, cuts):
        words = stream(8)
        codec = BusInvertCodec(8)
        coded, flags = bus_invert_encode(words, 8)
        np.testing.assert_array_equal(
            chunked(codec.encode, words, cuts),
            coded + (flags.astype(np.int64) << 8),
        )

    @settings(max_examples=40, deadline=None)
    @given(splits(257))
    def test_couplinginvert(self, cuts):
        words = stream(7)
        codec = CouplingInvertCodec(7)
        coded, flags = coupling_invert_encode(words, 7)
        np.testing.assert_array_equal(
            chunked(codec.encode, words, cuts),
            coded + (flags.astype(np.int64) << 7),
        )

    def test_businvert_wide_bus_skips_popcount_table(self):
        # Beyond the table bound the codec must count bits per word
        # instead of allocating a 2^width table; still bit-exact against
        # the offline transform, and decode still inverts it.
        words = stream(32, n=40)
        codec = BusInvertCodec(32)
        assert codec._popcount is None
        coded, flags = bus_invert_encode(words, 32)
        encoded = codec.encode(words)
        np.testing.assert_array_equal(
            encoded, coded + (flags.astype(np.int64) << 32)
        )
        np.testing.assert_array_equal(codec.decode(encoded), words)

    def test_couplinginvert_wide_bus_reference_path(self):
        # Beyond the cost-table bound the codec must fall back to the
        # reference cost function and still match the offline transform.
        words = stream(11, n=40)
        codec = CouplingInvertCodec(11)
        assert codec._table is None
        coded, flags = coupling_invert_encode(words, 11)
        np.testing.assert_array_equal(
            codec.encode(words), coded + (flags.astype(np.int64) << 11)
        )

    @settings(max_examples=20, deadline=None)
    @given(splits(100))
    def test_cac(self, cuts):
        codec = CacCodec(GEOMETRY)
        words = stream(codec.width_in, n=100, seed=3)
        np.testing.assert_array_equal(
            chunked(codec.encode, words, cuts),
            codec.codebook.encode(words),
        )


CHAIN_SPECS = [
    [],
    [{"kind": "gray"}],
    [{"kind": "gray", "negated": True}],
    [{"kind": "correlator", "n_channels": 3, "negated": True}],
    [{"kind": "businvert"}],
    [{"kind": "couplinginvert"}],
    [{"kind": "correlator", "n_channels": 2},
     {"kind": "gray", "negated": True},
     {"kind": "businvert"}],
]


class TestRoundTrip:
    @pytest.mark.parametrize("specs", CHAIN_SPECS)
    def test_chain_inverse_under_mismatched_chunking(self, specs):
        chain = build_chain(specs, 8, geometry=GEOMETRY)
        words = stream(8, n=500, seed=1)
        rng = np.random.default_rng(2)
        enc_cuts = sorted(rng.integers(0, len(words), 5).tolist())
        coded = chunked(chain.encode, words, enc_cuts)
        dec_cuts = sorted(rng.integers(0, len(words), 7).tolist())
        np.testing.assert_array_equal(
            chunked(chain.decode, coded, dec_cuts), words
        )

    def test_cac_chain_round_trip(self):
        chain = build_chain([{"kind": "cac"}], 5, geometry=GEOMETRY)
        words = stream(5, n=300, seed=4)
        np.testing.assert_array_equal(
            chain.decode(chain.encode(words)), words
        )

    def test_encode_and_decode_histories_are_independent(self):
        codec = CorrelatorCodec(8, n_channels=2, negated=True)
        words = stream(8, n=100, seed=5)
        # Interleave encode and decode of the *same* link object.
        coded_a = codec.encode(words[:50])
        back_a = codec.decode(coded_a)
        coded_b = codec.encode(words[50:])
        back_b = codec.decode(coded_b)
        np.testing.assert_array_equal(
            np.concatenate([back_a, back_b]), words
        )

    def test_reset_restarts_the_stream(self):
        codec = BusInvertCodec(8)
        words = stream(8, n=64, seed=6)
        first = codec.encode(words)
        codec.reset()
        np.testing.assert_array_equal(codec.encode(words), first)


class TestValidationAndSpecs:
    def test_words_must_fit_width(self):
        with pytest.raises(ValueError, match="unsigned range"):
            GrayCodec(4).encode(np.array([16]))

    def test_width_bounds(self):
        with pytest.raises(ValueError, match="width"):
            GrayCodec(MAX_WORD_WIDTH + 1).encode(np.array([0]))
        with pytest.raises(ValueError, match="flag line"):
            BusInvertCodec(MAX_WORD_WIDTH)

    def test_unknown_kind_and_options(self):
        with pytest.raises(ValueError, match="unknown codec kind"):
            build_codec({"kind": "huffman"}, 8)
        with pytest.raises(ValueError, match="unknown gray codec options"):
            build_codec({"kind": "gray", "wat": 1}, 8)

    def test_cac_needs_geometry_and_matching_width(self):
        with pytest.raises(ValueError, match="geometry"):
            build_codec({"kind": "cac"}, 5)
        with pytest.raises(ValueError, match="payload bits"):
            build_chain([{"kind": "cac"}], 8, geometry=GEOMETRY)

    def test_chain_width_mismatch(self):
        with pytest.raises(ValueError, match="expects width"):
            CodecChain([GrayCodec(8)], 9)

    def test_specs_round_trip_through_build(self):
        chain = build_chain(CHAIN_SPECS[-1], 8, geometry=GEOMETRY)
        rebuilt = build_chain(chain.specs(), 8, geometry=GEOMETRY)
        words = stream(8, n=40, seed=7)
        np.testing.assert_array_equal(
            rebuilt.encode(words), build_chain(
                CHAIN_SPECS[-1], 8, geometry=GEOMETRY
            ).encode(words)
        )

    def test_parse_codec_spec_shorthand(self):
        assert parse_codec_spec("gray:negated") == {
            "kind": "gray", "negated": True
        }
        assert parse_codec_spec("correlator:n_channels=4,negated=false") == {
            "kind": "correlator", "n_channels": 4, "negated": False
        }
        with pytest.raises(ValueError, match="empty"):
            parse_codec_spec(":negated")


class TestCacCacheConcurrency:
    def test_concurrent_construction_shares_one_codebook(self):
        """The class-level codebook cache must survive a construction race.

        Regression test for the REP2xx analysis fix: the cache read is
        double-checked and the slow codebook build happens outside
        ``_cache_lock``, so losing the race must still leave exactly one
        cached codebook that every instance shares.
        """
        import threading

        geometry = TSVArrayGeometry(
            rows=2, cols=2, pitch=4.0e-6, radius=1.0e-6
        )
        key = (geometry.cache_key(), False)
        with CacCodec._cache_lock:
            CacCodec._codebook_cache.pop(key, None)

        barrier = threading.Barrier(8)
        codecs, errors = [], []

        def construct():
            try:
                barrier.wait(timeout=30.0)
                codecs.append(CacCodec(geometry))
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=construct) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert errors == []
        assert len(codecs) == 8
        # Exactly one winner was installed and everyone adopted it.
        cached = CacCodec._codebook_cache[key]
        assert all(codec.codebook is cached for codec in codecs)
        words = stream(cached.payload_bits, n=64, seed=3)
        for codec in codecs:
            np.testing.assert_array_equal(
                codec.decode(codec.encode(words)), words
            )
