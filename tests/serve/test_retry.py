"""Client-side retry: reconnect replay and retriable-NACK re-issue.

Retries are strictly opt-in (``retries=0`` keeps the old fail-fast
behaviour). With ``retries=N`` the client reconnects with bounded
exponential backoff, replays un-ACKed requests through the server's
session cache (exactly-once), and re-issues explicit retriable NACKs.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.serve import LinkClient, OverloadedError
from repro.serve.protocol import (
    error_header,
    payload_to_words,
    read_frame_blocking,
    words_to_payload,
    write_frame_blocking,
)
from repro.serve.server import BackgroundServer, LinkServer, jsonable
from repro.serve.session import LinkConfig, LinkSession

CONFIG = LinkConfig.from_dict({
    "width": 8,
    "geometry": {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6},
    "codecs": [{"kind": "correlator", "n_channels": 4, "negated": True}],
})


def words_stream(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**8, size=n, dtype=np.int64)


class SheddingServer(LinkServer):
    """NACKs the first attempt of every data request, retriably."""

    def __init__(self, always=False):
        super().__init__()
        self.always = always
        self.shed_ids = set()

    def _dispatch(self, header, payload, reply, conn=None):
        request_id = header.get("id")
        if (header.get("op") in ("encode", "decode")
                and (self.always or request_id not in self.shed_ids)):
            self.shed_ids.add(request_id)
            loop = asyncio.get_running_loop()
            return loop.create_task(reply(jsonable(error_header(
                request_id, OverloadedError("shed for test"),
                retriable=True,
            ))))
        return super()._dispatch(header, payload, reply, conn)


class MidStreamShedServer(LinkServer):
    """Sheds exactly one mid-stream enqueue through the real overload path.

    Unlike :class:`SheddingServer` (which NACKs the *first* attempt of
    every request, so nothing is ever applied out of order), this server
    accepts a few chunks, then fails one ``engine.enqueue`` call the way
    a full queue would — while later chunks of the same pipelined window
    are already in flight. Only the server's order fence keeps the
    re-issued chunk from being applied behind them.
    """

    def __init__(self, shed_at=4):
        super().__init__()
        self.enqueue_calls = 0
        real_enqueue = self.engine.enqueue

        def enqueue(*args, **kwargs):
            self.enqueue_calls += 1
            if self.enqueue_calls == shed_at:
                raise OverloadedError("queue full (test)")
            return real_enqueue(*args, **kwargs)

        self.engine.enqueue = enqueue


class FenceViolatingServer(LinkServer):
    """Breaks the order-fence promise of ``retriable`` on purpose.

    Swallows the ``target`` data request, answers ``target + 1`` ok,
    and only then NACKs ``target`` retriably — re-issuing it would
    append its chunk behind a later one.
    """

    def __init__(self, target=5):
        super().__init__()
        self.target = target

    def _dispatch(self, header, payload, reply, conn=None):
        request_id = header.get("id")
        op = header.get("op")
        if op in ("encode", "decode") and request_id == self.target:
            return None  # shed silently; NACKed after target + 1
        task = super()._dispatch(header, payload, reply, conn)
        if op in ("encode", "decode") and request_id == self.target + 1:

            async def nack_late():
                if task is not None:
                    await task  # target + 1 answered ok first
                await reply(jsonable(error_header(
                    self.target, OverloadedError("late shed (test)"),
                    retriable=True,
                )))

            return asyncio.get_running_loop().create_task(nack_late())
        return task


class CountingServer(LinkServer):
    """Counts engine enqueues, for exactly-once assertions."""

    def __init__(self):
        super().__init__()
        self.enqueue_calls = 0
        real_enqueue = self.engine.enqueue

        def enqueue(*args, **kwargs):
            self.enqueue_calls += 1
            return real_enqueue(*args, **kwargs)

        self.engine.enqueue = enqueue


class ResetSheddingServer(LinkServer):
    """Sheds the first ``reset`` with an overload (fleet park-limit shape)."""

    def __init__(self):
        super().__init__()
        self.reset_attempts = 0

    async def _run_control(self, op, header):
        if op == "reset":
            self.reset_attempts += 1
            if self.reset_attempts == 1:
                raise OverloadedError("reset shed (test)")
        return await super()._run_control(op, header)


def fast_retries(**kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    return kwargs


class TestReconnectReplay:
    def test_severed_socket_replay_is_bit_identical(self, tmp_path):
        words = words_stream()
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with LinkClient.connect(bg.address) as plain:
                plain.create_link("base", CONFIG)
                expected = plain.stream("base", words, op="encode",
                                        chunk_words=100)

            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                first = client.stream("lnk", words[:1000], op="encode",
                                      chunk_words=100)
                # Sever the transport under the client's feet.
                client._sock.shutdown(socket.SHUT_RDWR)
                second = client.stream("lnk", words[1000:], op="encode",
                                       chunk_words=100)
        got = np.concatenate([first, second])
        assert np.array_equal(expected, got), "replay forked the stream"

    def test_retries_off_fails_fast(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with LinkClient.connect(bg.address) as client:
                client.create_link("lnk", CONFIG)
                client._sock.shutdown(socket.SHUT_RDWR)
                with pytest.raises((ConnectionError, EOFError, OSError)):
                    client.stream("lnk", words_stream(n=100), op="encode")

    def test_dead_server_exhausts_budget(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            client = LinkClient.connect(
                bg.address, **fast_retries(retries=2)
            )
            client.create_link("lnk", CONFIG)
        # Server gone for good: recovery must give up after the budget.
        with pytest.raises(ConnectionError):
            client.stream("lnk", words_stream(n=100), op="encode")
        client.close()


class TestRetriableNack:
    def test_nack_is_reissued_and_stream_stays_exact(self, tmp_path):
        words = words_stream(n=1000)
        with BackgroundServer(path=str(tmp_path / "base.sock")) as bg:
            with LinkClient.connect(bg.address) as plain:
                plain.create_link("lnk", CONFIG)
                expected = plain.stream("lnk", words, op="encode",
                                        chunk_words=100)

        shedding = SheddingServer()
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=lambda: shedding,
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                got = client.stream("lnk", words, op="encode",
                                    chunk_words=100)
        assert shedding.shed_ids, "server never shed -- test is vacuous"
        assert np.array_equal(expected, got)

    def test_nack_without_retries_raises(self, tmp_path):
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=SheddingServer,
        ) as bg:
            with LinkClient.connect(bg.address) as client:
                client.create_link("lnk", CONFIG)
                with pytest.raises(OverloadedError):
                    client.stream("lnk", words_stream(n=100), op="encode")

    def test_permanent_shedding_exhausts_nack_budget(self, tmp_path):
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=lambda: SheddingServer(always=True),
        ) as bg:
            with LinkClient.connect(
                bg.address, **fast_retries(retries=2)
            ) as client:
                client.create_link("lnk", CONFIG)
                with pytest.raises(OverloadedError):
                    client.stream("lnk", words_stream(n=100), op="encode")


class TestOrderFence:
    def test_mid_stream_shed_is_fenced_and_stream_stays_exact(
        self, tmp_path
    ):
        """A shed in the middle of a pipelined window must not reorder.

        The client has ~10 chunks in flight when the 4th enqueue is
        shed; the fence must shed every later chunk too, and the
        re-issues (arriving in id order) must rebuild the exact stream.
        """
        words = words_stream(n=1000)
        with BackgroundServer(path=str(tmp_path / "base.sock")) as bg:
            with LinkClient.connect(bg.address) as plain:
                plain.create_link("lnk", CONFIG)
                expected = plain.stream("lnk", words, op="encode",
                                        chunk_words=100)

        shedding = MidStreamShedServer(shed_at=4)
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=lambda: shedding,
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                got = client.stream("lnk", words, op="encode",
                                    chunk_words=100)
        # 3 applied + 1 shed + 7 fenced-then-re-issued (the retriable
        # NACK must not be answered from the session cache).
        assert shedding.enqueue_calls == 11
        assert np.array_equal(expected, got)

    def test_broken_fence_surfaces_instead_of_reissuing(self, tmp_path):
        """A NACK older than an ACKed request of its link must raise.

        Re-issuing it would append the chunk behind later ones; the
        client verifies the fence promise and refuses.
        """
        with BackgroundServer(
            path=str(tmp_path / "viol.sock"),
            server_factory=lambda: FenceViolatingServer(target=5),
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                with pytest.raises(OverloadedError):
                    client.stream("lnk", words_stream(n=1000), op="encode",
                                  chunk_words=100)

    def test_shed_reset_is_retriable_and_reissued(self, tmp_path):
        """An overload-shed ``reset`` is NACKed retriably and re-issued."""
        words = words_stream(n=300)
        shedding = ResetSheddingServer()
        with BackgroundServer(
            path=str(tmp_path / "reset.sock"),
            server_factory=lambda: shedding,
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                first = client.stream("lnk", words, op="encode",
                                      chunk_words=50)
                client.reset("lnk")
                second = client.stream("lnk", words, op="encode",
                                       chunk_words=50)
        assert shedding.reset_attempts == 2, "reset was not re-issued"
        # The re-issued reset really restarted the codec history.
        assert np.array_equal(first, second)


class TestReplayWhileInFlight:
    def test_duplicate_id_while_executing_runs_once(self, tmp_path):
        """A replayed id racing its original execution must not re-run.

        A reconnect can replay an id while the old connection's dispatch
        task is still executing (the client's read timed out on a slow
        server). The duplicate must be answered from that one execution
        — running it again would advance the codec history twice.
        """
        words = words_stream(n=200000)
        counting = CountingServer()
        with BackgroundServer(
            path=str(tmp_path / "dup.sock"),
            server_factory=lambda: counting,
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                payload = words_to_payload(words)
                rid = client._send({"op": "encode", "link": "lnk"}, payload)
                # Raw duplicate frame under the same id, racing the
                # original execution (big payload keeps it in flight).
                write_frame_blocking(
                    client._file,
                    {"op": "encode", "link": "lnk", "id": rid},
                    payload,
                )
                _, first = client._receive(rid)
                second_header, second = read_frame_blocking(client._file)
        assert counting.enqueue_calls == 1, "duplicate id executed twice"
        assert second_header.get("id") == rid and second_header.get("ok")
        assert second == first
        expected = LinkSession(CONFIG).encode(words)
        assert np.array_equal(payload_to_words(first), expected)


class TestValidation:
    def test_negative_retries_rejected(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with pytest.raises(ValueError):
                LinkClient.connect(bg.address, retries=-1)

    def test_retries_require_an_address(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError):
                LinkClient(a, retries=2)
        finally:
            a.close()
            b.close()
