"""Client-side retry: reconnect replay and retriable-NACK re-issue.

Retries are strictly opt-in (``retries=0`` keeps the old fail-fast
behaviour). With ``retries=N`` the client reconnects with bounded
exponential backoff, replays un-ACKed requests through the server's
session cache (exactly-once), and re-issues explicit retriable NACKs.
"""

import asyncio
import socket

import numpy as np
import pytest

from repro.serve import LinkClient, OverloadedError
from repro.serve.protocol import error_header
from repro.serve.server import BackgroundServer, LinkServer, jsonable
from repro.serve.session import LinkConfig

CONFIG = LinkConfig.from_dict({
    "width": 8,
    "geometry": {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6},
    "codecs": [{"kind": "correlator", "n_channels": 4, "negated": True}],
})


def words_stream(n=2000, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**8, size=n, dtype=np.int64)


class SheddingServer(LinkServer):
    """NACKs the first attempt of every data request, retriably."""

    def __init__(self, always=False):
        super().__init__()
        self.always = always
        self.shed_ids = set()

    def _dispatch(self, header, payload, reply, conn=None):
        request_id = header.get("id")
        if (header.get("op") in ("encode", "decode")
                and (self.always or request_id not in self.shed_ids)):
            self.shed_ids.add(request_id)
            loop = asyncio.get_running_loop()
            return loop.create_task(reply(jsonable(error_header(
                request_id, OverloadedError("shed for test"),
                retriable=True,
            ))))
        return super()._dispatch(header, payload, reply, conn)


def fast_retries(**kwargs):
    kwargs.setdefault("retries", 3)
    kwargs.setdefault("backoff_base_s", 0.01)
    kwargs.setdefault("backoff_max_s", 0.05)
    return kwargs


class TestReconnectReplay:
    def test_severed_socket_replay_is_bit_identical(self, tmp_path):
        words = words_stream()
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with LinkClient.connect(bg.address) as plain:
                plain.create_link("base", CONFIG)
                expected = plain.stream("base", words, op="encode",
                                        chunk_words=100)

            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                first = client.stream("lnk", words[:1000], op="encode",
                                      chunk_words=100)
                # Sever the transport under the client's feet.
                client._sock.shutdown(socket.SHUT_RDWR)
                second = client.stream("lnk", words[1000:], op="encode",
                                       chunk_words=100)
        got = np.concatenate([first, second])
        assert np.array_equal(expected, got), "replay forked the stream"

    def test_retries_off_fails_fast(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with LinkClient.connect(bg.address) as client:
                client.create_link("lnk", CONFIG)
                client._sock.shutdown(socket.SHUT_RDWR)
                with pytest.raises((ConnectionError, EOFError, OSError)):
                    client.stream("lnk", words_stream(n=100), op="encode")

    def test_dead_server_exhausts_budget(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            client = LinkClient.connect(
                bg.address, **fast_retries(retries=2)
            )
            client.create_link("lnk", CONFIG)
        # Server gone for good: recovery must give up after the budget.
        with pytest.raises(ConnectionError):
            client.stream("lnk", words_stream(n=100), op="encode")
        client.close()


class TestRetriableNack:
    def test_nack_is_reissued_and_stream_stays_exact(self, tmp_path):
        words = words_stream(n=1000)
        with BackgroundServer(path=str(tmp_path / "base.sock")) as bg:
            with LinkClient.connect(bg.address) as plain:
                plain.create_link("lnk", CONFIG)
                expected = plain.stream("lnk", words, op="encode",
                                        chunk_words=100)

        shedding = SheddingServer()
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=lambda: shedding,
        ) as bg:
            with LinkClient.connect(bg.address, **fast_retries()) as client:
                client.create_link("lnk", CONFIG)
                got = client.stream("lnk", words, op="encode",
                                    chunk_words=100)
        assert shedding.shed_ids, "server never shed -- test is vacuous"
        assert np.array_equal(expected, got)

    def test_nack_without_retries_raises(self, tmp_path):
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=SheddingServer,
        ) as bg:
            with LinkClient.connect(bg.address) as client:
                client.create_link("lnk", CONFIG)
                with pytest.raises(OverloadedError):
                    client.stream("lnk", words_stream(n=100), op="encode")

    def test_permanent_shedding_exhausts_nack_budget(self, tmp_path):
        with BackgroundServer(
            path=str(tmp_path / "shed.sock"),
            server_factory=lambda: SheddingServer(always=True),
        ) as bg:
            with LinkClient.connect(
                bg.address, **fast_retries(retries=2)
            ) as client:
                client.create_link("lnk", CONFIG)
                with pytest.raises(OverloadedError):
                    client.stream("lnk", words_stream(n=100), op="encode")


class TestValidation:
    def test_negative_retries_rejected(self, tmp_path):
        with BackgroundServer(path=str(tmp_path / "rt.sock")) as bg:
            with pytest.raises(ValueError):
                LinkClient.connect(bg.address, retries=-1)

    def test_retries_require_an_address(self):
        a, b = socket.socketpair()
        try:
            with pytest.raises(ValueError):
                LinkClient(a, retries=2)
        finally:
            a.close()
            b.close()
