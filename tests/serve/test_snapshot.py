"""LinkSession snapshot/restore: the exactness contract behind failover.

A snapshot taken at any cut of the stream, pushed through JSON (the
checkpoint wire format), restored into a *fresh* session and continued,
must produce the same coded words and the same integer-exact energy
report as the uninterrupted session. A bad snapshot must change nothing.
"""

import json

import numpy as np
import pytest

from repro.serve.session import LinkConfig, LinkSession

CONFIG_DICT = {
    "width": 8,
    "geometry": {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6},
    "codecs": [
        {"kind": "correlator", "n_channels": 4, "negated": True},
        {"kind": "gray", "negated": True},
        {"kind": "businvert"},
    ],
}


def make_session():
    return LinkSession(LinkConfig.from_dict(CONFIG_DICT))


def words_stream(n=600, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**8, size=n, dtype=np.int64)


class TestSnapshotRestoreExactness:
    @pytest.mark.parametrize("cut", [0, 1, 7, 300, 600])
    def test_resume_is_bit_identical_at_any_cut(self, cut):
        words = words_stream()
        reference = make_session()
        expected = reference.encode(words)

        live = make_session()
        head = live.encode(words[:cut], seq=cut)
        snapshot = live.snapshot()

        resumed = make_session()
        resumed.restore(snapshot)
        assert resumed.applied_seq == cut
        tail = resumed.encode(words[cut:])
        assert np.array_equal(expected, np.concatenate([head, tail]))
        assert resumed.energy_report() == reference.energy_report()

    def test_snapshot_survives_json(self):
        words = words_stream(n=200)
        live = make_session()
        live.encode(words[:100], seq=100)
        snapshot = json.loads(json.dumps(live.snapshot()))

        resumed = make_session()
        resumed.restore(snapshot)
        assert np.array_equal(live.encode(words[100:]),
                              resumed.encode(words[100:]))
        assert live.energy_report() == resumed.energy_report()

    def test_snapshot_is_a_copy_not_a_view(self):
        live = make_session()
        live.encode(words_stream(n=50), seq=50)
        snapshot = live.snapshot()
        live.encode(words_stream(n=50, seed=12), seq=100)
        # The earlier snapshot still restores to the earlier cut.
        resumed = make_session()
        resumed.restore(snapshot)
        assert resumed.applied_seq == 50


class TestRestoreValidation:
    def bad_restore(self, session, snapshot):
        before = session.snapshot()
        with pytest.raises(ValueError):
            session.restore(snapshot)
        assert session.snapshot() == before

    def test_non_mapping_rejected(self):
        self.bad_restore(make_session(), [1, 2, 3])

    def test_unknown_field_rejected(self):
        session = make_session()
        snapshot = session.snapshot()
        snapshot["extra"] = 1
        self.bad_restore(session, snapshot)

    def test_bad_applied_seq_rejected(self):
        session = make_session()
        for bad in (-1, "7", True, None):
            snapshot = session.snapshot()
            snapshot["applied_seq"] = bad
            self.bad_restore(session, snapshot)

    def test_malformed_account_leaves_rejected_as_valueerror(self):
        """Missing/None account leaves must raise ValueError, atomically.

        ``np.asarray(None)`` raises TypeError; were that to escape, it
        would bypass the restore rollback and half-apply the snapshot.
        """
        session = make_session()
        session.encode(words_stream(n=80), seq=80)
        for mutate in (
            lambda acct: acct.__setitem__("gram", None),
            lambda acct: acct.pop("gram"),
            lambda acct: acct.__setitem__("ones", None),
            lambda acct: acct.pop("ones"),
            lambda acct: acct.__setitem__("last", object()),
        ):
            snapshot = session.snapshot()
            mutate(snapshot["coded_energy"])
            self.bad_restore(session, snapshot)

    def test_bad_account_leaf_rolls_back_chain_and_accounts(self):
        """A leaf failing *after* earlier parts loaded must roll back all.

        The uncoded account loads last: corrupting it makes the chain
        and coded account load an older cut first, and the rollback must
        bring every one of them back.
        """
        words = words_stream(n=200)
        session = make_session()
        head = session.encode(words[:100], seq=100)
        early = session.snapshot()
        mid = session.encode(words[100:150], seq=150)
        early["uncoded_energy"]["gram"] = None
        self.bad_restore(session, early)

        # The failed restore left the stream untouched: continuing is
        # identical to an uninterrupted run.
        tail = session.encode(words[150:])
        reference = make_session()
        assert np.array_equal(reference.encode(words),
                              np.concatenate([head, mid, tail]))
        assert session.energy_report() == reference.energy_report()

    def test_mismatched_chain_rejected_atomically(self):
        """A snapshot from a different codec chain must not half-apply."""
        other = LinkSession(LinkConfig.from_dict({
            "width": 8,
            "geometry": CONFIG_DICT["geometry"],
            "codecs": [{"kind": "businvert"}],
        }))
        other.encode(words_stream(n=40), seq=40)

        words = words_stream(n=200)
        session = make_session()
        head = session.encode(words[:100], seq=100)
        self.bad_restore(session, other.snapshot())

        # The failed restore left the stream untouched: continuing is
        # identical to an uninterrupted run.
        tail = session.encode(words[100:])
        reference = make_session()
        assert np.array_equal(reference.encode(words),
                              np.concatenate([head, tail]))
