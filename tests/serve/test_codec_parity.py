"""Batch-kernel parity: vectorized codecs == scalar reference loops.

The invert codecs encode through :func:`_invert_state_walk` batch
kernels but keep their per-word loops (``_encode_scalar``) as ground
truth, switchable with ``REPRO_SCALAR_CODECS=1``.  This suite proves
the two paths bit-identical on hypothesis-random words, widths and
chunk splits — including the carried decision state across chunks,
``reset()``, and the wide-bus fallbacks (SWAR popcount past the
bus-invert table, vectorized coupling costs past the coupling table).

The gray/correlator codecs have no scalar loop (their kernels are pure
array ops); their reference is the offline :mod:`repro.coding`
transform of the whole stream, checked here under random splits.
"""

import os
from unittest import mock

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.coding.correlator import correlate_words
from repro.coding.gray import gray_encode_words
from repro.serve.codecs import (
    _MAX_COST_TABLE_LINES,
    _MAX_POPCOUNT_TABLE_BITS,
    BusInvertCodec,
    CorrelatorCodec,
    CouplingInvertCodec,
    GrayCodec,
    _use_scalar_kernels,
)

SCALAR_ENV = {"REPRO_SCALAR_CODECS": "1"}


def scalar(cls, *args, **kwargs):
    """Construct a codec that serves through its reference loop."""
    with mock.patch.dict(os.environ, SCALAR_ENV):
        codec = cls(*args, **kwargs)
    assert codec._scalar
    return codec


def encode_chunked(codec, words, cuts):
    """Encode one stream through a codec at the given chunk cut points."""
    edges = [0] + sorted(set(cuts)) + [len(words)]
    pieces = [
        codec.encode(words[a:b]) for a, b in zip(edges[:-1], edges[1:])
    ]
    pieces = [p for p in pieces if len(p)]
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)


def word_stream(width, min_size=0, max_size=120):
    return st.lists(
        st.integers(0, (1 << width) - 1),
        min_size=min_size, max_size=max_size,
    ).map(lambda ws: np.asarray(ws, dtype=np.int64))


def cut_points(max_cuts=5):
    return st.lists(st.integers(0, 120), max_size=max_cuts)


class TestEnvKnob:
    def test_default_is_batch(self):
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_CODECS": ""}):
            assert not _use_scalar_kernels()
            assert not BusInvertCodec(8)._scalar
        with mock.patch.dict(os.environ, {"REPRO_SCALAR_CODECS": "0"}):
            assert not _use_scalar_kernels()

    def test_env_swaps_in_the_reference_loops(self):
        with mock.patch.dict(os.environ, SCALAR_ENV):
            assert _use_scalar_kernels()
            assert BusInvertCodec(8)._scalar
            assert CouplingInvertCodec(8)._scalar


class TestBusInvertParity:
    @settings(max_examples=120, deadline=None)
    @given(
        width=st.integers(1, 16),
        words=st.data(),
        cuts=cut_points(),
    )
    def test_batch_matches_scalar_under_any_split(self, width, words, cuts):
        stream = words.draw(word_stream(width))
        batch = BusInvertCodec(width)
        reference = scalar(BusInvertCodec, width)
        got = encode_chunked(batch, stream, cuts)
        want = encode_chunked(reference, stream, cuts)
        np.testing.assert_array_equal(got, want)
        assert batch._enc_prev == reference._enc_prev
        assert batch._enc_flag == reference._enc_flag

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(1, 12), words=st.data())
    def test_state_carries_then_reset_forgets(self, width, words):
        first = words.draw(word_stream(width, min_size=1))
        second = words.draw(word_stream(width, min_size=1))
        batch = BusInvertCodec(width)
        reference = scalar(BusInvertCodec, width)
        batch.encode(first)
        reference.encode(first)
        np.testing.assert_array_equal(
            batch.encode(second), reference.encode(second)
        )
        batch.reset()
        fresh = BusInvertCodec(width)
        np.testing.assert_array_equal(
            batch.encode(second), fresh.encode(second)
        )

    def test_wide_bus_swar_fallback_matches_scalar(self):
        width = _MAX_POPCOUNT_TABLE_BITS + 4
        stream = np.random.default_rng(3).integers(
            0, 1 << width, 400, dtype=np.int64
        )
        batch = BusInvertCodec(width)
        reference = scalar(BusInvertCodec, width)
        assert batch._popcount is None
        np.testing.assert_array_equal(
            encode_chunked(batch, stream, [13, 250]),
            encode_chunked(reference, stream, [13, 250]),
        )

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(1, 12), words=st.data(), cuts=cut_points())
    def test_round_trip_and_flag_in_band(self, width, words, cuts):
        stream = words.draw(word_stream(width))
        codec = BusInvertCodec(width)
        coded = encode_chunked(codec, stream, cuts)
        np.testing.assert_array_equal(codec.decode(coded), stream)
        assert len(coded) == 0 or int(coded.max()) < 1 << (width + 1)


class TestCouplingInvertParity:
    @settings(max_examples=120, deadline=None)
    @given(
        width=st.integers(1, _MAX_COST_TABLE_LINES - 1),
        words=st.data(),
        cuts=cut_points(),
    )
    def test_batch_matches_scalar_under_any_split(self, width, words, cuts):
        stream = words.draw(word_stream(width))
        batch = CouplingInvertCodec(width)
        reference = scalar(CouplingInvertCodec, width)
        got = encode_chunked(batch, stream, cuts)
        want = encode_chunked(reference, stream, cuts)
        np.testing.assert_array_equal(got, want)
        assert batch._enc_prev == reference._enc_prev

    @settings(max_examples=20, deadline=None)
    @given(words=st.data(), cuts=cut_points())
    def test_wide_bus_cost_kernel_matches_scalar(self, words, cuts):
        width = _MAX_COST_TABLE_LINES + 2
        stream = words.draw(word_stream(width, max_size=80))
        batch = CouplingInvertCodec(width)
        reference = scalar(CouplingInvertCodec, width)
        assert batch._table is None
        np.testing.assert_array_equal(
            encode_chunked(batch, stream, cuts),
            encode_chunked(reference, stream, cuts),
        )

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(1, 8), words=st.data())
    def test_state_carries_then_reset_forgets(self, width, words):
        first = words.draw(word_stream(width, min_size=1))
        second = words.draw(word_stream(width, min_size=1))
        batch = CouplingInvertCodec(width)
        reference = scalar(CouplingInvertCodec, width)
        batch.encode(first)
        reference.encode(first)
        np.testing.assert_array_equal(
            batch.encode(second), reference.encode(second)
        )
        batch.reset()
        fresh = CouplingInvertCodec(width)
        np.testing.assert_array_equal(
            batch.encode(second), fresh.encode(second)
        )

    @settings(max_examples=30, deadline=None)
    @given(width=st.integers(1, 8), words=st.data(), cuts=cut_points())
    def test_round_trip(self, width, words, cuts):
        stream = words.draw(word_stream(width))
        codec = CouplingInvertCodec(width)
        coded = encode_chunked(codec, stream, cuts)
        np.testing.assert_array_equal(codec.decode(coded), stream)


class TestStatelessKernelsAgainstOffline:
    """Gray/correlator kernels vs the offline whole-stream transforms."""

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 20),
        negated=st.booleans(),
        words=st.data(),
        cuts=cut_points(),
    )
    def test_gray_chunked_matches_offline(self, width, negated, words, cuts):
        stream = words.draw(word_stream(width))
        codec = GrayCodec(width, negated=negated)
        np.testing.assert_array_equal(
            encode_chunked(codec, stream, cuts),
            gray_encode_words(stream, width, negated=negated),
        )
        coded = codec.encode(stream)
        np.testing.assert_array_equal(codec.decode(coded), stream)

    @settings(max_examples=60, deadline=None)
    @given(
        width=st.integers(1, 16),
        n_channels=st.integers(1, 5),
        negated=st.booleans(),
        words=st.data(),
        cuts=cut_points(),
    )
    def test_correlator_chunked_matches_offline(
        self, width, n_channels, negated, words, cuts
    ):
        stream = words.draw(word_stream(width))
        codec = CorrelatorCodec(width, n_channels=n_channels, negated=negated)
        np.testing.assert_array_equal(
            encode_chunked(codec, stream, cuts),
            correlate_words(
                stream, width, n_channels=n_channels, negated=negated
            ),
        )
        codec.reset()
        coded = encode_chunked(codec, stream, cuts)
        decoded = encode_chunked_decode(codec, coded, cuts)
        np.testing.assert_array_equal(decoded, stream)


def encode_chunked_decode(codec, words, cuts):
    """Decode one stream chunk by chunk at the given cut points."""
    edges = [0] + sorted(set(cuts)) + [len(words)]
    pieces = [
        codec.decode(words[a:b]) for a, b in zip(edges[:-1], edges[1:])
    ]
    pieces = [p for p in pieces if len(p)]
    if not pieces:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(pieces)
