"""Concurrency stress: 8 clients under fault injection, exact accounting.

This is the regression test behind the REP2xx analysis pass: with
``REPRO_FAULTS=slow_solve(0.005)`` every batch solve sleeps, widening the
race windows the pass reasons about (metrics counters, energy accounts,
the shared codebook cache, the process-global fault plan). The assertions
are exact — word counts add up and every link's reported energy is
bit-identical to the offline model — so a silent race shows up as a hard
failure, not noise.
"""

import threading

import numpy as np
import pytest

from repro.core.fastpower import CompiledPowerModel
from repro.datagen.util import words_to_bits
from repro.experiments.common import cap_model_for
from repro.serve import BackgroundServer, LinkClient, build_chain
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

GEOMETRY_SPEC = {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6}
GEOMETRY = TSVArrayGeometry(**GEOMETRY_SPEC)

N_CLIENTS = 8
N_WORDS = 4096
WIDTH = 8
CODECS = [{"kind": "gray"}, {"kind": "businvert"}]


def _drive_link(address, index, errors):
    """One client: own connection, own link, encode + decode roundtrip."""
    try:
        words = np.random.default_rng(2018 + index).integers(
            0, 1 << WIDTH, N_WORDS
        )
        with LinkClient.connect(address) as client:
            client.create_link(
                f"stress-{index}",
                {
                    "width": WIDTH,
                    "geometry": dict(GEOMETRY_SPEC),
                    "codecs": [dict(spec) for spec in CODECS],
                },
            )
            coded = client.stream(
                f"stress-{index}", words, chunk_words=512
            )
            back = client.stream(
                f"stress-{index}", coded, op="decode", chunk_words=512
            )
        np.testing.assert_array_equal(back, words)
    except Exception as exc:  # noqa: BLE001 - surfaced in the main thread
        errors.append((index, exc))


def test_eight_concurrent_clients_under_slow_solve(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "slow_solve(0.005)")
    errors = []
    with BackgroundServer() as server:
        threads = [
            threading.Thread(
                target=_drive_link,
                args=(server.address, index, errors),
                name=f"stress-client-{index}",
            )
            for index in range(N_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120.0)
        assert not any(t.is_alive() for t in threads), "client hung"
        assert errors == [], errors

        with LinkClient.connect(server.address) as client:
            for index in range(N_CLIENTS):
                stats = client.stats(f"stress-{index}")
                metrics = stats["metrics"]
                # Exact word accounting despite interleaved batches.
                assert metrics["words_encoded"] == N_WORDS
                assert metrics["words_decoded"] == N_WORDS
                assert metrics["errors"] == 0

                # Energy must match the offline model on the same stream.
                words = np.random.default_rng(2018 + index).integers(
                    0, 1 << WIDTH, N_WORDS
                )
                chain = build_chain(CODECS, WIDTH, geometry=GEOMETRY)
                coded = chain.encode(words)
                bits = np.zeros(
                    (N_WORDS, GEOMETRY.n_tsvs), dtype=np.uint8
                )
                bits[:, : chain.width_out] = words_to_bits(
                    coded, chain.width_out
                )
                offline = CompiledPowerModel(
                    BitStatistics.from_stream(bits), cap_model_for(GEOMETRY)
                ).power()
                reported = stats["energy"]["coded"]
                assert reported["n_samples"] == N_WORDS
                assert reported["normalized_power_farad"] == pytest.approx(
                    offline, rel=1e-12
                )
