"""End-to-end server tests over real sockets — the PR's acceptance bar.

The headline test streams >= 10^5 words through a live server over
*every* codec chain, checks bit-exact round trips, and checks that the
server-reported per-link energy matches an offline
``CompiledPowerModel`` computation on the same stream to within 1e-12
relative (the implementation is in fact bit-identical).
"""

import numpy as np
import pytest

from repro.core.fastpower import CompiledPowerModel
from repro.datagen.util import words_to_bits
from repro.experiments.common import cap_model_for
from repro.serve import (
    BackgroundServer,
    BatchPolicy,
    LinkClient,
    OverloadedError,
    ServeError,
    UnknownLinkError,
    build_chain,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

GEOMETRY_SPEC = {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6}
GEOMETRY = TSVArrayGeometry(**GEOMETRY_SPEC)

#: Every chain shape the serving layer supports, all driven in one test.
CHAINS = {
    "raw": (8, []),
    "gray": (8, [{"kind": "gray"}]),
    "gray-xnor": (8, [{"kind": "gray", "negated": True}]),
    "correlator": (8, [{"kind": "correlator", "n_channels": 4,
                        "negated": True}]),
    "businvert": (8, [{"kind": "businvert"}]),
    "couplinginvert": (8, [{"kind": "couplinginvert"}]),
    "cac": (5, [{"kind": "cac"}]),
    "composite": (8, [{"kind": "correlator", "n_channels": 2},
                      {"kind": "gray", "negated": True},
                      {"kind": "businvert"}]),
}


@pytest.fixture(scope="module")
def server():
    with BackgroundServer() as background:
        yield background


@pytest.fixture()
def client(server):
    with LinkClient.connect(server.address) as connection:
        yield connection


def link_config(width, codecs):
    return {
        "width": width,
        "geometry": dict(GEOMETRY_SPEC),
        "codecs": codecs,
    }


class TestAcceptance:
    N_WORDS = 100_000

    @pytest.mark.parametrize("name", sorted(CHAINS))
    def test_stream_roundtrip_and_energy_match(self, client, name):
        width, codecs = CHAINS[name]
        link = f"accept-{name}"
        client.create_link(link, link_config(width, codecs))
        words = np.random.default_rng(2018).integers(
            0, 1 << width, self.N_WORDS
        )

        coded = client.stream(link, words, chunk_words=4096)
        back = client.stream(link, coded, op="decode", chunk_words=2048)
        np.testing.assert_array_equal(back, words)

        # Offline recomputation of the same physical stream.
        chain = build_chain(codecs, width, geometry=GEOMETRY)
        offline_coded = chain.encode(words)
        np.testing.assert_array_equal(coded, offline_coded)
        bits = np.zeros((self.N_WORDS, GEOMETRY.n_tsvs), dtype=np.uint8)
        bits[:, : chain.width_out] = words_to_bits(
            offline_coded, chain.width_out
        )
        offline_power = CompiledPowerModel(
            BitStatistics.from_stream(bits), cap_model_for(GEOMETRY)
        ).power()

        reported = client.stats(link)["energy"]["coded"]
        assert reported["n_samples"] == self.N_WORDS
        assert reported["normalized_power_farad"] == pytest.approx(
            offline_power, rel=1e-12
        )


class TestControlPlane:
    def test_ping_lists_links(self, client):
        client.create_link("ping-me", link_config(8, []))
        assert "ping-me" in client.ping()

    def test_create_returns_info(self, client):
        info = client.create_link(
            "info", link_config(8, [{"kind": "businvert"}])
        )
        assert info["width_in"] == 8
        assert info["width_out"] == 9
        assert info["n_lines"] == 9

    def test_duplicate_link_is_a_server_error(self, client):
        client.create_link("dup", link_config(8, []))
        with pytest.raises(ServeError, match="already exists"):
            client.create_link("dup", link_config(8, []))

    def test_bad_config_is_a_server_error(self, client):
        with pytest.raises(ServeError, match="width"):
            client.create_link("bad", {"width": 99, "geometry": GEOMETRY_SPEC})

    def test_unknown_link_maps_to_local_exception(self, client):
        with pytest.raises(UnknownLinkError):
            client.encode("never-created", np.arange(4))

    def test_unknown_op_is_reported(self, client):
        from repro.serve.protocol import (
            read_frame_blocking, write_frame_blocking,
        )

        write_frame_blocking(client._file, {"op": "florble", "id": 999})
        response, _ = read_frame_blocking(client._file)
        assert response["ok"] is False
        assert "unknown op" in response["message"]

    def test_unexpected_control_error_still_replies(self, monkeypatch):
        # Control ops can fail with exceptions outside the expected set
        # (e.g. a MemoryError/TypeError out of session construction); the
        # frame must still be answered or a blocking client hangs.
        from repro.serve.protocol import (
            read_frame_blocking, write_frame_blocking,
        )
        from repro.serve.server import LinkServer

        original = LinkServer._run_control

        async def exploding(self, op, header):
            if op == "explode":
                raise TypeError("boom")
            return await original(self, op, header)

        monkeypatch.setattr(LinkServer, "_run_control", exploding)
        with BackgroundServer() as background:
            with LinkClient.connect(background.address) as connection:
                write_frame_blocking(
                    connection._file, {"op": "explode", "id": 7}
                )
                response, _ = read_frame_blocking(connection._file)
        assert response["ok"] is False
        assert response["error"] == "TypeError"
        assert "boom" in response["message"]

    def test_drop_link(self, client):
        client.create_link("ephemeral", link_config(8, []))
        client.drop_link("ephemeral")
        assert "ephemeral" not in client.ping()

    def test_reset_restarts_the_stream(self, client):
        client.create_link(
            "resettable", link_config(8, [{"kind": "businvert"}])
        )
        words = np.random.default_rng(5).integers(0, 256, 1000)
        first = client.encode("resettable", words)
        client.reset("resettable")
        np.testing.assert_array_equal(
            client.encode("resettable", words), first
        )

    def test_stats_shapes(self, client):
        client.create_link("statsy", link_config(8, []))
        client.encode("statsy", np.arange(100))
        stats = client.stats("statsy")
        assert stats["metrics"]["words_encoded"] >= 100
        assert set(stats["energy"]) == {"coded", "uncoded", "savings"}
        latency = stats["metrics"]["latency"]
        assert {"p50_s", "p95_s", "p99_s"} <= set(latency)
        everything = client.stats()
        assert "statsy" in everything["links"]

    def test_codec_error_reaches_the_client(self, client):
        client.create_link("narrow", link_config(4, []))
        with pytest.raises(ServeError, match="unsigned range"):
            client.encode("narrow", np.array([999]))


class TestPipelining:
    def test_many_clients_one_server(self, server):
        with LinkClient.connect(server.address) as a, \
                LinkClient.connect(server.address) as b:
            a.create_link("shared-a", link_config(8, [{"kind": "gray"}]))
            b.create_link("shared-b", link_config(8, [{"kind": "gray"}]))
            words = np.random.default_rng(6).integers(0, 256, 5000)
            coded_a = a.stream("shared-a", words, chunk_words=256)
            coded_b = b.stream("shared-b", words, chunk_words=512)
            np.testing.assert_array_equal(coded_a, coded_b)

    def test_overload_maps_to_local_exception(self):
        policy = BatchPolicy(window_s=0.5, queue_limit=1,
                             max_batch_requests=1)
        with BackgroundServer(policy=policy) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("tiny", link_config(8, []))
                from repro.serve.protocol import words_to_payload

                words = np.arange(256)
                with pytest.raises(OverloadedError):
                    # Fire-and-await one by one is too slow to overload;
                    # push raw frames to fill the queue synchronously.
                    ids = [
                        client._send(
                            {"op": "encode", "link": "tiny"},
                            words_to_payload(words),
                        )
                        for _ in range(64)
                    ]
                    for request_id in ids:
                        client._receive(request_id)


class TestUnixSocket:
    def test_full_stack_over_unix_socket(self, tmp_path):
        path = str(tmp_path / "serve.sock")
        with BackgroundServer(path=path) as background:
            assert background.address == path
            with LinkClient.connect(path) as client:
                client.create_link(
                    "unix", link_config(8, [{"kind": "gray"}])
                )
                words = np.random.default_rng(7).integers(0, 256, 3000)
                back = client.stream(
                    "unix", client.stream("unix", words), op="decode"
                )
                np.testing.assert_array_equal(back, words)


class TestStopHangDetection:
    """A hung teardown must never masquerade as a clean stop."""

    def test_stuck_teardown_raises_with_stack(self):
        import time

        class StuckServer:
            address = ("127.0.0.1", 1)

            async def start(self, host=None, port=None, path=None):
                pass

            async def close(self):
                time.sleep(0.8)  # blocks the loop thread through the join

        background = BackgroundServer(
            server_factory=StuckServer, stop_timeout_s=0.1
        )
        background.start()
        with pytest.raises(RuntimeError, match="still alive") as excinfo:
            background.stop()
        # The stuck thread's stack is in the message, pointing at the
        # blocking close().
        assert "stuck at" in str(excinfo.value)
        assert "close" in str(excinfo.value)
        # The thread reference is kept: once the blocker drains, a
        # retried stop() joins cleanly instead of raising again.
        time.sleep(1.0)
        background.stop()

    def test_clean_stop_is_silent(self):
        background = BackgroundServer().start()
        background.stop()
        background.stop()  # idempotent
