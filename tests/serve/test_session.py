"""Link sessions: config validation, round trips, routing, accounting."""

import numpy as np
import pytest

from repro.core.assignment import SignedPermutation
from repro.core.fastpower import CompiledPowerModel
from repro.datagen.util import words_to_bits
from repro.experiments.common import cap_model_for
from repro.serve.session import LinkConfig, LinkConfigError, LinkSession
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

GEOMETRY_SPEC = {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6}
GEOMETRY = TSVArrayGeometry(**GEOMETRY_SPEC)


def make_config(**overrides):
    base = {"width": 8, "geometry": dict(GEOMETRY_SPEC)}
    base.update(overrides)
    return LinkConfig.from_dict(base)


class TestLinkConfig:
    def test_round_trips_through_dict(self):
        config = make_config(
            codecs=[{"kind": "gray", "negated": True}],
            assignment={
                "line_of_bit": list(range(9)),
                "inverted": [True] + [False] * 8,
            },
        )
        rebuilt = LinkConfig.from_dict(config.to_dict())
        assert rebuilt.width == 8
        assert rebuilt.geometry == config.geometry
        assert rebuilt.codecs == config.codecs
        assert rebuilt.assignment == config.assignment

    def test_codec_shorthand_strings(self):
        config = make_config(codecs=["correlator:n_channels=4", "gray"])
        assert config.codecs[0] == {"kind": "correlator", "n_channels": 4}

    @pytest.mark.parametrize("broken,match", [
        ({"width": None}, "width"),
        ({"width": 0}, "width"),
        ({"width": 80}, "width"),
        ({"geometry": None}, "geometry"),
        ({"geometry": {"rows": 3}}, "geometry"),
        ({"geometry": dict(GEOMETRY_SPEC, wat=1)}, "unknown geometry"),
        ({"codecs": 7}, "codecs"),
        ({"assignment": {"inverted": [True]}}, "line_of_bit"),
        ({"assignment": {"line_of_bit": [0, 0]}}, "assignment"),
        ({"unknown_field": 1}, "unknown link config"),
    ])
    def test_rejects_bad_configs(self, broken, match):
        spec = {"width": 8, "geometry": dict(GEOMETRY_SPEC)}
        spec.update(broken)
        with pytest.raises(LinkConfigError, match=match):
            LinkConfig.from_dict(spec)

    def test_missing_width(self):
        with pytest.raises(LinkConfigError, match="width"):
            LinkConfig.from_dict({"geometry": dict(GEOMETRY_SPEC)})


class TestLinkSession:
    def test_round_trip_and_offline_energy_match(self):
        config = make_config(codecs=[{"kind": "businvert"}])
        session = LinkSession(config)
        words = np.random.default_rng(0).integers(0, 256, 4000)
        coded = session.encode(words)
        np.testing.assert_array_equal(session.decode(coded), words)

        # Offline recomputation on the physical stream must match the
        # session's account *bit for bit*.
        bits = np.zeros((len(words), 9), dtype=np.uint8)
        bits[:, :9] = words_to_bits(coded, 9)
        offline = CompiledPowerModel(
            BitStatistics.from_stream(bits), cap_model_for(GEOMETRY)
        ).power()
        assert session.coded_energy.normalized_power() == offline

    def test_assignment_routes_the_physical_bits(self):
        assignment = SignedPermutation.random(
            9, np.random.default_rng(1), with_inversions=True
        )
        config = make_config(assignment={
            "line_of_bit": list(assignment.line_of_bit),
            "inverted": list(assignment.inverted),
        })
        session = LinkSession(config)
        words = np.random.default_rng(2).integers(0, 256, 2000)
        session.encode(words)

        bits = np.zeros((len(words), 9), dtype=np.uint8)
        bits[:, :8] = words_to_bits(words, 8)
        routed = assignment.apply_to_bits(bits)
        offline = CompiledPowerModel(
            BitStatistics.from_stream(routed), cap_model_for(GEOMETRY)
        ).power()
        assert session.coded_energy.normalized_power() == offline
        # The uncoded reference is the *unrouted* payload stream.
        unrouted = CompiledPowerModel(
            BitStatistics.from_stream(bits), cap_model_for(GEOMETRY)
        ).power()
        assert session.uncoded_energy.normalized_power() == unrouted

    def test_energy_report_shape(self):
        session = LinkSession(make_config())
        report = session.energy_report()
        assert report["savings"] is None
        session.encode(np.arange(256))
        report = session.energy_report()
        assert report["savings"] is not None
        assert report["coded"]["n_samples"] == 256

    def test_reset_restarts_stream_and_accounts(self):
        session = LinkSession(
            make_config(codecs=[{"kind": "couplinginvert"}])
        )
        words = np.random.default_rng(3).integers(0, 256, 500)
        first = session.encode(words)
        first_power = session.coded_energy.normalized_power()
        session.reset()
        assert session.coded_energy.n_samples == 0
        np.testing.assert_array_equal(session.encode(words), first)
        assert session.coded_energy.normalized_power() == first_power

    def test_info(self):
        session = LinkSession(make_config(codecs=[{"kind": "businvert"}]))
        info = session.info()
        assert info["width_in"] == 8
        assert info["width_out"] == 9
        assert info["n_lines"] == 9

    def test_chain_wider_than_array_rejected(self):
        config = LinkConfig.from_dict({
            "width": 4,
            "geometry": {"rows": 2, "cols": 2,
                         "pitch": 4.0e-6, "radius": 1.0e-6},
            "codecs": [{"kind": "businvert"}],
        })
        with pytest.raises(LinkConfigError, match="only"):
            LinkSession(config)

    def test_assignment_length_must_cover_all_lines(self):
        config = make_config(assignment={"line_of_bit": [1, 0]})
        with pytest.raises(LinkConfigError, match="lines"):
            LinkSession(config)

    def test_bad_codec_spec_becomes_config_error(self):
        with pytest.raises(LinkConfigError, match="unknown codec kind"):
            LinkSession(make_config(codecs=[{"kind": "nope"}]))


class TestReportingConcurrency:
    def test_energy_report_races_reset(self):
        """energy_report must snapshot both accounts under the lock.

        Regression test for the REP2xx fix: reset() rebinds the two
        accounts, so an unlocked reporter could price a coded stream
        against the *new* empty uncoded account and report nonsense
        savings. A consistent snapshot reports either both-old or
        both-new, never a mix.
        """
        import threading

        session = LinkSession(
            LinkConfig.from_dict(
                {"width": 8, "geometry": dict(GEOMETRY_SPEC),
                 "codecs": [{"kind": "gray"}]}
            )
        )
        rng = np.random.default_rng(11)
        words = rng.integers(0, 256, 512)
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                session.encode(words)
                session.reset()

        def report():
            try:
                while not stop.is_set():
                    report_dict = session.energy_report()
                    coded = report_dict["coded"]["n_samples"]
                    uncoded = report_dict["uncoded"]["n_samples"]
                    # Both accounts always describe the same stream.
                    assert coded == uncoded
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        worker = threading.Thread(target=churn)
        reader = threading.Thread(target=report)
        worker.start()
        reader.start()
        worker.join(timeout=0.3)
        stop.set()
        worker.join(timeout=30.0)
        reader.join(timeout=30.0)
        assert errors == []

    def test_info_is_consistent_during_reset(self):
        import threading

        session = LinkSession(
            LinkConfig.from_dict(
                {"width": 8, "geometry": dict(GEOMETRY_SPEC)}
            )
        )
        stop = threading.Event()
        errors = []

        def churn():
            while not stop.is_set():
                session.reset()

        def read():
            try:
                while not stop.is_set():
                    info = session.info()
                    assert info["width_in"] == 8
                    assert info["n_lines"] == GEOMETRY.n_tsvs
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        worker = threading.Thread(target=churn)
        reader = threading.Thread(target=read)
        worker.start()
        reader.start()
        worker.join(timeout=0.3)
        stop.set()
        worker.join(timeout=30.0)
        reader.join(timeout=30.0)
        assert errors == []
