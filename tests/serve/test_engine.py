"""Micro-batching engine: coalescing, ordering, backpressure, deadlines.

No pytest-asyncio here: each test drives its own loop via ``asyncio.run``
so the suite runs on the plain pytest the repo already depends on.
"""

import asyncio

import numpy as np
import pytest

from repro.runtime.faults import inject_faults
from repro.serve.engine import (
    BatchPolicy,
    DeadlineExceededError,
    EngineClosedError,
    OverloadedError,
    ServeEngine,
    UnknownLinkError,
)
from repro.serve.session import LinkConfig

GEOMETRY_SPEC = {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6}


def make_config(**overrides):
    base = {"width": 8, "geometry": dict(GEOMETRY_SPEC)}
    base.update(overrides)
    return LinkConfig.from_dict(base)


def run(coroutine_fn, **engine_kwargs):
    async def main():
        async with ServeEngine(**engine_kwargs) as engine:
            return await coroutine_fn(engine)

    return asyncio.run(main())


class TestDataPath:
    def test_submit_round_trip(self):
        async def body(engine):
            engine.create_link("L", make_config(
                codecs=[{"kind": "gray", "negated": True}]
            ))
            words = np.random.default_rng(0).integers(0, 256, 1000)
            coded = await engine.submit("L", "encode", words)
            back = await engine.submit("L", "decode", coded)
            np.testing.assert_array_equal(back, words)

        run(body)

    def test_pipelined_requests_preserve_stream_order(self):
        # Stateful codec + many concurrent submits: the concatenated
        # result must equal the offline transform of the concatenated
        # stream, which only holds if enqueue order == stream order.
        async def body(engine):
            session = engine.create_link("L", make_config(
                codecs=[{"kind": "businvert"}]
            ))
            rng = np.random.default_rng(1)
            chunks = [rng.integers(0, 256, n) for n in
                      rng.integers(1, 200, 40)]
            futures = [
                engine.enqueue("L", "encode", chunk) for chunk in chunks
            ]
            results = await asyncio.gather(*futures)
            session.chain.reset()
            offline = session.chain.encode(np.concatenate(chunks))
            np.testing.assert_array_equal(
                np.concatenate(results), offline
            )

        run(body)

    def test_requests_coalesce_into_batches(self):
        async def body(engine):
            engine.create_link("L", make_config())
            words = np.arange(10)
            futures = [
                engine.enqueue("L", "encode", words) for _ in range(20)
            ]
            await asyncio.gather(*futures)
            snapshot = engine.stats("L")["metrics"]
            assert snapshot["batches"] < snapshot["requests"]
            assert snapshot["words_encoded"] == 200

        run(body, policy=BatchPolicy(window_s=0.05))

    def test_direction_flip_splits_the_batch(self):
        async def body(engine):
            engine.create_link("L", make_config(
                codecs=[{"kind": "gray"}]
            ))
            words = np.arange(16)
            coded = await engine.submit("L", "encode", words)
            futures = [
                engine.enqueue("L", "encode", words),
                engine.enqueue("L", "decode", coded),
                engine.enqueue("L", "encode", words),
            ]
            results = await asyncio.gather(*futures)
            np.testing.assert_array_equal(results[1], words)

        run(body, policy=BatchPolicy(window_s=0.05))

    def test_codec_error_fails_the_batch_not_the_engine(self):
        async def body(engine):
            engine.create_link("L", make_config(width=4))
            with pytest.raises(ValueError, match="unsigned range"):
                await engine.submit("L", "encode", np.array([999]))
            assert engine.stats("L")["metrics"]["errors"] == 1
            result = await engine.submit("L", "encode", np.array([3]))
            np.testing.assert_array_equal(result, [3])

        run(body)


class TestBackpressure:
    def test_queue_full_sheds_with_overloaded_error(self):
        async def body(engine):
            engine.create_link("L", make_config())
            words = np.arange(64)
            futures = []
            with pytest.raises(OverloadedError, match="queue full"):
                for _ in range(1000):
                    futures.append(engine.enqueue("L", "encode", words))
            await asyncio.gather(*futures)
            assert engine.stats("L")["metrics"]["shed"] >= 1

        # A long window holds the worker so the queue can actually fill.
        run(body, policy=BatchPolicy(
            window_s=0.2, queue_limit=4, max_batch_requests=2
        ))

    def test_expired_deadline_drops_before_encoding(self):
        async def body(engine):
            session = engine.create_link("L", make_config(
                codecs=[{"kind": "businvert"}]
            ))
            words = np.random.default_rng(2).integers(0, 256, 100)
            survivor = engine.enqueue("L", "encode", words[:50])
            doomed = engine.enqueue(
                "L", "encode", words[50:], deadline_s=0.0
            )
            with pytest.raises(DeadlineExceededError, match="queued"):
                await doomed
            first = await survivor
            assert engine.stats("L")["metrics"]["deadline_missed"] == 1
            # The dropped words never touched the codec: the stream is
            # exactly the served prefix.
            session.chain.reset()
            np.testing.assert_array_equal(
                first, session.chain.encode(words[:50])
            )

        run(body, policy=BatchPolicy(window_s=0.0))


class TestLifecycle:
    def test_unknown_link(self):
        async def body(engine):
            with pytest.raises(UnknownLinkError):
                await engine.submit("nope", "encode", np.arange(4))

        run(body)

    def test_bad_op(self):
        async def body(engine):
            engine.create_link("L", make_config())
            with pytest.raises(ValueError, match="op must be"):
                await engine.submit("L", "transcode", np.arange(4))

        run(body)

    def test_duplicate_link(self):
        async def body(engine):
            engine.create_link("L", make_config())
            with pytest.raises(ValueError, match="already exists"):
                engine.create_link("L", make_config())

        run(body)

    def test_drop_link_fails_queued_requests(self):
        async def body(engine):
            engine.create_link("L", make_config())
            futures = [
                engine.enqueue("L", "encode", np.arange(8))
                for _ in range(8)
            ]
            await engine.drop_link("L")
            failures = 0
            for future in futures:
                try:
                    await future
                except EngineClosedError:
                    failures += 1
            assert failures >= 1
            with pytest.raises(UnknownLinkError):
                await engine.submit("L", "encode", np.arange(8))

        run(body, policy=BatchPolicy(window_s=0.5))

    def test_drop_link_fails_in_flight_batch(self):
        # The batch executing on the thread pool when the link drops is
        # neither queued nor carried; its futures must still fail rather
        # than hang the callers awaiting them.
        import threading

        started = threading.Event()
        release = threading.Event()

        async def body(engine):
            original = engine._run_batch

            def stalled_run_batch(session, op, words, seq=None):
                started.set()
                release.wait(5.0)
                return original(session, op, words, seq)

            engine._run_batch = stalled_run_batch
            engine.create_link("L", make_config())
            future = engine.enqueue("L", "encode", np.arange(8))
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 5.0
            )
            await engine.drop_link("L")
            with pytest.raises(EngineClosedError):
                await asyncio.wait_for(future, 5.0)
            release.set()

        try:
            run(body, policy=BatchPolicy(window_s=0.0))
        finally:
            release.set()

    def test_closed_engine_rejects_everything(self):
        async def body():
            engine = ServeEngine()
            engine.create_link("L", make_config())
            await engine.close()
            with pytest.raises(EngineClosedError):
                engine.enqueue("L", "encode", np.arange(4))
            with pytest.raises(EngineClosedError):
                engine.create_link("M", make_config())

        asyncio.run(body())

    def test_stats_all_links(self):
        async def body(engine):
            engine.create_link("A", make_config())
            engine.create_link("B", make_config())
            await engine.submit("A", "encode", np.arange(16))
            stats = engine.stats()
            assert set(stats["links"]) == {"A", "B"}

        run(body)


class TestFaultPressure:
    def test_slow_solve_fault_point_fires_in_the_batch_worker(self):
        async def body(engine):
            engine.create_link("L", make_config())
            words = np.arange(32)
            with inject_faults("slow_solve(0.05)"):
                start = asyncio.get_running_loop().time()
                await engine.submit("L", "encode", words)
                elapsed = asyncio.get_running_loop().time() - start
            assert elapsed >= 0.05

        run(body)
