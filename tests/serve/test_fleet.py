"""Fleet front tests: routing, exact failover, drain — the PR's bar.

The headline test kills a worker process mid-stream (via
``REPRO_FAULTS=worker_crash(i,at=N)``) and checks that the coded stream
and the integer-exact energy report are *bit-identical* to an
uninterrupted single-server run: snapshot + journal replay must leave no
observable trace of the crash.
"""

import asyncio
import collections
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.serve import FleetServer, LinkClient, worker_for
from repro.serve.server import BackgroundServer
from repro.serve.session import LinkConfig

CONFIG_DICT = {
    "width": 8,
    "geometry": {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6},
    "codecs": [
        {"kind": "correlator", "n_channels": 4, "negated": True},
        {"kind": "businvert"},
    ],
}
CONFIG = LinkConfig.from_dict(CONFIG_DICT)

N_WORDS = 3000
CHUNK = 128


def stream_words(seed=1, n=N_WORDS):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 2**8, size=n, dtype=np.int64)


@pytest.fixture(scope="module")
def baseline():
    """Uninterrupted single-server run: the exactness reference."""
    words = stream_words()
    with BackgroundServer() as background:
        with LinkClient.connect(background.address) as client:
            client.create_link("lnk", CONFIG)
            coded = client.stream("lnk", words, op="encode",
                                  chunk_words=CHUNK)
            energy = client.stats("lnk")["energy"]
    return words, coded, energy


def fleet_background(tmp_path, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("snapshot_every", 8)
    return BackgroundServer(
        path=str(tmp_path / "fleet.sock"),
        server_factory=lambda: FleetServer(**kwargs),
    )


class TestWorkerFor:
    def test_deterministic(self):
        slots = [0, 1, 2, 3]
        for link_id in ("a", "b", "link-42", ""):
            first = worker_for(link_id, slots)
            assert all(worker_for(link_id, slots) == first
                       for _ in range(5))

    def test_slot_order_is_irrelevant(self):
        for link_id in ("a", "b", "c", "d"):
            assert (worker_for(link_id, [3, 1, 0, 2])
                    == worker_for(link_id, [0, 1, 2, 3]))

    def test_spread_is_roughly_uniform(self):
        slots = [0, 1, 2, 3]
        counts = collections.Counter(
            worker_for(f"link-{i}", slots) for i in range(400)
        )
        assert set(counts) == set(slots)
        assert min(counts.values()) >= 40  # expectation 100 per slot

    def test_minimal_movement_on_slot_removal(self):
        """Rendezvous property: dropping a slot only remaps its links."""
        ids = [f"link-{i}" for i in range(200)]
        before = {i: worker_for(i, [0, 1, 2]) for i in ids}
        after = {i: worker_for(i, [0, 1]) for i in ids}
        for link_id in ids:
            if before[link_id] != 2:
                assert after[link_id] == before[link_id]
            else:
                assert after[link_id] in (0, 1)

    def test_empty_slots_rejected(self):
        with pytest.raises(ValueError):
            worker_for("lnk", [])


class TestFleetServing:
    """The existing client/CLI surface, served by the fleet unchanged."""

    def test_roundtrip_reset_stats_and_control_plane(self, tmp_path):
        words = stream_words(seed=0, n=2000)
        with fleet_background(tmp_path, snapshot_every=16) as background:
            with LinkClient.connect(background.address) as client:
                for name in ("a", "b", "c"):
                    info = client.create_link(name, CONFIG)
                    assert info["width_in"] == 8
                assert sorted(client.ping()) == ["a", "b", "c"]

                coded = client.stream("a", words, op="encode",
                                      chunk_words=256)
                back = client.stream("a", coded, op="decode",
                                     chunk_words=256)
                assert np.array_equal(words, back)

                # Per-link stats carry the owning worker; the aggregate
                # view carries the fleet control-plane state.
                one = client.stats("a")
                assert one["worker"] == worker_for("a", [0, 1])
                stats = client.stats()
                assert sorted(stats["links"]) == ["a", "b", "c"]
                workers = stats["fleet"]["workers"]
                assert [w["state"] for w in workers] == ["up", "up"]

                # reset restarts the stream exactly.
                client.reset("a")
                coded2 = client.stream("a", words, op="encode",
                                       chunk_words=256)
                assert np.array_equal(coded, coded2)

                client.drop_link("c")
                assert sorted(client.ping()) == ["a", "b"]

    def test_duplicate_and_unknown_links_are_server_errors(self, tmp_path):
        from repro.serve import ServeError, UnknownLinkError

        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("dup", CONFIG)
                with pytest.raises(ServeError):
                    client.create_link("dup", CONFIG)
                with pytest.raises(UnknownLinkError):
                    client.stream("missing", stream_words(n=8), op="encode")


class TestCrashFailover:
    """worker_crash mid-stream must be invisible in the outputs."""

    def test_bit_identical_stream_and_energy_after_crash(
        self, tmp_path, monkeypatch, baseline
    ):
        words, base_coded, base_energy = baseline
        victim = worker_for("lnk", [0, 1])
        monkeypatch.setenv("REPRO_FAULTS", f"worker_crash({victim},at=12)")
        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("lnk", CONFIG)
                coded = client.stream("lnk", words, op="encode",
                                      chunk_words=CHUNK)
                energy = client.stats("lnk")["energy"]
                workers = client.stats()["fleet"]["workers"]
        by_index = {w["index"]: w for w in workers}
        assert by_index[victim]["restarts"] >= 1, \
            "fault never fired: victim worker did not restart"
        assert by_index[victim]["generation"] >= 1
        assert np.array_equal(base_coded, coded), \
            "coded stream forked after worker crash"
        assert base_energy == energy, \
            f"energy diverged after failover:\n{base_energy}\n{energy}"

    def test_corrupt_checkpoint_falls_back_without_divergence(
        self, tmp_path, monkeypatch, baseline
    ):
        """snapshot_corrupt tears checkpoints; checksum verification must
        reject them and fail over from the in-memory copy, still exactly."""
        words, base_coded, base_energy = baseline
        victim = worker_for("lnk", [0, 1])
        monkeypatch.setenv(
            "REPRO_FAULTS",
            f"snapshot_corrupt(8);worker_crash({victim},at=12)",
        )
        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("lnk", CONFIG)
                coded = client.stream("lnk", words, op="encode",
                                      chunk_words=CHUNK)
                energy = client.stats("lnk")["energy"]
                workers = client.stats()["fleet"]["workers"]
        assert any(w["restarts"] >= 1 for w in workers)
        assert np.array_equal(base_coded, coded)
        assert base_energy == energy

    def test_crash_during_decode_roundtrip(self, tmp_path, monkeypatch):
        """Round trip through a crash on the decode leg as well."""
        words = stream_words(seed=7, n=2000)
        victim = worker_for("rt", [0, 1])
        monkeypatch.setenv("REPRO_FAULTS", f"worker_crash({victim},at=20)")
        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("rt", CONFIG)
                coded = client.stream("rt", words, op="encode",
                                      chunk_words=100)
                back = client.stream("rt", coded, op="decode",
                                     chunk_words=100)
        assert np.array_equal(words, back)


class TestDrain:
    def _drain(self, background, index):
        future = asyncio.run_coroutine_threadsafe(
            background.server.drain_worker(index), background._loop
        )
        return future.result(timeout=30)

    def test_drain_moves_links_and_keeps_streams_exact(self, tmp_path):
        words = stream_words(seed=5, n=2000)
        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("lnk", CONFIG)
                owner = worker_for("lnk", [0, 1])
                first = client.stream("lnk", words[:1000], op="encode",
                                      chunk_words=CHUNK)
                self._drain(background, owner)
                second = client.stream("lnk", words[1000:], op="encode",
                                       chunk_words=CHUNK)
                stats = client.stats()
                workers = {w["index"]: w for w in
                           stats["fleet"]["workers"]}
                assert workers[owner]["state"] == "stopped"
                assert stats["links"]["lnk"]["worker"] != owner
            coded = np.concatenate([first, second])

        # Reference: the same stream uninterrupted on a single server.
        with BackgroundServer() as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("lnk", CONFIG)
                expected = client.stream("lnk", words, op="encode",
                                         chunk_words=CHUNK)
        assert np.array_equal(expected, coded)

    def test_last_live_worker_cannot_drain(self, tmp_path):
        with fleet_background(tmp_path) as background:
            self._drain(background, 0)
            with pytest.raises(RuntimeError):
                self._drain(background, 1)


class TestDescribe:
    def test_describe_shape(self, tmp_path):
        with fleet_background(tmp_path) as background:
            with LinkClient.connect(background.address) as client:
                client.create_link("lnk", CONFIG)
                info = background.server.describe()
        assert info["n_workers"] == 2
        assert {w["index"] for w in info["workers"]} == {0, 1}
        assert "lnk" in info["links"]
        assert info["links"]["lnk"]["worker"] == worker_for("lnk", [0, 1])


class TestOrphanGuard:
    """A worker whose front dies without unwinding must exit by itself."""

    def test_worker_exits_when_front_disappears(self, tmp_path):
        # An intermediate process plays the fleet front: it spawns the
        # worker, waits for the socket (which guarantees the worker has
        # recorded the live parent pid), then exits without killing it.
        sock = str(tmp_path / "orphan.sock")
        front = (
            "import os, subprocess, sys, time\n"
            "sock = sys.argv[1]\n"
            "child = subprocess.Popen([sys.executable, '-m',"
            " 'repro.serve.worker', '--path', sock, '--index', '0'])\n"
            "print(child.pid, flush=True)\n"
            "deadline = time.time() + 30\n"
            "while not os.path.exists(sock):\n"
            "    if time.time() > deadline:\n"
            "        sys.exit(2)\n"
            "    time.sleep(0.05)\n"
        )
        env = dict(os.environ)
        env["REPRO_WORKER_ORPHAN_POLL_S"] = "0.1"
        proc = subprocess.run(
            [sys.executable, "-c", front, sock],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        worker_pid = int(proc.stdout.split()[0])
        deadline = time.time() + 15
        while time.time() < deadline:
            try:
                os.kill(worker_pid, 0)
            except ProcessLookupError:
                return  # the orphaned worker noticed and exited
            time.sleep(0.1)
        os.kill(worker_pid, 9)  # don't leak it past the failing test
        pytest.fail("orphaned worker still alive after 15s")
