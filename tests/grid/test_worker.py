"""Worker chaos: hard kills, claim reclaim, graceful drain, failed jobs."""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.grid.queue import JobQueue, JobState
from repro.grid.runners import execute_job
from repro.grid.space import DesignSpace, expand
from repro.grid.store import ResultStore
from repro.grid.worker import GridWorker
from repro.runtime.faults import FAULTS_ENV_VAR, InjectedFault


def _plan(root, n_points=3, seed=1, delay_s=0.0, fail_points=()):
    base = {"n_points": n_points, "seed": seed}
    if delay_s:
        base["delay_s"] = delay_s
    if fail_points:
        base["fail_points"] = list(fail_points)
    jobs = expand(DesignSpace(experiment="selftest", base=base))
    queue = JobQueue(root)
    for job in jobs:
        queue.submit(job)
    return jobs


def _worker_env(faults=None):
    env = os.environ.copy()
    env.pop(FAULTS_ENV_VAR, None)
    if faults:
        env[FAULTS_ENV_VAR] = faults
    return env


def _spawn_worker(root, index=0, faults=None, extra=()):
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.grid.worker", str(root),
            "--index", str(index), "--lease-timeout", "1.0",
            "--poll", "0.05", *extra,
        ],
        env=_worker_env(faults),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _wait_for(predicate, timeout_s=20.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


class TestDrainsQueue:
    def test_single_worker_drains(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        jobs = _plan(tmp_path, n_points=4)
        stats = GridWorker(tmp_path, lease_timeout_s=1.0, poll_s=0.01).run()
        assert stats["completed"] == 4
        assert JobQueue(tmp_path).counts()["done"] == 4
        store = ResultStore(tmp_path / "results.sqlite")
        assert store.count() == 4
        assert store.violations() == []
        # The recorded values match a direct (worker-free) execution.
        for job in jobs:
            label, values = execute_job(job.spec())
            record = store.fetch(job.fingerprint)
            assert record.label == label
            assert record.values == values

    def test_failing_point_parks_in_failed(self, tmp_path, monkeypatch):
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        _plan(tmp_path, n_points=2, fail_points=("p1",))
        worker = GridWorker(
            tmp_path, max_attempts=2, lease_timeout_s=1.0, poll_s=0.01
        )
        stats = worker.run()
        assert stats["completed"] == 1
        assert stats["failed"] == 2  # two attempts burned on p1
        queue = JobQueue(tmp_path)
        failed = queue.jobs(JobState.FAILED)
        assert len(failed) == 1
        assert "set to fail" in failed[0].error


class TestHardKill:
    def test_injected_crash_dies_with_lease_held(self, tmp_path, monkeypatch):
        _plan(tmp_path, n_points=1)
        monkeypatch.setenv(FAULTS_ENV_VAR, "worker_crash(0)")
        with pytest.raises(InjectedFault):
            GridWorker(tmp_path, index=0, lease_timeout_s=1.0).run()
        # The job is stranded in running/ with a silent lease...
        queue = JobQueue(tmp_path)
        assert queue.counts()["running"] == 1
        # ...and a later sweep returns it to pending.
        time.sleep(1.1)
        assert queue.reclaim_expired(lease_timeout_s=1.0) != []

    def test_killed_worker_job_is_rerun_elsewhere(self, tmp_path, monkeypatch):
        """The chaos contract: kill one worker mid-job, lose nothing."""
        jobs = _plan(tmp_path, n_points=3)
        crasher = _spawn_worker(tmp_path, index=0, faults="worker_crash(0)")
        assert crasher.wait(timeout=30) != 0  # died on the injected fault
        queue = JobQueue(tmp_path)
        assert queue.counts()["running"] == 1
        monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
        time.sleep(1.1)  # let the dead worker's lease expire
        stats = GridWorker(
            tmp_path, index=1, lease_timeout_s=1.0, poll_s=0.05
        ).run()
        assert stats["reclaimed"] == 1
        assert stats["completed"] == 3
        store = ResultStore(tmp_path / "results.sqlite")
        assert store.count() == 3
        assert store.violations() == []
        # The reclaimed job burned exactly one attempt.
        attempts = [queue.attempts(job.fingerprint) for job in jobs]
        assert sorted(attempts) == [0, 0, 1]


class TestGracefulDrain:
    def test_sigterm_releases_claim_unburned(self, tmp_path):
        jobs = _plan(tmp_path, n_points=1, delay_s=30.0)
        # Pre-seed the job's checkpoint dir: a drain must leave it alone
        # (a hard failure path would have cleaned it up on completion).
        marker = (
            tmp_path / "checkpoints" / jobs[0].fingerprint / "marker.txt"
        )
        marker.parent.mkdir(parents=True)
        marker.write_text("partial search state")
        worker = _spawn_worker(tmp_path, extra=("--wait",))
        queue = JobQueue(tmp_path)
        try:
            assert _wait_for(lambda: queue.counts()["running"] == 1)
            fingerprint = queue.jobs(JobState.RUNNING)[0].fingerprint
            worker.send_signal(signal.SIGTERM)
            out, err = worker.communicate(timeout=30)
        finally:
            if worker.poll() is None:
                worker.kill()
        assert worker.returncode == 0
        assert "released" in (out + err)
        # Back in pending, no attempt burned, checkpoints preserved.
        assert queue.counts()["pending"] == 1
        assert queue.attempts(fingerprint) == 0
        assert marker.read_text() == "partial search state"
