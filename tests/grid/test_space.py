"""Design-space expansion: determinism, fingerprints, spec validation."""

import json
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.grid.space import (
    DesignSpace,
    SpaceError,
    expand,
    job_fingerprint,
    load_space,
    space_from_dict,
)


class TestFingerprint:
    def test_param_order_irrelevant(self):
        a = job_fingerprint("selftest", {"seed": 1, "n_points": 2}, "p0")
        b = job_fingerprint("selftest", {"n_points": 2, "seed": 1}, "p0")
        assert a == b

    def test_content_sensitive(self):
        base = job_fingerprint("selftest", {"seed": 1}, "p0")
        assert job_fingerprint("selftest", {"seed": 2}, "p0") != base
        assert job_fingerprint("selftest", {"seed": 1}, "p1") != base
        assert job_fingerprint("fig4", {"seed": 1}, "p0") != base

    def test_stable_across_processes(self):
        """The fingerprint is content-addressed, not hash-seed-addressed."""
        local = job_fingerprint("fig4", {"fast": True, "seed": 2018}, "x")
        script = (
            "from repro.grid.space import job_fingerprint;"
            "print(job_fingerprint('fig4', {'fast': True, 'seed': 2018}, 'x'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == local


class TestExpansion:
    def _space(self, **overrides):
        document = {
            "experiment": "selftest",
            "base": {"n_points": 2},
            "axes": {"seed": [1, 2, 3]},
            "points": "all",
        }
        document.update(overrides)
        return space_from_dict(document)

    def test_expands_product(self):
        jobs = expand(self._space())
        assert len(jobs) == 6  # 3 seeds x 2 points
        assert [j.fingerprint for j in jobs] == sorted(
            j.fingerprint for j in jobs
        )

    def test_points_subset(self):
        jobs = expand(self._space(points=["p1"]))
        assert len(jobs) == 3
        assert all(j.point == "p1" for j in jobs)

    def test_unknown_point_rejected(self):
        with pytest.raises(SpaceError, match="unknown points"):
            expand(self._space(points=["p7"]))

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SpaceError, match="unknown experiment"):
            expand(self._space(experiment="fig99"))

    def test_bad_params_rejected(self):
        with pytest.raises(SpaceError, match="rejected params"):
            expand(self._space(base={"n_points": 2, "bogus_knob": 1}))

    def test_filter_prunes(self):
        jobs = expand(self._space(filter="seed != 2"))
        assert sorted({j.param_dict["seed"] for j in jobs}) == [1, 3]

    def test_broken_filter_raises(self):
        with pytest.raises(SpaceError, match="filter"):
            expand(self._space(filter="seed +"))

    def test_include_adds_point(self):
        jobs = expand(self._space(include=[{"seed": 99}]))
        assert 99 in {j.param_dict["seed"] for j in jobs}
        assert len(jobs) == 8

    def test_include_dedups_against_axes(self):
        jobs = expand(self._space(include=[{"seed": 1}]))
        assert len(jobs) == 6  # seed=1 already in the axis

    @given(
        order=st.permutations(["seed", "n_points"]),
        seed_order=st.permutations([1, 2, 3]),
    )
    @settings(max_examples=25, deadline=None)
    def test_expansion_order_independent(self, order, seed_order):
        """Axis insertion order and value order never change the plan."""
        axes = {"seed": list(seed_order), "n_points": [2, 3]}
        space = DesignSpace(
            experiment="selftest",
            axes={name: axes[name] for name in order},
        )
        reference = DesignSpace(
            experiment="selftest",
            axes={"seed": [1, 2, 3], "n_points": [2, 3]},
        )
        assert expand(space) == expand(reference)


class TestSpecFiles:
    def test_load_space(self, tmp_path):
        path = tmp_path / "s.json"
        path.write_text(json.dumps({
            "experiment": "selftest", "axes": {"seed": [1]},
        }))
        space = load_space(path)
        assert space.experiment == "selftest"
        assert space.name == "s"

    def test_unknown_keys_rejected(self):
        with pytest.raises(SpaceError, match="unknown design-space keys"):
            space_from_dict({"experiment": "selftest", "axis": {}})

    def test_scalar_axis_rejected(self):
        with pytest.raises(SpaceError, match="must list its values"):
            space_from_dict({"experiment": "selftest", "axes": {"seed": 1}})

    def test_empty_axis_rejected(self):
        with pytest.raises(SpaceError, match="has no values"):
            space_from_dict({"experiment": "selftest", "axes": {"seed": []}})

    def test_bad_points_rejected(self):
        with pytest.raises(SpaceError, match="points must be"):
            space_from_dict({"experiment": "selftest", "points": "some"})

    def test_repo_spec_files_expand(self):
        """Every shipped experiments/*.json spec plans successfully."""
        from pathlib import Path

        spec_dir = Path(__file__).resolve().parents[2] / "experiments"
        specs = sorted(spec_dir.glob("*_grid.json"))
        assert specs, "no grid specs shipped under experiments/"
        for spec in specs:
            jobs = expand(load_space(spec))
            assert jobs, f"{spec.name} expanded to an empty grid"
