"""Result store: insert-or-verify, tamper detection, provenance."""

import json
import threading

import pytest

from repro.grid.store import DeterminismViolation, ResultStore

SPEC = {
    "format": "repro-grid-job", "version": 1,
    "experiment": "selftest", "params": {"seed": 1}, "point": "p0",
}


def _store(tmp_path):
    return ResultStore(tmp_path / "results.sqlite")


class TestInsertOrVerify:
    def test_insert_then_fetch(self, tmp_path):
        store = _store(tmp_path)
        assert store.record(
            "fp0", SPEC, "row label", {"value": 0.5, "index": 0.0},
            worker="w0", attempts=1, elapsed_s=0.01, revision="cafe",
        )
        record = store.fetch("fp0")
        assert record.label == "row label"
        assert record.values == {"value": 0.5, "index": 0.0}
        assert record.params == {"seed": 1}
        assert record.worker == "w0"
        assert record.attempts == 1
        assert record.git_revision == "cafe"
        assert store.count() == 1

    def test_duplicate_identical_verifies(self, tmp_path):
        store = _store(tmp_path)
        values = {"value": 0.5}
        assert store.record("fp0", SPEC, "l", values)
        assert not store.record("fp0", SPEC, "l", dict(values))
        assert store.count() == 1
        assert store.violations() == []

    def test_duplicate_divergent_raises_and_logs(self, tmp_path):
        store = _store(tmp_path)
        store.record("fp0", SPEC, "l", {"value": 0.5})
        with pytest.raises(DeterminismViolation, match="fp0"):
            store.record("fp0", SPEC, "l", {"value": 0.5000001})
        violations = store.violations()
        assert len(violations) == 1
        assert violations[0]["fingerprint"] == "fp0"
        # The stored row is untouched; the divergent values are logged.
        assert store.fetch("fp0").values == {"value": 0.5}
        assert json.loads(violations[0]["new_values"]) == {"value": 0.5000001}

    def test_values_keep_insertion_order(self, tmp_path):
        """values_json preserves dict order; equality is canonical."""
        store = _store(tmp_path)
        store.record("fp0", SPEC, "l", {"z_last": 1.0, "a_first": 2.0})
        record = store.fetch("fp0")
        assert list(record.values) == ["z_last", "a_first"]
        # Same values in a different insertion order still verify.
        assert not store.record("fp0", SPEC, "l", {"a_first": 2.0, "z_last": 1.0})

    def test_tampered_row_cannot_verify(self, tmp_path):
        """Verification digests the stored bytes, not the stored sha."""
        store = _store(tmp_path)
        store.record("fp0", SPEC, "l", {"value": 0.5})
        connection = store._connect()
        with connection:
            connection.execute(
                "UPDATE results SET values_json=? WHERE fingerprint=?",
                (json.dumps({"value": 0.75}), "fp0"),
            )
        with pytest.raises(DeterminismViolation):
            store.record("fp0", SPEC, "l", {"value": 0.5})


class TestReading:
    def test_records_filter_and_order(self, tmp_path):
        store = _store(tmp_path)
        other = dict(SPEC, experiment="fig4")
        store.record("b", SPEC, "l1", {"v": 1.0})
        store.record("a", SPEC, "l2", {"v": 2.0})
        store.record("c", other, "l3", {"v": 3.0})
        assert [r.fingerprint for r in store.records()] == ["a", "b", "c"]
        assert [r.fingerprint for r in store.records("selftest")] == ["a", "b"]
        assert store.fetch("missing") is None

    def test_concurrent_writers(self, tmp_path):
        """Racing record() calls on one fingerprint: one insert, rest verify."""
        store_path = tmp_path / "results.sqlite"
        ResultStore(store_path)  # create the schema up front
        outcomes = [None] * 8
        barrier = threading.Barrier(len(outcomes))

        def writer(i):
            barrier.wait()
            outcomes[i] = ResultStore(store_path).record(
                "fp0", SPEC, "l", {"value": 0.5}, worker=f"w{i}"
            )

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(len(outcomes))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(1 for inserted in outcomes if inserted) == 1
        store = ResultStore(store_path)
        assert store.count() == 1
        assert store.violations() == []
