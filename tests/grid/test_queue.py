"""Job-queue semantics: atomic claims, leases, expiry, bounded retries."""

import threading
import time

import pytest

from repro.grid.queue import JobQueue, JobState, QueueError, default_owner
from repro.grid.space import DesignSpace, expand


def _jobs(n_points=3, seed=1):
    return expand(DesignSpace(
        experiment="selftest", base={"n_points": n_points, "seed": seed},
    ))


def _submit_all(queue, jobs):
    for job in jobs:
        assert queue.submit(job)


class TestSubmission:
    def test_submit_and_counts(self, tmp_path):
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs())
        assert queue.counts() == {
            "pending": 3, "running": 0, "done": 0, "failed": 0,
        }
        assert not queue.drained()

    def test_resubmit_of_known_job_is_noop(self, tmp_path):
        queue = JobQueue(tmp_path)
        jobs = _jobs()
        _submit_all(queue, jobs)
        assert not queue.submit(jobs[0])
        claim = queue.claim("w")
        # A running job is "already planned" too.
        running = next(j for j in jobs if j.fingerprint == claim.job.fingerprint)
        assert not queue.submit(running)
        assert queue.counts()["pending"] == 2


class TestClaiming:
    def test_claim_lifecycle(self, tmp_path):
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        assert claim is not None
        assert claim.owner == "w0"
        assert queue.counts()["running"] == 1
        queue.complete(claim.job.fingerprint, "w0")
        assert queue.counts()["done"] == 1
        assert queue.drained()
        assert queue.claim("w0") is None

    def test_race_has_exactly_one_winner(self, tmp_path):
        """N threads racing one pending job: one claim, no crashes."""
        jobs = _jobs(n_points=1)
        queues = [JobQueue(tmp_path) for _ in range(8)]
        _submit_all(queues[0], jobs)
        barrier = threading.Barrier(len(queues))
        claims = [None] * len(queues)

        def racer(i):
            barrier.wait()
            claims[i] = queues[i].claim(default_owner(i))

        threads = [
            threading.Thread(target=racer, args=(i,))
            for i in range(len(queues))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        winners = [c for c in claims if c is not None]
        assert len(winners) == 1
        assert queue_state(tmp_path) == {"running": 1}
        # The winner's lease survived every loser's withdrawal.
        fingerprint = winners[0].job.fingerprint
        queue = queues[0]
        lease = queue._read_json(queue._lease_path(fingerprint))
        assert lease is not None and lease["owner"] == winners[0].owner

    def test_complete_raises_when_reclaimed(self, tmp_path):
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        # Simulate a reclaim by another worker while we were "running".
        other = JobQueue(tmp_path)
        other.reclaim_expired(lease_timeout_s=0.0)
        with pytest.raises(QueueError, match="reclaimed"):
            queue.complete(claim.job.fingerprint, "w0")


class TestRetries:
    def test_fail_attempt_requeues_then_parks(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=2)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        fingerprint = claim.job.fingerprint
        assert queue.fail_attempt(fingerprint, "w0", "boom") == JobState.PENDING
        assert queue.attempts(fingerprint) == 1
        claim = queue.claim("w0")
        assert claim is not None
        assert queue.fail_attempt(fingerprint, "w0", "boom") == JobState.FAILED
        assert queue.counts()["failed"] == 1
        failed = queue.jobs(JobState.FAILED)
        assert failed[0].attempts == 2
        assert failed[0].error == "boom"

    def test_release_burns_no_attempt(self, tmp_path):
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        queue.release(claim.job.fingerprint, "w0")
        assert queue.counts()["pending"] == 1
        assert queue.attempts(claim.job.fingerprint) == 0

    def test_resubmit_resets_counter(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        fingerprint = claim.job.fingerprint
        queue.fail_attempt(fingerprint, "w0", "boom")
        assert queue.counts()["failed"] == 1
        assert queue.resubmit(fingerprint)
        assert queue.counts()["pending"] == 1
        assert queue.attempts(fingerprint) == 0


class TestLeaseExpiry:
    def test_silent_lease_reclaimed(self, tmp_path):
        dead = JobQueue(tmp_path)
        _submit_all(dead, _jobs(n_points=1))
        claim = dead.claim("dead-worker")
        fingerprint = claim.job.fingerprint
        # A *different* process (fresh queue object, no held set) sweeps.
        sweeper = JobQueue(tmp_path)
        assert sweeper.reclaim_expired(lease_timeout_s=3600.0) == []
        time.sleep(0.05)
        assert sweeper.reclaim_expired(lease_timeout_s=0.01) == [fingerprint]
        assert sweeper.counts()["pending"] == 1
        assert sweeper.attempts(fingerprint) == 1

    def test_own_live_claim_never_reclaimed(self, tmp_path):
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs(n_points=1))
        queue.claim("w0")
        time.sleep(0.05)
        assert queue.reclaim_expired(lease_timeout_s=0.01) == []

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        holder = JobQueue(tmp_path)
        _submit_all(holder, _jobs(n_points=1))
        claim = holder.claim("w0")
        sweeper = JobQueue(tmp_path)
        time.sleep(0.15)
        holder.heartbeat_held()
        assert sweeper.reclaim_expired(lease_timeout_s=0.1) == []
        time.sleep(0.15)
        assert sweeper.reclaim_expired(lease_timeout_s=0.1) == [
            claim.job.fingerprint
        ]

    def test_missing_lease_gets_grace_window(self, tmp_path):
        """A running job without a lease is not reclaimed instantly."""
        queue = JobQueue(tmp_path)
        _submit_all(queue, _jobs(n_points=1))
        claim = queue.claim("w0")
        fingerprint = claim.job.fingerprint
        queue._lease_path(fingerprint).unlink()
        sweeper = JobQueue(tmp_path)
        # Freshly claimed (running file ctime is now): still in grace.
        assert sweeper.reclaim_expired(lease_timeout_s=3600.0) == []
        time.sleep(0.05)
        assert sweeper.reclaim_expired(lease_timeout_s=0.01) == [fingerprint]

    def test_exhausted_reclaims_park_in_failed(self, tmp_path):
        queue = JobQueue(tmp_path, max_attempts=1)
        _submit_all(queue, _jobs(n_points=1))
        queue.claim("crashy")
        sweeper = JobQueue(tmp_path, max_attempts=1)
        time.sleep(0.05)
        sweeper.reclaim_expired(lease_timeout_s=0.01)
        assert sweeper.counts()["failed"] == 1
        assert sweeper.counts()["pending"] == 0


def queue_state(root):
    """Non-zero state-directory counts (compact assertion helper)."""
    counts = JobQueue(root).counts()
    return {state: n for state, n in counts.items() if n}
