"""Store queries: selection, figure reassembly, pivots, percentiles."""

import pytest

from repro.grid.query import QueryError, figure_rows, percentiles, pivot, select
from repro.grid.runners import execute_job
from repro.grid.space import DesignSpace, expand
from repro.grid.store import ResultStore


def _filled_store(tmp_path, seeds=(1, 2, 3), n_points=2):
    """Run a small selftest grid serially straight into a store."""
    store = ResultStore(tmp_path / "results.sqlite")
    jobs = expand(DesignSpace(
        experiment="selftest",
        base={"n_points": n_points},
        axes={"seed": list(seeds)},
    ))
    for job in jobs:
        label, values = execute_job(job.spec())
        store.record(job.fingerprint, job.spec(), label, values)
    return store


class TestSelect:
    def test_axis_filter(self, tmp_path):
        store = _filled_store(tmp_path)
        records = select(store, "selftest", where={"seed": 2})
        assert len(records) == 2
        assert all(r.params["seed"] == 2 for r in records)

    def test_list_filter_and_point(self, tmp_path):
        store = _filled_store(tmp_path)
        records = select(store, where={"seed": [1, 3], "point": "p0"})
        assert sorted(r.params["seed"] for r in records) == [1, 3]
        assert all(r.point == "p0" for r in records)

    def test_no_filter_returns_all(self, tmp_path):
        store = _filled_store(tmp_path)
        assert len(select(store)) == 6


class TestFigureRows:
    def test_rows_in_point_order(self, tmp_path):
        store = _filled_store(tmp_path)
        rows = figure_rows(store, "selftest", {"n_points": 2, "seed": 1})
        assert [row.label for row in rows] == ["selftest p0", "selftest p1"]
        assert [row.values["index"] for row in rows] == [0.0, 1.0]

    def test_missing_point_raises(self, tmp_path):
        store = _filled_store(tmp_path)
        with pytest.raises(QueryError, match="no stored results"):
            figure_rows(store, "selftest", {"n_points": 2, "seed": 99})

    def test_missing_skip(self, tmp_path):
        store = _filled_store(tmp_path)
        rows = figure_rows(
            store, "selftest", {"n_points": 2, "seed": 99}, missing="skip"
        )
        assert rows == []

    def test_bad_missing_mode(self, tmp_path):
        store = _filled_store(tmp_path)
        with pytest.raises(QueryError, match="missing must be"):
            figure_rows(store, "selftest", {}, missing="ignore")


class TestPivot:
    def test_dense_table(self, tmp_path):
        store = _filled_store(tmp_path)
        table = pivot(select(store), index="seed", columns="point",
                      value="value")
        assert table["index"] == [1, 2, 3]
        assert table["columns"] == ["p0", "p1"]
        assert len(table["values"]) == 3
        assert all(len(row) == 2 for row in table["values"])
        assert all(v is not None for row in table["values"] for v in row)

    def test_holes_are_none(self, tmp_path):
        store = _filled_store(tmp_path)
        records = [
            r for r in select(store)
            if not (r.point == "p1" and r.params["seed"] == 2)
        ]
        table = pivot(records, index="seed", columns="point", value="value")
        assert table["values"][1][1] is None

    def test_ambiguous_cell_raises(self, tmp_path):
        store = _filled_store(tmp_path)
        with pytest.raises(QueryError, match="ambiguous"):
            # Collapsing all seeds onto one "experiment" column reuses cells.
            pivot(select(store), index="point", columns="experiment",
                  value="value")


class TestPercentiles:
    def test_groups_and_quantiles(self, tmp_path):
        store = _filled_store(tmp_path, seeds=(1, 2, 3, 4, 5))
        stats = percentiles(select(store), value="value", over="seed")
        assert [entry["point"] for entry in stats] == ["p0", "p1"]
        for entry in stats:
            assert entry["n"] == 5
            assert "seed" not in entry["params"]
            assert entry["p5"] <= entry["p50"] <= entry["p95"]

    def test_median_matches_numpy(self, tmp_path):
        import numpy as np

        store = _filled_store(tmp_path, seeds=(1, 2, 3, 4, 5))
        records = [r for r in select(store) if r.point == "p0"]
        stats = percentiles(records, value="value", over="seed", qs=(50,))
        samples = sorted(r.values["value"] for r in records)
        assert stats[0]["p50"] == float(np.percentile(samples, 50))
