"""End-to-end contract: grid execution is bit-identical to the serial run."""

import os
import subprocess
import sys
import time

from repro.experiments import fig4
from repro.grid.query import figure_rows
from repro.grid.queue import JobQueue
from repro.grid.space import DesignSpace, expand
from repro.grid.store import ResultStore
from repro.grid.worker import GridWorker
from repro.reporting import rows_to_json
from repro.runtime.faults import FAULTS_ENV_VAR

PARAMS = {"fast": True}


def _plan_fig4(root):
    queue = JobQueue(root)
    jobs = expand(DesignSpace(experiment="fig4", base=PARAMS))
    for job in jobs:
        queue.submit(job)
    return jobs


def test_serial_and_grid_rows_agree(tmp_path, monkeypatch):
    """One in-process worker reproduces the serial figure byte for byte."""
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    jobs = _plan_fig4(tmp_path)
    assert len(jobs) == 6
    stats = GridWorker(tmp_path, lease_timeout_s=5.0, poll_s=0.01).run()
    assert stats["completed"] == 6
    store = ResultStore(tmp_path / "results.sqlite")
    grid_rows = figure_rows(store, "fig4", PARAMS)
    serial_rows = fig4.run(fast=True)
    assert rows_to_json(grid_rows) == rows_to_json(serial_rows)


def test_chaos_fleet_rows_agree(tmp_path, monkeypatch):
    """Three worker processes, one hard-killed mid-job: still bit-identical.

    This is the acceptance scenario: the killed worker's lease goes
    silent, a survivor reclaims and re-runs the job, and the reassembled
    figure matches the serial run exactly — the determinism checker in
    the store would have flagged any divergence.
    """
    monkeypatch.delenv(FAULTS_ENV_VAR, raising=False)
    jobs = _plan_fig4(tmp_path)
    workers = []
    for index in range(3):
        env = os.environ.copy()
        env.pop(FAULTS_ENV_VAR, None)
        if index == 0:
            env[FAULTS_ENV_VAR] = "worker_crash(0)"
        workers.append(subprocess.Popen(
            [
                sys.executable, "-m", "repro.grid.worker", str(tmp_path),
                "--index", str(index), "--lease-timeout", "1.0",
                "--poll", "0.05",
            ],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True,
        ))
    codes = [worker.wait(timeout=120) for worker in workers]
    assert codes[0] != 0  # the chaos victim died hard
    queue = JobQueue(tmp_path)
    store = ResultStore(tmp_path / "results.sqlite")
    # The victim's job may still be stranded if the survivors drained the
    # rest before its lease expired; sweep it up with a fresh worker.
    if queue.counts()["done"] < len(jobs):
        time.sleep(1.1)
        GridWorker(tmp_path, index=3, lease_timeout_s=1.0, poll_s=0.05).run()
    assert queue.counts()["done"] == len(jobs)
    assert store.count() == len(jobs)
    assert store.violations() == []
    # Exactly one job paid for the crash with a bumped attempt counter.
    attempts = sorted(queue.attempts(job.fingerprint) for job in jobs)
    assert attempts == [0, 0, 0, 0, 0, 1]
    grid_rows = figure_rows(store, "fig4", PARAMS)
    serial_rows = fig4.run(fast=True)
    assert rows_to_json(grid_rows) == rows_to_json(serial_rows)
