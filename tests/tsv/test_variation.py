"""Tests for the process-variation / robustness model."""

import numpy as np
import pytest

from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.arraycap import CompactCapacitanceModel
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.matrices import asymmetry, total_capacitance
from repro.tsv.variation import (
    RobustnessReport,
    VariationModel,
    assignment_robustness,
)


@pytest.fixture(scope="module")
def geometry():
    return TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)


@pytest.fixture(scope="module")
def stats():
    bits = gaussian_bit_stream(4000, 9, sigma=16.0, rho=0.5,
                               rng=np.random.default_rng(0))
    return BitStatistics.from_stream(bits)


class TestVariationModel:
    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            VariationModel(radius_sigma=-0.1)

    def test_zero_sigma_reproduces_nominal(self, geometry):
        model = VariationModel(radius_sigma=0.0, oxide_sigma=0.0,
                               mismatch_sigma=0.0)
        sampled = model.sample_capacitance(
            geometry, np.random.default_rng(0)
        )
        nominal = CompactCapacitanceModel(
            geometry, parameters=model.parameters
        ).capacitance_matrix()
        np.testing.assert_allclose(sampled, nominal, rtol=1e-12)

    def test_samples_differ(self, geometry):
        model = VariationModel()
        rng = np.random.default_rng(1)
        a = model.sample_capacitance(geometry, rng)
        b = model.sample_capacitance(geometry, rng)
        # atol=0: the default absolute tolerance dwarfs femtofarad entries.
        assert not np.allclose(a, b, rtol=1e-3, atol=0.0)

    def test_samples_stay_physical(self, geometry):
        model = VariationModel(radius_sigma=0.1, mismatch_sigma=0.05)
        rng = np.random.default_rng(2)
        for _ in range(10):
            cap = model.sample_capacitance(geometry, rng)
            assert (cap >= 0.0).all()
            assert asymmetry(cap) < 1e-9
            totals = total_capacitance(cap)
            assert (totals > 1e-15).all() and (totals < 500e-15).all()

    def test_sample_geometry_keeps_layout(self, geometry):
        model = VariationModel()
        sampled = model.sample_geometry(geometry, np.random.default_rng(3))
        assert sampled.rows == geometry.rows
        assert sampled.cols == geometry.cols
        assert sampled.pitch == geometry.pitch
        assert sampled.radius != geometry.radius


class TestRadialScaleHook:
    def test_scaling_raises_capacitances(self, geometry):
        model = CompactCapacitanceModel(geometry)
        base = model.capacitance_matrix()
        scaled = model.capacitance_matrix(
            radial_scale=np.full(9, 1.2)
        )
        assert (total_capacitance(scaled)
                > total_capacitance(base)).all()

    def test_scale_validation(self, geometry):
        model = CompactCapacitanceModel(geometry)
        with pytest.raises(ValueError):
            model.capacitance_matrix(radial_scale=np.ones(4))
        with pytest.raises(ValueError):
            model.capacitance_matrix(radial_scale=np.zeros(9))


class TestRobustness:
    def test_report_structure(self, geometry, stats):
        from repro.core.systematic import spiral_assignment

        report = assignment_robustness(
            stats, geometry, spiral_assignment(geometry),
            n_samples=8, baseline_samples=15,
            rng=np.random.default_rng(4), reoptimize=False,
        )
        assert isinstance(report, RobustnessReport)
        assert report.n_samples == 8
        assert report.worst_reduction <= report.mean_reduction
        assert report.std_reduction >= 0.0

    def test_optimized_assignment_is_variation_tolerant(self, geometry, stats):
        """The design-time optimum must keep most of its gain across
        geometry variation (the structural argument of the module doc)."""
        from repro.experiments.common import optimize_for_stream

        assignment = optimize_for_stream(stats, geometry,
                                         cap_method="compact3d")
        report = assignment_robustness(
            stats, geometry, assignment, n_samples=15,
            rng=np.random.default_rng(5),
        )
        assert report.mean_reduction > 0.6 * report.nominal_reduction
        assert report.mean_regret < 0.02

    def test_rejects_bad_sample_count(self, geometry, stats):
        from repro.core.systematic import sawtooth_assignment

        with pytest.raises(ValueError):
            assignment_robustness(
                stats, geometry, sawtooth_assignment(geometry), n_samples=0
            )
