"""Tests for capacitance-matrix form conversions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
from hypothesis.extra import numpy as hnp

from repro.tsv import matrices


class TestMaxwellToSpice:
    def test_simple_two_conductor(self):
        maxwell = np.array([[3.0, -1.0], [-1.0, 2.0]])
        spice = matrices.maxwell_to_spice(maxwell)
        assert spice[0, 1] == pytest.approx(1.0)
        assert spice[1, 0] == pytest.approx(1.0)
        assert spice[0, 0] == pytest.approx(2.0)  # 3 - 1
        assert spice[1, 1] == pytest.approx(1.0)  # 2 - 1

    def test_noise_couplings_clipped(self):
        maxwell = np.array([[3.0, 1e-20], [1e-20, 2.0]])
        spice = matrices.maxwell_to_spice(maxwell)
        assert spice[0, 1] == 0.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            matrices.maxwell_to_spice(np.ones((2, 3)))


class TestRoundtrip:
    @given(
        hnp.arrays(
            float,
            (4, 4),
            elements=st.floats(0.0, 10.0),
        )
    )
    def test_spice_maxwell_roundtrip(self, raw):
        spice = (raw + raw.T) / 2.0  # symmetric, non-negative
        maxwell = matrices.spice_to_maxwell(spice)
        back = matrices.maxwell_to_spice(maxwell)
        np.testing.assert_allclose(back, spice, atol=1e-12)

    def test_maxwell_diagonal_dominance_preserved(self):
        spice = np.array([[1.0, 2.0], [2.0, 3.0]])
        maxwell = matrices.spice_to_maxwell(spice)
        # Maxwell form: diagonal = ground + couplings, off-diagonal negative.
        assert maxwell[0, 0] == pytest.approx(3.0)
        assert maxwell[0, 1] == pytest.approx(-2.0)


class TestHelpers:
    def test_symmetrize(self):
        a = np.array([[1.0, 2.0], [4.0, 3.0]])
        s = matrices.symmetrize(a)
        np.testing.assert_allclose(s, [[1.0, 3.0], [3.0, 3.0]])

    def test_asymmetry_zero_for_symmetric(self):
        a = np.array([[1.0, 2.0], [2.0, 3.0]])
        assert matrices.asymmetry(a) == 0.0

    def test_asymmetry_positive(self):
        a = np.array([[1.0, 2.0], [2.5, 3.0]])
        assert matrices.asymmetry(a) > 0.0

    def test_asymmetry_of_zero_matrix(self):
        assert matrices.asymmetry(np.zeros((3, 3))) == 0.0

    def test_total_capacitance(self):
        spice = np.array([[1.0, 0.5], [0.5, 2.0]])
        np.testing.assert_allclose(
            matrices.total_capacitance(spice), [1.5, 2.5]
        )
