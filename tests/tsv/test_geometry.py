"""Tests for the TSV array geometry model."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import constants
from repro.tsv.geometry import PositionClass, TSVArrayGeometry


def make(rows=3, cols=3, pitch=8e-6, radius=2e-6):
    return TSVArrayGeometry(rows=rows, cols=cols, pitch=pitch, radius=radius)


class TestConstruction:
    def test_default_oxide_thickness_is_radius_over_five(self):
        geom = make(radius=2e-6)
        assert geom.oxide_thickness == pytest.approx(0.4e-6)

    def test_explicit_oxide_thickness_is_kept(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6,
                                oxide_thickness=0.1e-6)
        assert geom.oxide_thickness == pytest.approx(0.1e-6)

    def test_rejects_empty_array(self):
        with pytest.raises(ValueError):
            TSVArrayGeometry(rows=0, cols=3, pitch=8e-6, radius=2e-6)

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ValueError):
            TSVArrayGeometry(rows=2, cols=2, pitch=-1.0, radius=2e-6)

    def test_rejects_overlapping_tsvs(self):
        # pitch smaller than two outer radii
        with pytest.raises(ValueError):
            TSVArrayGeometry(rows=2, cols=2, pitch=4e-6, radius=2e-6)

    def test_itrs_min_preset(self):
        geom = TSVArrayGeometry.itrs_min_2018(4, 4)
        assert geom.radius == constants.RADIUS_MIN_2018
        assert geom.pitch == constants.PITCH_MIN_2018

    def test_large_preset(self):
        geom = TSVArrayGeometry.large_2018(4, 4)
        assert geom.radius == constants.RADIUS_LARGE
        assert geom.pitch == constants.PITCH_LARGE


class TestIndexing:
    def test_row_major_index(self):
        geom = make(rows=3, cols=4)
        assert geom.index(0, 0) == 0
        assert geom.index(0, 3) == 3
        assert geom.index(1, 0) == 4
        assert geom.index(2, 3) == 11

    def test_row_col_roundtrip(self):
        geom = make(rows=3, cols=4)
        for i in range(geom.n_tsvs):
            assert geom.index(*geom.row_col(i)) == i

    def test_index_out_of_range(self):
        geom = make()
        with pytest.raises(IndexError):
            geom.index(3, 0)
        with pytest.raises(IndexError):
            geom.row_col(9)

    def test_positions_grid(self):
        geom = make(rows=2, cols=3, pitch=8e-6)
        pos = geom.positions()
        assert pos.shape == (6, 2)
        np.testing.assert_allclose(pos[0], [0.0, 0.0])
        np.testing.assert_allclose(pos[2], [16e-6, 0.0])
        np.testing.assert_allclose(pos[5], [16e-6, 8e-6])


class TestTopology:
    def test_position_classes_3x3(self):
        geom = make(rows=3, cols=3)
        classes = geom.position_classes()
        assert classes[0] == PositionClass.CORNER
        assert classes[1] == PositionClass.EDGE
        assert classes[4] == PositionClass.MIDDLE
        assert classes[8] == PositionClass.CORNER

    def test_class_counts_4x4(self):
        geom = make(rows=4, cols=4)
        classes = geom.position_classes()
        assert sum(c == PositionClass.CORNER for c in classes) == 4
        assert sum(c == PositionClass.EDGE for c in classes) == 8
        assert sum(c == PositionClass.MIDDLE for c in classes) == 4

    def test_single_row_has_no_middle(self):
        geom = TSVArrayGeometry(rows=1, cols=5, pitch=8e-6, radius=2e-6)
        classes = geom.position_classes()
        assert classes[0] == PositionClass.CORNER
        assert classes[4] == PositionClass.CORNER
        assert all(c != PositionClass.MIDDLE for c in classes)

    def test_direct_neighbors_center(self):
        geom = make(rows=3, cols=3)
        assert sorted(geom.direct_neighbors(4)) == [1, 3, 5, 7]

    def test_direct_neighbors_corner(self):
        geom = make(rows=3, cols=3)
        assert sorted(geom.direct_neighbors(0)) == [1, 3]

    def test_diagonal_neighbors_center(self):
        geom = make(rows=3, cols=3)
        assert sorted(geom.diagonal_neighbors(4)) == [0, 2, 6, 8]

    def test_middle_tsv_has_eight_neighbors(self):
        geom = make(rows=3, cols=3)
        assert len(geom.neighbors(4)) == 8

    def test_corner_tsv_has_three_neighbors(self):
        geom = make(rows=3, cols=3)
        assert len(geom.neighbors(0)) == 3

    def test_distances(self):
        geom = make(rows=3, cols=3, pitch=8e-6)
        assert geom.distance(0, 1) == pytest.approx(8e-6)
        assert geom.distance(0, 4) == pytest.approx(8e-6 * math.sqrt(2))
        assert geom.distance(0, 8) == pytest.approx(16e-6 * math.sqrt(2))

    def test_iter_pairs_count(self):
        geom = make(rows=3, cols=3)
        pairs = list(geom.iter_pairs())
        assert len(pairs) == 9 * 8 // 2
        assert all(i < j for i, j in pairs)


@given(rows=st.integers(1, 6), cols=st.integers(1, 6))
def test_neighbor_symmetry(rows, cols):
    """j is a neighbour of i iff i is a neighbour of j, for all pairs."""
    geom = TSVArrayGeometry(rows=rows, cols=cols, pitch=8e-6, radius=2e-6)
    for i in range(geom.n_tsvs):
        for j in geom.neighbors(i):
            assert i in geom.neighbors(j)


@given(rows=st.integers(2, 6), cols=st.integers(2, 6))
def test_neighbor_counts_by_class(rows, cols):
    """Corners have 3 neighbours, edges 5, middles 8 (for >=2x2 arrays)."""
    geom = TSVArrayGeometry(rows=rows, cols=cols, pitch=8e-6, radius=2e-6)
    expected = {PositionClass.CORNER: 3, PositionClass.EDGE: 5,
                PositionClass.MIDDLE: 8}
    for i in range(geom.n_tsvs):
        assert len(geom.neighbors(i)) == expected[geom.position_class(i)]


@given(rows=st.integers(1, 5), cols=st.integers(1, 5))
def test_cache_key_stable_and_distinct(rows, cols):
    geom1 = TSVArrayGeometry(rows=rows, cols=cols, pitch=8e-6, radius=2e-6)
    geom2 = TSVArrayGeometry(rows=rows, cols=cols, pitch=8e-6, radius=2e-6)
    assert geom1.cache_key() == geom2.cache_key()
    other = TSVArrayGeometry(rows=rows, cols=cols, pitch=9e-6, radius=2e-6)
    assert geom1.cache_key() != other.cache_key()
