"""Tests for the cylindrical MOS depletion model."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro import constants
from repro.tsv.depletion import DepletionModel, ExactPoissonSolver


@pytest.fixture(scope="module")
def model():
    return DepletionModel(radius=1e-6, oxide_thickness=0.2e-6)


class TestConstruction:
    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            DepletionModel(radius=0.0, oxide_thickness=0.2e-6)

    def test_rejects_bad_doping(self):
        with pytest.raises(ValueError):
            DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, doping=-1.0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, mode="bogus")

    def test_default_doping_matches_conductivity(self):
        m = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6)
        sigma = constants.Q_ELEMENTARY * constants.MU_P_SI * m.doping
        assert sigma == pytest.approx(constants.SIGMA_SI)


class TestFullDepletionWidth:
    def test_zero_below_flatband(self, model):
        assert model.width(model.v_flatband) == 0.0
        assert model.width(model.v_flatband - 0.5) == 0.0

    def test_monotonic_in_voltage(self, model):
        widths = [model.width(v) for v in (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b > a for a, b in zip(widths, widths[1:]))

    def test_plausible_magnitude(self, model):
        # Depletion width at Vdd for a ~1.4e15 cm^-3 substrate: a few 100 nm.
        w = model.width(1.0)
        assert 0.1e-6 < w < 2.0e-6

    def test_width_for_probability_bounds(self, model):
        with pytest.raises(ValueError):
            model.width_for_probability(-0.1)
        with pytest.raises(ValueError):
            model.width_for_probability(1.1)

    def test_width_for_probability_uses_average_voltage(self, model):
        assert model.width_for_probability(0.5) == pytest.approx(model.width(0.5))

    def test_pinned_mode_never_wider_than_deep(self):
        deep = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, mode="deep")
        pinned = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, mode="pinned")
        for v in (0.25, 0.5, 1.0, 2.0, 5.0):
            assert pinned.width(v) <= deep.width(v) + 1e-15

    def test_pinned_mode_saturates_at_high_voltage(self):
        pinned = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, mode="pinned")
        w5 = pinned.width(5.0)
        w10 = pinned.width(10.0)
        # Surface potential is clamped; only the oxide drop grows, and it
        # cannot add depletion charge without surface potential growth.
        assert (w10 - w5) / w5 < 0.35


class TestCapacitances:
    def test_oxide_capacitance_formula(self, model):
        expected = (2 * math.pi * constants.EPS_R_SIO2 * constants.EPS_0
                    / math.log(1.2e-6 / 1.0e-6))
        assert model.oxide_capacitance_per_length == pytest.approx(expected)

    def test_accumulation_gives_pure_oxide_cap(self):
        # With a positive flat-band voltage, 0 V on the TSV means
        # accumulation: no depletion barrier, pure liner capacitance.
        m = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6, v_flatband=0.1)
        c = m.mos_capacitance_per_length(0.0)
        assert c == pytest.approx(m.oxide_capacitance_per_length)

    def test_mos_effect_lowers_capacitance(self, model):
        c0 = model.mos_capacitance_per_length(0.0)
        c1 = model.mos_capacitance_per_length(1.0)
        assert c1 < c0
        # The paper quotes "up to 40 % lower capacitance values" [6].
        reduction = 1.0 - c1 / c0
        assert 0.1 < reduction < 0.5

    def test_mos_capacitance_monotone_in_probability(self, model):
        caps = [model.mos_capacitance_per_length(p) for p in
                (0.0, 0.25, 0.5, 0.75, 1.0)]
        assert all(b < a for a, b in zip(caps, caps[1:]))


class TestExactPoisson:
    @pytest.mark.parametrize("voltage", [0.25, 0.5, 1.0])
    def test_matches_full_depletion_approximation(self, model, voltage):
        solver = ExactPoissonSolver(model)
        w_exact = solver.depletion_width(voltage)
        w_approx = model.width(voltage)
        # The full-depletion approximation overestimates by up to about a
        # Debye length; both must agree within 35 %.
        assert w_exact == pytest.approx(w_approx, rel=0.35)
        assert w_exact <= w_approx + 1e-9

    def test_boundary_conditions(self, model):
        solver = ExactPoissonSolver(model)
        phi = solver.solve(1.0)
        assert phi[0] == pytest.approx(1.0 - model.v_flatband)
        assert phi[-1] == pytest.approx(0.0, abs=1e-9)

    def test_monotone_potential_profile(self, model):
        solver = ExactPoissonSolver(model)
        phi = solver.solve(1.0)
        # The potential decays monotonically from the metal into the bulk.
        assert (phi[1:] <= phi[:-1] + 1e-9).all()

    def test_no_depletion_in_accumulation(self, model):
        solver = ExactPoissonSolver(model)
        assert solver.depletion_width(model.v_flatband - 0.2) == 0.0


class TestTemperature:
    def test_intrinsic_density_scaling(self):
        # n_i roughly doubles every ~8 K near room temperature.
        n300 = constants.intrinsic_carrier_density(300.0)
        n308 = constants.intrinsic_carrier_density(308.0)
        assert 1.6 < n308 / n300 < 2.6
        assert n300 == pytest.approx(constants.N_INTRINSIC_SI)

    def test_thermal_voltage(self):
        assert constants.thermal_voltage(300.0) == pytest.approx(
            constants.V_THERMAL
        )
        with pytest.raises(ValueError):
            constants.thermal_voltage(0.0)
        with pytest.raises(ValueError):
            constants.intrinsic_carrier_density(-10.0)

    def test_rejects_bad_temperature(self):
        with pytest.raises(ValueError):
            DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                           temperature=0.0)

    def test_fermi_potential_falls_with_temperature(self):
        cold = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                              temperature=250.0)
        hot = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                             temperature=400.0)
        assert hot.fermi_potential < cold.fermi_potential

    def test_pinned_width_shrinks_when_hot(self):
        # Earlier inversion onset at high temperature caps the depletion
        # region sooner.
        cold = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                              mode="pinned", temperature=250.0)
        hot = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                             mode="pinned", temperature=400.0)
        assert hot.width(5.0) < cold.width(5.0)

    def test_deep_mode_width_is_temperature_insensitive(self):
        # Deep depletion has no inversion pinning; the full-depletion
        # balance itself is temperature-free.
        cold = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                              temperature=250.0)
        hot = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                             temperature=400.0)
        assert hot.width(1.0) == pytest.approx(cold.width(1.0))

    def test_exact_solver_uses_model_temperature(self):
        hot = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6,
                             temperature=400.0)
        solver = ExactPoissonSolver(hot)
        w = solver.depletion_width(1.0)
        assert 0.05e-6 < w < 1.0e-6


@settings(max_examples=20, deadline=None)
@given(voltage=st.floats(0.0, 1.5))
def test_width_continuous_in_voltage(voltage):
    """Small voltage changes produce small width changes (no jumps)."""
    model = DepletionModel(radius=1e-6, oxide_thickness=0.2e-6)
    w1 = model.width(voltage)
    w2 = model.width(voltage + 1e-4)
    assert abs(w2 - w1) < 5e-9


@settings(max_examples=10, deadline=None)
@given(radius=st.floats(0.5e-6, 3e-6))
def test_larger_radius_larger_mos_cap(radius):
    """Wider TSVs have more interface area, hence more capacitance."""
    small = DepletionModel(radius=radius, oxide_thickness=radius / 5.0)
    large = DepletionModel(radius=radius * 1.5, oxide_thickness=radius * 1.5 / 5.0)
    assert (large.mos_capacitance_per_length(0.5)
            > small.mos_capacitance_per_length(0.5))
