"""Tests for the FDM field-solver extraction.

These use a deliberately coarse resolution so the whole file runs in a few
seconds; the physics trends are resolution-robust.
"""

import math

import numpy as np
import pytest

from repro import constants
from repro.tsv.fdm import FDMFieldSolver, effective_silicon_permittivity
from repro.tsv.geometry import PositionClass, TSVArrayGeometry
from repro.tsv.matrices import asymmetry, total_capacitance

COARSE = 0.4e-6  # grid step [m] for test extractions


@pytest.fixture(scope="module")
def c33():
    geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    solver = FDMFieldSolver(geom, resolution=COARSE)
    return geom, solver.capacitance_matrix()


class TestEffectivePermittivity:
    def test_reduces_to_silicon_at_high_frequency(self):
        assert effective_silicon_permittivity(1e15) == pytest.approx(
            constants.EPS_R_SI, rel=1e-6
        )

    def test_grows_toward_low_frequency(self):
        assert (effective_silicon_permittivity(1e9)
                > effective_silicon_permittivity(10e9))

    def test_known_value_at_3ghz(self):
        # sigma/(omega eps0) ~ 60 at 3 GHz and 10 S/m.
        val = effective_silicon_permittivity(3e9)
        assert 55.0 < val < 70.0

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            effective_silicon_permittivity(0.0)


class TestValidation:
    def test_rejects_wrong_probability_count(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            FDMFieldSolver(geom, probabilities=[0.5, 0.5])

    def test_rejects_probability_out_of_range(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            FDMFieldSolver(geom, probabilities=[0.5, 0.5, 0.5, 1.5])

    def test_rejects_bad_supersample(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            FDMFieldSolver(geom, supersample=0)


class TestMatrixProperties:
    def test_symmetric(self, c33):
        _, c = c33
        assert asymmetry(c) < 1e-9  # symmetrized by construction

    def test_nonnegative_entries(self, c33):
        _, c = c33
        assert (c >= 0.0).all()

    def test_magnitude_tens_of_femtofarad(self, c33):
        # Modern 50 um TSVs have total capacitances of tens of fF.
        _, c = c33
        totals = total_capacitance(c)
        assert (totals > 5e-15).all()
        assert (totals < 200e-15).all()


class TestPaperTrends:
    """The four capacitance trends the assignment technique exploits."""

    def test_corner_edge_middle_total_ordering(self, c33):
        geom, c = c33
        totals = total_capacitance(c)
        corner = totals[geom.index(0, 0)]
        edge = totals[geom.index(0, 1)]
        middle = totals[geom.index(1, 1)]
        assert corner < edge < middle

    def test_corner_edge_coupling_is_largest(self, c33):
        geom, c = c33
        off = c.copy()
        np.fill_diagonal(off, 0.0)
        i, j = np.unravel_index(np.argmax(off), off.shape)
        classes = {geom.position_class(i), geom.position_class(j)}
        assert classes == {PositionClass.CORNER, PositionClass.EDGE}

    def test_direct_coupling_exceeds_diagonal(self, c33):
        geom, c = c33
        direct = c[geom.index(0, 0), geom.index(0, 1)]
        diagonal = c[geom.index(0, 0), geom.index(1, 1)]
        assert direct > 1.5 * diagonal

    def test_mos_effect_shrinks_capacitances(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        low = FDMFieldSolver(
            geom, resolution=COARSE, probabilities=np.zeros(4)
        ).capacitance_matrix()
        high = FDMFieldSolver(
            geom, resolution=COARSE, probabilities=np.ones(4)
        ).capacitance_matrix()
        assert total_capacitance(high)[0] < total_capacitance(low)[0]
        assert high[0, 1] < low[0, 1]

    def test_mos_effect_is_local(self):
        # Raising one TSV's probability must lower its couplings more than
        # the couplings between the other TSVs.
        geom = TSVArrayGeometry(rows=1, cols=3, pitch=8e-6, radius=2e-6)
        base = FDMFieldSolver(
            geom, resolution=COARSE, probabilities=[0.0, 0.0, 0.0]
        ).capacitance_matrix()
        bumped = FDMFieldSolver(
            geom, resolution=COARSE, probabilities=[1.0, 0.0, 0.0]
        ).capacitance_matrix()
        drop_01 = 1.0 - bumped[0, 1] / base[0, 1]
        drop_12 = 1.0 - bumped[1, 2] / base[1, 2]
        assert drop_01 > drop_12 + 0.01


class TestGeometryScaling:
    def test_wider_pitch_lowers_coupling_fraction(self):
        tight = TSVArrayGeometry(rows=1, cols=2, pitch=6e-6, radius=2e-6)
        wide = TSVArrayGeometry(rows=1, cols=2, pitch=12e-6, radius=2e-6)
        c_tight = FDMFieldSolver(tight, resolution=COARSE).capacitance_matrix()
        c_wide = FDMFieldSolver(wide, resolution=COARSE).capacitance_matrix()
        frac_tight = c_tight[0, 1] / total_capacitance(c_tight)[0]
        frac_wide = c_wide[0, 1] / total_capacitance(c_wide)[0]
        assert frac_wide < frac_tight

    def test_capacitance_scales_with_length(self):
        short = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6,
                                 length=25e-6)
        long = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6,
                                length=50e-6)
        c_short = FDMFieldSolver(short, resolution=COARSE).capacitance_matrix()
        c_long = FDMFieldSolver(long, resolution=COARSE).capacitance_matrix()
        np.testing.assert_allclose(c_long, 2.0 * c_short, rtol=1e-9)
