"""Tests for the compact E-field-sharing capacitance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tsv.arraycap import (
    DEFAULT_PARAMETERS,
    CompactCapacitanceModel,
    SharingParameters,
    calibrate,
)
from repro.tsv.geometry import PositionClass, TSVArrayGeometry
from repro.tsv.matrices import asymmetry, total_capacitance


@pytest.fixture(scope="module")
def model33():
    geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    return geom, CompactCapacitanceModel(geom)


class TestParameters:
    def test_roundtrip(self):
        params = SharingParameters(2.0, 0.5, 0.6, 0.7, 0.8)
        again = SharingParameters.from_array(params.as_array())
        assert again == params


class TestValidation:
    def test_rejects_wrong_probability_count(self, model33):
        _, model = model33
        with pytest.raises(ValueError):
            model.capacitance_matrix([0.5] * 4)

    def test_rejects_out_of_range_probability(self, model33):
        _, model = model33
        with pytest.raises(ValueError):
            model.capacitance_matrix([0.5] * 8 + [2.0])


class TestStructure:
    def test_symmetric_nonnegative(self, model33):
        _, model = model33
        c = model.capacitance_matrix()
        assert asymmetry(c) < 1e-12
        assert (c >= 0.0).all()

    def test_corner_edge_middle_total_ordering(self, model33):
        geom, model = model33
        totals = total_capacitance(model.capacitance_matrix())
        assert totals[geom.index(0, 0)] < totals[geom.index(0, 1)]
        assert totals[geom.index(0, 1)] < totals[geom.index(1, 1)]

    def test_corner_edge_coupling_largest(self, model33):
        geom, model = model33
        c = model.capacitance_matrix()
        off = c.copy()
        np.fill_diagonal(off, 0.0)
        i, j = np.unravel_index(np.argmax(off), off.shape)
        classes = {geom.position_class(i), geom.position_class(j)}
        assert classes == {PositionClass.CORNER, PositionClass.EDGE}

    def test_direct_exceeds_diagonal_coupling(self, model33):
        geom, model = model33
        c = model.capacitance_matrix()
        assert (c[geom.index(0, 0), geom.index(0, 1)]
                > c[geom.index(0, 0), geom.index(1, 1)])

    def test_mos_effect(self, model33):
        geom, model = model33
        n = geom.n_tsvs
        c0 = model.capacitance_matrix(np.zeros(n))
        c1 = model.capacitance_matrix(np.ones(n))
        assert (total_capacitance(c1) < total_capacitance(c0)).all()


class TestAgainstFDM:
    """The compact model must track the reference extractor."""

    @pytest.mark.parametrize("rows,cols,pitch,radius", [
        (3, 3, 8e-6, 2e-6),
        (3, 3, 4e-6, 1e-6),
    ])
    def test_frobenius_error_bounded(self, rows, cols, pitch, radius):
        from repro.tsv.fdm import FDMFieldSolver

        geom = TSVArrayGeometry(rows=rows, cols=cols, pitch=pitch, radius=radius)
        ref = FDMFieldSolver(
            geom, resolution=geom.oxide_thickness
        ).capacitance_matrix()
        c = CompactCapacitanceModel(geom).capacitance_matrix()
        err = np.linalg.norm(c - ref) / np.linalg.norm(ref)
        assert err < 0.25


class TestCalibrate:
    def test_requires_reference(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            calibrate([geom])

    def test_requires_matching_lengths(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            calibrate([geom], reference_matrices=[])

    def test_recovers_own_parameters(self):
        # Calibrating against matrices the model itself produced must give
        # back (numerically) the generating parameters.
        geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
        truth = SharingParameters(2.4, 0.6, 0.7, 0.55, 0.7)
        ref = CompactCapacitanceModel(geom, parameters=truth).capacitance_matrix()
        fitted = calibrate([geom], reference_matrices=[ref], initial=DEFAULT_PARAMETERS)
        c_fit = CompactCapacitanceModel(geom, parameters=fitted).capacitance_matrix()
        np.testing.assert_allclose(c_fit, ref, rtol=1e-3)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.floats(0.0, 1.0), min_size=9, max_size=9))
def test_probability_monotonicity(probs):
    """Raising any TSV's probability never increases any capacitance."""
    geom = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)
    model = CompactCapacitanceModel(geom)
    base = model.capacitance_matrix(probs)
    bumped_probs = list(probs)
    bumped_probs[4] = min(1.0, bumped_probs[4] + 0.3)
    bumped = model.capacitance_matrix(bumped_probs)
    assert (bumped <= base + 1e-25).all()
