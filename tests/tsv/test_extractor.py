"""Tests for the extraction front-end (method selection and caching)."""

import numpy as np
import pytest

from repro.tsv.capmodel import LinearCapacitanceModel, epsilon_from_probabilities
from repro.tsv.extractor import CACHE_ENV_VAR, CapacitanceExtractor, default_cache_dir
from repro.tsv.geometry import TSVArrayGeometry


@pytest.fixture()
def geom():
    return TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)


class TestCacheDir:
    def test_env_var_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path))
        assert default_cache_dir() == tmp_path

    def test_env_var_empty_disables(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "")
        assert default_cache_dir() is None


class TestExtractor:
    def test_rejects_unknown_method(self, geom):
        with pytest.raises(ValueError):
            CapacitanceExtractor(geom, method="spice")

    def test_rejects_wrong_probability_count(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        with pytest.raises(ValueError):
            ex.extract([0.5, 0.5])

    def test_default_probabilities_are_balanced(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        np.testing.assert_allclose(ex.extract(), ex.extract([0.5] * 4))

    def test_compact_matches_compact_model(self, geom):
        from repro.tsv.arraycap import CompactCapacitanceModel

        ex = CapacitanceExtractor(geom, method="compact")
        direct = CompactCapacitanceModel(geom).capacitance_matrix()
        np.testing.assert_allclose(ex.extract(), direct)

    def test_returned_matrix_is_a_copy(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        first = ex.extract()
        first[0, 0] = -1.0
        second = ex.extract()
        assert second[0, 0] != -1.0  # repro: noqa[REP004] sentinel must not leak from cache

    def test_memory_cache_hit(self, geom, tmp_path):
        ex = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                  cache_dir=tmp_path)
        first = ex.extract()
        assert len(ex._memory_cache) == 1
        second = ex.extract()
        np.testing.assert_allclose(first, second)
        assert len(ex._memory_cache) == 1

    def test_disk_cache_round_trip(self, geom, tmp_path):
        ex1 = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                   cache_dir=tmp_path)
        first = ex1.extract()
        files = list(tmp_path.glob("cap_*.npz"))
        assert len(files) == 1
        ex2 = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                   cache_dir=tmp_path)
        second = ex2.extract()
        np.testing.assert_allclose(first, second)

    def test_corrupt_disk_cache_recomputed(self, geom, tmp_path):
        ex = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                  cache_dir=tmp_path)
        reference = ex.extract()
        cache_file = next(tmp_path.glob("cap_*.npz"))
        cache_file.write_bytes(b"garbage, not a numpy file")
        fresh = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                     cache_dir=tmp_path)
        np.testing.assert_allclose(fresh.extract(), reference)

    def test_wrong_shape_cache_discarded(self, geom, tmp_path):
        ex = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                  cache_dir=tmp_path)
        reference = ex.extract()
        cache_file = next(tmp_path.glob("cap_*.npz"))
        bad = np.ones((2, 3))
        ex._store_cached(cache_file, bad)  # valid bundle, wrong shape
        fresh = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                     cache_dir=tmp_path)
        np.testing.assert_allclose(fresh.extract(), reference)

    def test_distinct_probabilities_get_distinct_entries(self, geom, tmp_path):
        ex = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                  cache_dir=tmp_path)
        ex.extract(np.zeros(4))
        ex.extract(np.ones(4))
        assert len(ex._memory_cache) == 2


class TestLinearCapacitanceModel:
    def test_epsilon_shift(self):
        np.testing.assert_allclose(
            epsilon_from_probabilities([0.0, 0.5, 1.0]), [-0.5, 0.0, 0.5]
        )

    def test_epsilon_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            epsilon_from_probabilities([1.5])

    def test_rejects_mismatched_matrices(self):
        with pytest.raises(ValueError):
            LinearCapacitanceModel(np.ones((2, 2)), np.ones((3, 3)))

    def test_fit_reproduces_anchor_points(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        model = LinearCapacitanceModel.fit(ex)
        np.testing.assert_allclose(
            model.matrix([0.0] * 4), ex.extract([0.0] * 4), rtol=1e-12
        )
        np.testing.assert_allclose(
            model.matrix([1.0] * 4), ex.extract([1.0] * 4), rtol=1e-12
        )

    def test_default_matrix_is_balanced(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        model = LinearCapacitanceModel.fit(ex)
        np.testing.assert_allclose(model.matrix(), model.c_r)

    def test_nrmse_below_paper_bound(self, geom):
        # The paper (citing [6]) quotes < 2 % NRMSE for the linear model.
        ex = CapacitanceExtractor(geom, method="compact")
        model = LinearCapacitanceModel.fit(ex)
        rng = np.random.default_rng(42)
        for _ in range(5):
            probs = rng.uniform(0.0, 1.0, 4)
            assert model.nrmse(ex, probs) < 0.02

    def test_nrmse_against_fdm(self, geom, tmp_path):
        # At this deliberately coarse test resolution the depletion-annulus
        # rasterization noise dominates; production resolutions reach ~1 %
        # (see EXPERIMENTS.md).
        ex = CapacitanceExtractor(geom, method="fdm", resolution=0.5e-6,
                                  cache_dir=tmp_path)
        model = LinearCapacitanceModel.fit(ex)
        assert model.nrmse(ex, [0.25, 0.75, 0.5, 0.1]) < 0.08

    def test_probe_fit_beats_two_point_fit(self):
        # On small TSVs (strong MOS nonlinearity) the multi-probe regression
        # must reduce the residual of the exact two-anchor fit.
        geometry = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)
        ex = CapacitanceExtractor(geometry, method="compact")
        two_point = LinearCapacitanceModel.fit(ex)
        regression = LinearCapacitanceModel.fit(
            ex, n_probes=8, rng=np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        checks = [rng.uniform(0.0, 1.0, 9) for _ in range(6)]
        err_two = np.mean([two_point.nrmse(ex, p) for p in checks])
        err_reg = np.mean([regression.nrmse(ex, p) for p in checks])
        assert err_reg < err_two
        assert err_reg < 0.02  # the paper's bound

    def test_probe_fit_with_zero_probes_matches_two_point(self, geom):
        ex = CapacitanceExtractor(geom, method="compact")
        a = LinearCapacitanceModel.fit(ex)
        b = LinearCapacitanceModel.fit(ex, n_probes=0)
        np.testing.assert_allclose(a.c_r, b.c_r, rtol=1e-9)
        np.testing.assert_allclose(a.delta_c, b.delta_c, rtol=1e-9)

    def test_techfile_roundtrip(self, geom, tmp_path):
        ex = CapacitanceExtractor(geom, method="compact")
        model = LinearCapacitanceModel.fit(ex)
        path = tmp_path / "array.npz"
        model.save(path)
        loaded = LinearCapacitanceModel.load(path)
        np.testing.assert_allclose(loaded.c_r, model.c_r)
        np.testing.assert_allclose(loaded.delta_c, model.delta_c)
        probs = [0.1, 0.9, 0.5, 0.3]
        np.testing.assert_allclose(loaded.matrix(probs), model.matrix(probs))

    def test_techfile_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a techfile")
        with pytest.raises(ValueError):
            LinearCapacitanceModel.load(path)

    def test_techfile_rejects_missing_fields(self, tmp_path):
        path = tmp_path / "incomplete.npz"
        np.savez(path, c_r=np.eye(2))
        with pytest.raises(ValueError):
            LinearCapacitanceModel.load(path)

    def test_inversion_is_sign_flip(self, geom):
        # C(p) with bit i inverted equals the Eq. 9 algebra with -eps_i.
        ex = CapacitanceExtractor(geom, method="compact")
        model = LinearCapacitanceModel.fit(ex)
        probs = np.array([0.9, 0.3, 0.5, 0.7])
        inverted = probs.copy()
        inverted[0] = 1.0 - inverted[0]
        eps = epsilon_from_probabilities(probs)
        eps_inv = eps.copy()
        eps_inv[0] = -eps_inv[0]
        direct = model.matrix(inverted)
        algebra = model.c_r + model.delta_c * (
            eps_inv[:, None] + eps_inv[None, :]
        )
        np.testing.assert_allclose(direct, algebra, rtol=1e-12)
