"""Tests for the AC (phasor) solver."""

import math

import numpy as np
import pytest

from repro.circuit.ac import ACSolver
from repro.circuit.driver import DriverModel
from repro.circuit.netlist import Netlist
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.rlc import build_array_netlist


def rc_lowpass(r=1e3, c=1e-12):
    net = Netlist()
    net.voltage_source("in", 0, 1.0, name="src")
    net.resistor("in", "out", r)
    net.capacitor("out", 0, c)
    return net


class TestBasics:
    def test_dc_gain_is_unity(self):
        res = ACSolver(rc_lowpass()).sweep(np.array([1.0]))
        assert abs(res.voltage("out")[0]) == pytest.approx(1.0, rel=1e-6)

    def test_pole_frequency(self):
        r, c = 1e3, 1e-12
        pole = 1.0 / (2.0 * math.pi * r * c)
        res = ACSolver(rc_lowpass(r, c)).sweep(np.array([pole]))
        # At the pole the magnitude is 1/sqrt(2).
        assert abs(res.voltage("out")[0]) == pytest.approx(
            1.0 / math.sqrt(2.0), rel=1e-6
        )

    def test_bandwidth_matches_theory(self):
        r, c = 2e3, 0.5e-12
        pole = 1.0 / (2.0 * math.pi * r * c)
        freqs = np.logspace(math.log10(pole) - 2, math.log10(pole) + 2, 2000)
        res = ACSolver(rc_lowpass(r, c)).sweep(freqs)
        assert res.bandwidth_3db("out") == pytest.approx(pole, rel=0.01)

    def test_bandwidth_inf_when_flat(self):
        net = Netlist()
        net.voltage_source("in", 0, 1.0, name="src")
        net.resistor("in", "out", 1.0)
        net.resistor("out", 0, 1e9)
        res = ACSolver(net).sweep(np.logspace(3, 6, 10))
        assert res.bandwidth_3db("out") == float("inf")

    def test_input_impedance_of_rc(self):
        r, c = 1e3, 1e-12
        res = ACSolver(rc_lowpass(r, c)).sweep(np.array([1e3]))
        z = res.input_impedance("src")[0]
        # At 1 kHz the capacitor is ~160 MOhm: Z ~ R + 1/(jwC).
        expected = r + 1.0 / (1j * 2.0 * math.pi * 1e3 * c)
        assert z == pytest.approx(expected, rel=1e-3)

    def test_rlc_resonance_peak(self):
        net = Netlist()
        net.voltage_source("in", 0, 1.0, name="src")
        net.resistor("in", "a", 5.0)
        net.inductor("a", "out", 1e-9)
        net.capacitor("out", 0, 1e-12)
        f0 = 1.0 / (2.0 * math.pi * math.sqrt(1e-9 * 1e-12))
        res = ACSolver(net).sweep(np.array([f0 / 10.0, f0]))
        assert abs(res.voltage("out")[1]) > 2.0 * abs(res.voltage("out")[0])

    def test_sweep_validation(self):
        solver = ACSolver(rc_lowpass())
        with pytest.raises(ValueError):
            solver.sweep(np.array([]))
        with pytest.raises(ValueError):
            solver.sweep(np.array([-1.0]))

    def test_missing_source(self):
        res = ACSolver(rc_lowpass()).sweep(np.array([1e6]))
        with pytest.raises(KeyError):
            res.source_current("nope")


class TestPiLadderConvergence:
    """The ablation behind the paper's 3pi choice."""

    @pytest.fixture(scope="class")
    def setup(self):
        geometry = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)
        cap = CapacitanceExtractor(geometry, method="compact").extract()
        bits = np.array([[1, 0]], dtype=np.uint8)
        driver = DriverModel()

        def response(n_segments, freqs):
            net = build_array_netlist(
                geometry, cap, bits, driver, 1e-9, n_segments=n_segments
            )
            res = ACSolver(net).sweep(freqs)
            return np.abs(res.voltage(("tsv", 0, n_segments)))

        return response

    def test_all_models_agree_at_clock_frequency(self, setup):
        freqs = np.array([3e9])
        h1 = setup(1, freqs)[0]
        h3 = setup(3, freqs)[0]
        h5 = setup(5, freqs)[0]
        assert h1 == pytest.approx(h3, rel=0.01)
        assert h3 == pytest.approx(h5, rel=0.01)

    def test_three_pi_converged_where_one_pi_is_not(self, setup):
        freqs = np.array([300e9])
        h1 = setup(1, freqs)[0]
        h3 = setup(3, freqs)[0]
        h5 = setup(5, freqs)[0]
        assert h3 == pytest.approx(h5, rel=0.1)       # 3pi ~ converged
        assert abs(h1 - h5) > 3.0 * abs(h3 - h5)       # 1pi is not
