"""Tests for the MNA assembly and the trapezoidal transient engine."""

import math

import numpy as np
import pytest

from repro.circuit.mna import assemble
from repro.circuit.netlist import Netlist
from repro.circuit.transient import TransientSolver


def step(level=1.0, at=0.0):
    return lambda t: level if t >= at else 0.0


class TestNetlist:
    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            Netlist().validate()

    def test_validate_rejects_floating(self):
        net = Netlist()
        net.resistor("a", "b", 1.0)
        with pytest.raises(ValueError):
            net.validate()

    def test_component_value_checks(self):
        net = Netlist()
        with pytest.raises(ValueError):
            net.resistor("a", 0, -1.0)
        with pytest.raises(ValueError):
            net.capacitor("a", 0, 0.0)
        with pytest.raises(ValueError):
            net.inductor("a", 0, -2.0)

    def test_nodes_order_and_ground_excluded(self):
        net = Netlist()
        net.resistor("x", 0, 1.0)
        net.resistor("x", "y", 1.0)
        assert net.nodes() == ["x", "y"]

    def test_source_by_name(self):
        net = Netlist()
        src = net.voltage_source("a", 0, 1.0, name="vdd_a")
        assert net.source_by_name("vdd_a") is src
        assert net.source_by_name("nope") is None


class TestMNA:
    def test_resistive_divider_dc(self):
        net = Netlist()
        net.voltage_source("in", 0, 2.0, name="src")
        net.resistor("in", "mid", 1.0e3)
        net.resistor("mid", 0, 1.0e3)
        solver = TransientSolver(net, timestep=1e-9)
        x = solver.dc_operating_point()
        system = assemble(net)
        assert x[system.voltage_index("mid")] == pytest.approx(1.0, rel=1e-6)

    def test_voltage_index_rejects_ground(self):
        net = Netlist()
        net.voltage_source("a", 0, 1.0)
        net.resistor("a", 0, 1.0)
        system = assemble(net)
        with pytest.raises(ValueError):
            system.voltage_index(0)


class TestTransient:
    def test_rc_charging_curve(self):
        r, c = 1.0e3, 1.0e-12
        net = Netlist()
        net.voltage_source("in", 0, step(1.0, at=1e-12), name="src")
        net.resistor("in", "out", r)
        net.capacitor("out", 0, c)
        solver = TransientSolver(net, timestep=1e-12)
        result = solver.run(1.2e-8)
        tau = r * c
        k = np.searchsorted(result.time, 1e-12 + tau)
        v_at_tau = result.voltage("out")[k]
        assert v_at_tau == pytest.approx(1.0 - math.exp(-1.0), abs=0.02)
        assert result.voltage("out")[-1] == pytest.approx(1.0, abs=1e-3)

    def test_rc_supply_energy_is_cv2(self):
        net = Netlist()
        net.voltage_source("in", 0, step(1.0, at=1e-12), name="vdd_src")
        net.resistor("in", "out", 1.0e3)
        net.capacitor("out", 0, 1.0e-12)
        solver = TransientSolver(net, timestep=1e-12)
        result = solver.run(2e-8)
        assert result.source_energy("vdd_src") == pytest.approx(1e-12, rel=0.01)
        assert result.total_supply_energy("vdd") == pytest.approx(1e-12, rel=0.01)

    def test_rlc_resonance_ringing(self):
        # Underdamped series RLC must overshoot the step.
        net = Netlist()
        net.voltage_source("in", 0, step(1.0, at=1e-12), name="src")
        net.resistor("in", "a", 10.0)
        net.inductor("a", "out", 1e-9)
        net.capacitor("out", 0, 1e-12)
        solver = TransientSolver(net, timestep=2e-13)
        result = solver.run(2e-8)
        vout = result.voltage("out")
        assert vout.max() > 1.2
        assert vout[-1] == pytest.approx(1.0, abs=0.02)

    def test_coupling_capacitor_transfers_glitch(self):
        # A step on the aggressor must couple onto the floating-ish victim.
        net = Netlist()
        net.voltage_source("in", 0, step(1.0, at=1e-11), name="src")
        net.resistor("in", "agg", 100.0)
        net.capacitor("agg", "vic", 1e-12)
        net.resistor("vic", 0, 10e3)
        solver = TransientSolver(net, timestep=1e-12)
        result = solver.run(1e-8)
        assert result.voltage("vic").max() > 0.3

    def test_current_source(self):
        net = Netlist()
        net.current_source("out", 0, 1e-3)
        net.resistor("out", 0, 1.0e3)
        solver = TransientSolver(net, timestep=1e-10)
        x = solver.dc_operating_point()
        system = assemble(net)
        assert x[system.voltage_index("out")] == pytest.approx(1.0, rel=1e-6)

    def test_validation(self):
        net = Netlist()
        net.voltage_source("a", 0, 1.0)
        net.resistor("a", 0, 1.0)
        with pytest.raises(ValueError):
            TransientSolver(net, timestep=-1.0)
        solver = TransientSolver(net, timestep=1e-12)
        with pytest.raises(ValueError):
            solver.run(0.0)
        with pytest.raises(ValueError):
            solver.run(1e-9, initial_state=np.zeros(99))

    def test_missing_source_name(self):
        net = Netlist()
        net.voltage_source("a", 0, 1.0, name="src")
        net.resistor("a", 0, 1.0)
        result = TransientSolver(net, timestep=1e-12).run(1e-11)
        with pytest.raises(KeyError):
            result.source_current("other")
