"""Tests for the driver model and the event-based energy model, including
the cross-validation against the transient engine."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuit.driver import DriverModel
from repro.circuit.energy import EnergyModel
from repro.circuit.transient import TransientSolver
from repro.core.power import normalized_power
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.rlc import build_array_netlist, tsv_inductance, tsv_resistance


class TestDriverModel:
    def test_scaling_with_strength(self):
        weak = DriverModel(strength=1.0)
        strong = DriverModel(strength=6.0)
        assert strong.on_resistance == pytest.approx(weak.on_resistance / 6.0)
        assert strong.input_capacitance == pytest.approx(
            6.0 * weak.input_capacitance
        )
        assert strong.leakage_current == pytest.approx(
            6.0 * weak.leakage_current
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DriverModel(strength=0.0)
        with pytest.raises(ValueError):
            DriverModel(rise_time=0.0)

    def test_inverting_output_levels(self):
        bits = np.array([0, 1, 1, 0])
        plain = DriverModel().output_levels(bits)
        inv = DriverModel(inverting=True).output_levels(bits)
        np.testing.assert_allclose(plain + inv, 1.0)

    def test_waveform_holds_and_ramps(self):
        drv = DriverModel(rise_time=10e-12)
        wave = drv.waveform(np.array([0, 1]), cycle_time=100e-12)
        assert wave(0.0) == 0.0
        assert wave(99e-12) == 0.0
        assert 0.0 < wave(105e-12) < 1.0
        assert wave(150e-12) == 1.0  # repro: noqa[REP004] exact hold level
        assert wave(1e-9) == 1.0  # repro: noqa[REP004] past the stream: hold last level

    def test_waveform_rejects_short_cycle(self):
        drv = DriverModel(rise_time=10e-12)
        with pytest.raises(ValueError):
            drv.waveform(np.array([0, 1]), cycle_time=5e-12)


class TestEnergyModel:
    def test_single_line_rise_costs_cv2(self):
        c = np.array([[1e-15]])
        model = EnergyModel(c)
        bits = np.array([[0], [1], [1], [0]], dtype=np.uint8)
        energies = model.cycle_energies(bits)
        # rise: C V^2; hold: 0; fall: 0 (ground rail does no work).
        np.testing.assert_allclose(energies, [1e-15, 0.0, 0.0])

    def test_opposite_toggle_costs_2cv2(self):
        c = np.zeros((2, 2))
        c[0, 1] = c[1, 0] = 1e-15
        model = EnergyModel(c)
        bits = np.array([[0, 1], [1, 0]], dtype=np.uint8)
        np.testing.assert_allclose(model.cycle_energies(bits), [2e-15])

    def test_common_mode_toggle_is_free(self):
        c = np.zeros((2, 2))
        c[0, 1] = c[1, 0] = 1e-15
        model = EnergyModel(c)
        bits = np.array([[0, 0], [1, 1]], dtype=np.uint8)
        np.testing.assert_allclose(model.cycle_energies(bits), [0.0])

    def test_energy_recovery_can_be_negative(self):
        # Victim holds 1 while aggressor rises: coupling charge returns to
        # the victim's rail.
        c = np.zeros((2, 2))
        c[0, 1] = c[1, 0] = 1e-15
        model = EnergyModel(c)
        bits = np.array([[0, 1], [1, 1]], dtype=np.uint8)
        energies = model.cycle_energies(bits)
        assert len(energies) == 1
        # Aggressor pays CV^2, victim recovers CV^2: net zero.
        np.testing.assert_allclose(energies, [0.0], atol=1e-30)

    def test_mean_power_includes_leakage(self):
        c = np.array([[1e-15]])
        drv = DriverModel()
        model = EnergyModel(c, driver=drv)
        bits = np.zeros((10, 1), dtype=np.uint8)
        power = model.mean_power(bits, frequency=1e9)
        assert power == pytest.approx(model.leakage_power())
        assert model.leakage_power() == pytest.approx(
            drv.leakage_current * 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyModel(np.zeros((2, 3)))
        model = EnergyModel(np.eye(2) * 1e-15)
        with pytest.raises(ValueError):
            model.cycle_energies(np.zeros((5, 3), dtype=np.uint8))
        with pytest.raises(ValueError):
            model.mean_power(np.zeros((5, 2), dtype=np.uint8), frequency=0.0)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.integers(0, 2**31 - 1))
def test_event_model_equals_t_c_product(n, seed):
    """The stream-mean event energy must reproduce P_n = <T, C> up to the
    stored-energy boundary term (O(1/samples))."""
    rng = np.random.default_rng(seed)
    c = rng.uniform(0.1, 1.0, (n, n))
    c = (c + c.T) / 2.0
    bits = (rng.random((3000, n)) < rng.uniform(0.3, 0.7, n)).astype(np.uint8)
    event = EnergyModel(c).normalized_power(bits)
    model = normalized_power(BitStatistics.from_stream(bits), c)
    assert event == pytest.approx(model, rel=5e-3, abs=1e-3)


class TestRLCExtraction:
    @pytest.fixture(scope="class")
    def geom(self):
        return TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)

    def test_resistance_magnitude(self, geom):
        # 50 um copper cylinder of 2 um radius: tens of milliohm.
        r = tsv_resistance(geom)
        assert 0.01 < r < 1.0

    def test_inductance_magnitude(self, geom):
        l = tsv_inductance(geom)
        assert 10e-12 < l < 100e-12

    def test_netlist_validation(self, geom):
        cap = CapacitanceExtractor(geom, method="compact").extract()
        bits = np.zeros((4, 2), dtype=np.uint8)
        with pytest.raises(ValueError):
            build_array_netlist(geom, np.eye(3), bits, DriverModel(), 1e-9)
        with pytest.raises(ValueError):
            build_array_netlist(geom, cap, bits[:, :1], DriverModel(), 1e-9)
        with pytest.raises(ValueError):
            build_array_netlist(geom, cap, bits, DriverModel(), 1e-9,
                                n_segments=0)
        with pytest.raises(ValueError):
            build_array_netlist(geom, cap, bits, DriverModel(), 1e-9,
                                inverted=[True])

    def test_transient_validates_event_model(self, geom):
        """Full driver + 3pi-RLC transient run against the event-based
        energy, with a near-ideal (fast) driver ramp. This is the in-repo
        equivalent of the paper's Spectre cross-check."""
        cap = CapacitanceExtractor(geom, method="compact").extract()
        rng = np.random.default_rng(7)
        bits = (rng.random((24, 2)) < 0.5).astype(np.uint8)
        cycle = 1.0 / 3e9
        driver = DriverModel(rise_time=1e-12, unit_input_capacitance=0.0)
        netlist = build_array_netlist(
            geom, cap, bits, driver, cycle, receiver_capacitance=1e-18
        )
        solver = TransientSolver(netlist, timestep=cycle / 2000)
        result = solver.run(len(bits) * cycle)
        e_transient = result.total_supply_energy()
        e_event = EnergyModel(cap, driver=driver).cycle_energies(bits).sum()
        assert e_transient == pytest.approx(e_event, rel=0.03)

    def test_inverting_drivers_flip_the_wire_data(self, geom):
        cap = CapacitanceExtractor(geom, method="compact").extract()
        bits = np.array([[1, 0]] * 4, dtype=np.uint8)
        cycle = 1.0 / 1e9
        netlist = build_array_netlist(
            geom, cap, bits, DriverModel(), cycle, inverted=[True, False]
        )
        solver = TransientSolver(netlist, timestep=cycle / 100)
        result = solver.run(len(bits) * cycle)
        v0 = result.voltage(("tsv", 0, 3))[-1]  # far end of line 0
        v1 = result.voltage(("tsv", 1, 3))[-1]
        assert v0 == pytest.approx(0.0, abs=0.05)  # bit 1 inverted -> low
        assert v1 == pytest.approx(0.0, abs=0.05)
