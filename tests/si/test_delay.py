"""Tests for the effective-capacitance / Elmore delay analysis."""

import numpy as np
import pytest

from repro.si.delay import (
    effective_capacitance,
    elmore_delay,
    worst_case_delay,
    worst_case_delay_pattern,
)
from repro.tsv.geometry import TSVArrayGeometry


def cap_2(coupling=1e-15, ground=2e-15):
    return np.array([[ground, coupling], [coupling, ground]])


class TestEffectiveCapacitance:
    def test_miller_classes(self):
        c = cap_2()
        # Victim rises alone (aggressor quiet): 1x coupling.
        alone = effective_capacitance(c, np.array([1.0, 0.0]))
        assert alone[0] == pytest.approx(2e-15 + 1e-15)
        assert alone[1] == 0.0
        # Both rise together: coupling cancels (0x).
        together = effective_capacitance(c, np.array([1.0, 1.0]))
        assert together[0] == pytest.approx(2e-15)
        # Anti-parallel: 2x coupling.
        opposite = effective_capacitance(c, np.array([1.0, -1.0]))
        assert opposite[0] == pytest.approx(2e-15 + 2e-15)

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            effective_capacitance(np.eye(2), np.zeros(3))

    def test_worst_pattern(self):
        deltas = worst_case_delay_pattern(np.eye(3), 1)
        np.testing.assert_allclose(deltas, [-1.0, 1.0, -1.0])


class TestElmore:
    def test_positive_and_monotone(self):
        geom = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)
        d1 = elmore_delay(geom, 10e-15, driver_resistance=1e3)
        d2 = elmore_delay(geom, 20e-15, driver_resistance=1e3)
        assert 0.0 < d1 < d2

    def test_validation(self):
        geom = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)
        with pytest.raises(ValueError):
            elmore_delay(geom, -1.0, 1e3)
        with pytest.raises(ValueError):
            elmore_delay(geom, 1e-15, 0.0)

    def test_worst_case_delay_exceeds_isolated(self):
        geom = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
        from repro.tsv.extractor import CapacitanceExtractor

        cap = CapacitanceExtractor(geom, method="compact").extract()
        worst = worst_case_delay(geom, cap, driver_resistance=1.5e3)
        quiet = elmore_delay(
            geom,
            effective_capacitance(cap, np.array([1.0, 0, 0, 0]))[0],
            driver_resistance=1.5e3,
        )
        assert worst > quiet
        # Sub-nanosecond for these tiny loads.
        assert worst < 1e-9
