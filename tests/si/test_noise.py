"""Tests for the crosstalk-noise analysis."""

import numpy as np
import pytest

from repro.circuit.netlist import Netlist
from repro.circuit.transient import TransientSolver
from repro.si.noise import (
    stream_noise_statistics,
    victim_noise,
    worst_case_noise,
)


def two_line_cap(coupling=2e-15, ground=1e-15):
    c = np.array([[ground, coupling], [coupling, ground]])
    return c


class TestVictimNoise:
    def test_capacitive_divider(self):
        c = two_line_cap()
        noise = victim_noise(c, np.array([1.0, 0.0]))
        # Victim (line 1): C_c / (C_c + C_g) = 2/3.
        assert noise[1] == pytest.approx(2.0 / 3.0)
        assert noise[0] == 0.0  # aggressor is driven

    def test_falling_aggressor_negative_noise(self):
        c = two_line_cap()
        noise = victim_noise(c, np.array([-1.0, 0.0]))
        assert noise[1] == pytest.approx(-2.0 / 3.0)

    def test_aggressors_add(self):
        c = np.full((3, 3), 1e-15)
        np.fill_diagonal(c, 1e-15)
        both = victim_noise(c, np.array([1.0, 1.0, 0.0]))
        single = victim_noise(c, np.array([1.0, 0.0, 0.0]))
        assert both[2] == pytest.approx(2.0 * single[2])

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            victim_noise(np.eye(2), np.zeros(3))

    def test_scales_with_vdd(self):
        c = two_line_cap()
        assert victim_noise(c, np.array([1.0, 0.0]), vdd=2.0)[1] == (
            pytest.approx(4.0 / 3.0)
        )


class TestWorstCase:
    def test_bound_matches_all_aggressors(self):
        c = np.full((4, 4), 0.5e-15)
        np.fill_diagonal(c, 2e-15)
        bound = worst_case_noise(c)
        deltas = np.ones(4)
        for victim in range(4):
            deltas_v = deltas.copy()
            deltas_v[victim] = 0.0
            assert victim_noise(c, deltas_v)[victim] == pytest.approx(
                bound[victim]
            )

    def test_bound_below_vdd(self):
        rng = np.random.default_rng(0)
        c = rng.uniform(0.1, 1.0, (5, 5))
        c = (c + c.T) / 2.0
        assert (worst_case_noise(c) < 1.0).all()


class TestStreamStatistics:
    def test_known_stream(self):
        c = two_line_cap()
        bits = np.array([[0, 0], [1, 0], [1, 0], [0, 0]], dtype=np.uint8)
        stats = stream_noise_statistics(c, bits)
        assert stats.peak == pytest.approx(2.0 / 3.0)
        assert stats.peak_line == 1
        # Victim events: line1 in cycles 1,2,3 and line0 in cycle 2.
        assert stats.exceed_fraction == pytest.approx(2.0 / 4.0)

    def test_quiet_stream_no_noise(self):
        c = two_line_cap()
        bits = np.ones((5, 2), dtype=np.uint8)
        stats = stream_noise_statistics(c, bits)
        assert stats.peak == 0.0
        assert stats.mean == 0.0

    def test_size_mismatch(self):
        with pytest.raises(ValueError):
            stream_noise_statistics(np.eye(3), np.zeros((4, 2), dtype=np.uint8))

    def test_against_transient_simulation(self):
        """The capacitive-divider peak must match a real transient run with
        a slow victim holder and a fast aggressor."""
        coupling, ground = 2e-15, 1e-15
        net = Netlist()
        net.voltage_source("agg_src", 0,
                           lambda t: 0.0 if t < 1e-12 else 1.0, name="agg")
        net.resistor("agg_src", "agg", 10.0)          # fast aggressor
        net.resistor("vic", 0, 1e9)                    # nearly floating victim
        net.capacitor("agg", "vic", coupling)
        net.capacitor("vic", 0, ground)
        net.capacitor("agg", 0, ground)
        solver = TransientSolver(net, timestep=5e-14)
        result = solver.run(2e-10)
        # Compare the settled divider plateau (the hard step excites a small
        # trapezoidal-rule ripple right at the edge, which is numerical).
        simulated_plateau = result.voltage("vic")[-1]
        predicted = victim_noise(
            np.array([[ground, coupling], [coupling, ground]]),
            np.array([1.0, 0.0]),
        )[1]
        assert simulated_plateau == pytest.approx(predicted, rel=0.02)
