"""Structural tests of the figure reproductions (fast mode).

These assert the paper's qualitative claims — who wins, and roughly where —
on shrunken sweeps, so the whole file stays fast. The benchmark harness runs
the full-size versions.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablations,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    routing_overhead,
)
from repro.experiments.common import (
    ExperimentRow,
    format_table,
    study_assignments,
)


class TestCommon:
    def test_format_table_empty(self):
        assert "(no data)" in format_table("t", [])

    def test_format_table_missing_cell(self):
        rows = [
            ExperimentRow("a", {"x": 0.5}),
            ExperimentRow("b", {"y": 0.25}),
        ]
        table = format_table("t", rows)
        assert "50.00%" in table and "25.00%" in table and "-" in table

    def test_study_rejects_unknown_method(self):
        from repro.stats.switching import BitStatistics
        from repro.tsv.geometry import TSVArrayGeometry

        bits = (np.random.default_rng(0).random((50, 4)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        geom = TSVArrayGeometry(2, 2, 8e-6, 2e-6)
        with pytest.raises(ValueError):
            study_assignments(stats, geom, methods=("magic",))


@pytest.fixture(scope="module")
def fig2_rows():
    return fig2.run(fast=True, seed=7)


@pytest.fixture(scope="module")
def fig3_rows():
    return fig3.run(fast=True, rhos=(0.0, -0.6, 0.6), seed=7)


class TestFig2:
    def test_row_per_branch_probability(self, fig2_rows):
        assert len(fig2_rows) == len(fig2.FAST_BRANCH_PROBABILITIES)

    def test_optimal_at_least_spiral(self, fig2_rows):
        for row in fig2_rows:
            assert row.values["opt 4x4"] >= row.values["spiral 4x4"] - 0.01
            assert row.values["opt 5x5"] >= row.values["spiral 5x5"] - 0.01

    def test_reduction_decays_with_branching(self, fig2_rows):
        first, last = fig2_rows[0], fig2_rows[-1]
        assert first.values["opt 4x4"] > last.values["opt 4x4"]
        assert first.values["spiral 4x4"] > last.values["spiral 4x4"]

    def test_spiral_close_to_optimal_when_correlated(self, fig2_rows):
        # The Fig. 2 claim: the two curves nearly coincide.
        first = fig2_rows[0]
        assert first.values["spiral 4x4"] > 0.6 * first.values["opt 4x4"]


class TestFig3:
    def test_sawtooth_tracks_optimal_at_zero_rho(self, fig3_rows):
        zero_rho = [r for r in fig3_rows if r.label.startswith("rho=+0.0")]
        assert zero_rho
        ratios = [
            row.values["sawtooth"] / row.values["optimal"] for row in zero_rho
        ]
        # Near-optimality claim of Sec. 4; the largest sigma saturates the
        # 16 b range and is allowed to deviate more.
        assert min(ratios) > 0.55
        assert np.mean(ratios) > 0.75

    def test_negative_rho_gives_largest_reductions(self, fig3_rows):
        def best(prefix):
            return max(
                r.values["optimal"] for r in fig3_rows
                if r.label.startswith(prefix)
            )

        assert best("rho=-0.6") > best("rho=+0.6")

    def test_sawtooth_beats_spiral_for_negative_rho(self, fig3_rows):
        for row in fig3_rows:
            if row.label.startswith("rho=-0.6"):
                assert row.values["sawtooth"] > row.values["spiral"]

    def test_all_beat_random_for_positive_rho(self, fig3_rows):
        for row in fig3_rows:
            if row.label.startswith("rho=+0.6"):
                assert row.values["sawtooth"] > 0.0
                assert row.values["spiral"] > 0.0


class TestFig4:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r.values for r in fig4.run(fast=True, seed=7)}

    def test_all_scenarios_present(self, rows):
        assert len(rows) == 6

    def test_optimal_beats_spiral(self, rows):
        for label, values in rows.items():
            assert values["optimal"] >= values["spiral"] - 0.01, label

    def test_parallel_beats_mux_for_spiral(self, rows):
        # Multiplexing destroys the pixel correlation the Spiral exploits.
        assert (rows["RGB par. 4x8 r=1um"]["spiral"]
                > rows["RGB mux. 3x3 r=1um"]["spiral"])

    def test_positive_reductions(self, rows):
        for label, values in rows.items():
            assert values["optimal"] > 0.0, label


class TestFig5:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r.values for r in fig5.run(fast=True, seed=7)}

    def test_seven_streams(self, rows):
        assert len(rows) == 7

    def test_spiral_beats_sawtooth_on_rms(self, rows):
        # Unsigned, non-mean-free RMS data: the Spiral case.
        for sensor in ("Acc", "Gyr", "Mag"):
            assert (rows[f"{sensor} RMS"]["spiral"]
                    > rows[f"{sensor} RMS"]["sawtooth"]), sensor

    def test_sawtooth_competitive_on_interleaved(self, rows):
        for sensor in ("Acc", "Gyr", "Mag"):
            values = rows[f"{sensor} XYZ"]
            assert values["sawtooth"] > values["spiral"], sensor
            assert values["sawtooth"] > 0.4 * values["optimal"], sensor

    def test_optimal_always_wins(self, rows):
        for label, values in rows.items():
            assert values["optimal"] >= max(
                values["sawtooth"], values["spiral"]
            ) - 0.01, label


class TestFig6:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r.values for r in fig6.run(fast=True, seed=7)}

    def test_five_rows(self, rows):
        assert len(rows) == 5

    def test_optimal_reduces_power_everywhere(self, rows):
        for label, values in rows.items():
            if "optimal" in values:
                assert values["optimal"] < values["plain"], label

    def test_gray_plus_optimal_beats_gray_alone(self, rows):
        values = rows["Sensor Mux. (16b, 4x4)"]
        assert values["gray+opt"] < values["gray"]
        # The paper: the combination "more than doubles" the coding gain.
        gain_gray = 1.0 - values["gray"] / values["plain"]
        gain_combo = 1.0 - values["gray+opt"] / values["plain"]
        assert gain_combo > 1.5 * gain_gray

    def test_correlator_plus_optimal_is_best(self, rows):
        values = rows["RGB Mux.+1R (8b, 3x3)"]
        assert values["corr+opt"] < values["corr"] < values["plain"]

    def test_mux_costs_more_than_seq(self, rows):
        assert (rows["Sensor Mux. (16b, 4x4)"]["plain"]
                > rows["Sensor Seq. (16b, 4x4)"]["plain"])

    def test_power_magnitude_sub_mw(self, rows):
        # The paper's Fig. 6 reports fractions of a mW (0.36-0.61 mW for
        # the RGB cases); we must land in the same decade.
        for label, values in rows.items():
            assert 0.05 < values["plain"] < 5.0, label

    def test_reductions_helper(self, rows):
        reduced = fig6.reductions(
            [ExperimentRow(k, v) for k, v in rows.items()]
        )
        for row in reduced:
            assert "plain" not in row.values


class TestRoutingOverhead:
    def test_sec3_negligible(self):
        rows = routing_overhead.run(fast=True)
        for row in rows:
            assert row.values["worst"] < 0.03
            assert row.values["std"] < row.values["mean"] < row.values["worst"]


class TestAblations:
    def test_capacitance_models_agree_on_ordering(self):
        rows = ablations.capacitance_models(fast=True, seed=7)
        for row in rows:
            assert row.values["optimal"] >= row.values["sawtooth"] - 0.01

    def test_linear_capmodel_error_bounds(self):
        rows = ablations.linear_capmodel_error(fast=True, seed=7)
        for row in rows:
            assert row.values["regr NRMSE"] < 0.05

    def test_optimizer_gaps(self):
        rows = ablations.optimizers(fast=True, seed=7)
        by_label = {r.label: r.values for r in rows}
        assert by_label["sim. annealing"]["gap"] < 0.02
        assert (by_label["sim. annealing"]["evals"]
                < by_label["exhaustive (no inv)"]["evals"])

    def test_inversions_help(self):
        rows = ablations.inversions(fast=True, seed=7)
        by_label = {r.label: r.values for r in rows}
        assert (by_label["with inversions"]["reduction"]
                >= by_label["without inversions"]["reduction"] - 1e-9)

    def test_variation_robustness(self):
        rows = ablations.variation_robustness(fast=True, seed=7)
        by_label = {r.label: r.values for r in rows}
        optimal = by_label["optimal (nominal)"]
        assert optimal["worst"] > 0.5 * optimal["nominal"]
        assert optimal["regret"] < 0.05


class TestRelatedWork:
    def test_cac_tradeoff(self):
        from repro.experiments import related_work

        rows = {r.label: r.values for r in related_work.run(fast=True, seed=7)}
        # SI better, power worse for CAC; power better at zero cost for the
        # assignment.
        assert (rows["LAT-CAC 2x(3x3)"]["peak noise [V]"]
                < rows["plain 3x3"]["peak noise [V]"])
        assert (rows["LAT-CAC 2x(3x3)"]["power [mW]"]
                > rows["plain 3x3"]["power [mW]"])
        assert (rows["assignment 3x3"]["power [mW]"]
                < rows["plain 3x3"]["power [mW]"])


class TestNocCaseStudy:
    def test_network_level_argument(self):
        from repro.experiments import noc_case_study

        rows = noc_case_study.run(fast=True, seed=7)
        assert len(rows) == 3
        for row in rows:
            # The free assignment pays on every pattern, and combining it
            # with the per-link code always beats the code alone.
            assert row.values["assigned %"] > 0.0, row.label
            assert row.values["both %"] > row.values["coded %"], row.label
            assert row.values["TSV links"] > 0
