"""Tests for the shared experiment infrastructure and the Fig. 6 builders."""

import numpy as np
import pytest

from repro.core.assignment import SignedPermutation
from repro.experiments import fig6
from repro.experiments.common import (
    circuit_power_mw,
    extractor_for,
    cap_model_for,
    optimize_for_stream,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry


@pytest.fixture(scope="module")
def geometry():
    return TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)


class TestSharedCaches:
    def test_extractor_memoized(self, geometry):
        a = extractor_for(geometry, "compact")
        b = extractor_for(geometry, "compact")
        assert a is b

    def test_cap_model_memoized(self, geometry):
        a = cap_model_for(geometry, "compact")
        b = cap_model_for(geometry, "compact")
        assert a is b

    def test_methods_get_distinct_entries(self, geometry):
        a = extractor_for(geometry, "compact")
        b = extractor_for(geometry, "compact3d")
        assert a is not b


class TestCircuitPower:
    def test_quiet_stream_is_leakage_only(self, geometry):
        from repro.circuit.driver import DriverModel

        bits = np.ones((50, 4), dtype=np.uint8)
        power_mw = circuit_power_mw(
            bits, geometry, payload_bits=4, cap_method="compact"
        )
        driver = DriverModel()
        leakage_mw = 1e3 * 4 * driver.leakage_current * driver.vdd
        assert power_mw == pytest.approx(leakage_mw * 32.0 / 4.0, rel=1e-6)

    def test_payload_scaling(self, geometry):
        rng = np.random.default_rng(0)
        bits = (rng.random((400, 4)) < 0.5).astype(np.uint8)
        full = circuit_power_mw(bits, geometry, payload_bits=4,
                                cap_method="compact")
        half = circuit_power_mw(bits, geometry, payload_bits=2,
                                cap_method="compact")
        assert half == pytest.approx(2.0 * full, rel=1e-9)

    def test_assignment_changes_power(self):
        rng = np.random.default_rng(1)
        # A 2x2 array is fully symmetric; a 1x3 line distinguishes the end
        # positions from the middle, so moving the hot bit must matter.
        geometry_line = TSVArrayGeometry(rows=1, cols=3, pitch=8e-6,
                                         radius=2e-6)
        bits3 = np.zeros((300, 3), dtype=np.uint8)
        bits3[:, 0] = rng.integers(0, 2, 300)
        corner = circuit_power_mw(
            bits3, geometry_line,
            assignment=SignedPermutation.from_sequence([0, 1, 2]),
            payload_bits=3, cap_method="compact",
        )
        middle = circuit_power_mw(
            bits3, geometry_line,
            assignment=SignedPermutation.from_sequence([1, 0, 2]),
            payload_bits=3, cap_method="compact",
        )
        assert corner != pytest.approx(middle, rel=1e-6)


class TestFig6Builders:
    def test_sensor_seq_structure(self):
        rng = np.random.default_rng(2)
        bits = fig6.sensor_seq_bits(50, rng)
        # 9 axes x 50 samples, 16 lines.
        assert bits.shape == (9 * 50, 16)

    def test_sensor_mux_interleaves(self):
        rng = np.random.default_rng(3)
        words = fig6.sensor_mux_words(40, rng)
        assert words.shape == (9 * 40,)

    def test_seq_retains_more_correlation_than_mux(self):
        rng = np.random.default_rng(4)
        seq = fig6.sensor_seq_bits(300, np.random.default_rng(4))
        mux_words = fig6.sensor_mux_words(300, np.random.default_rng(4))
        unsigned = np.where(mux_words < 0, mux_words + (1 << 16), mux_words)
        from repro.datagen.util import words_to_bits

        mux = words_to_bits(unsigned, 16)
        s_seq = BitStatistics.from_stream(seq)
        s_mux = BitStatistics.from_stream(mux)
        # The paper's point: interleaving raises the MSB-side activity.
        assert (s_mux.self_switching[10:].mean()
                > s_seq.self_switching[10:].mean())

    def test_random_mean_power_reproducible(self, geometry):
        rng = np.random.default_rng(5)
        bits = (rng.random((200, 4)) < 0.5).astype(np.uint8)
        a = fig6.random_mean_power_mw(bits, geometry, payload_bits=4,
                                      n_samples=5, seed=3)
        b = fig6.random_mean_power_mw(bits, geometry, payload_bits=4,
                                      n_samples=5, seed=3)
        assert a == b


class TestStudyOptions:
    def test_identity_method(self, geometry):
        rng = np.random.default_rng(6)
        bits = (rng.random((300, 4)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        study = study_assignments(
            stats, geometry, methods=("identity",), cap_method="compact",
            baseline_samples=10,
        )
        assert "identity" in study.powers

    def test_optimize_for_stream_returns_valid_assignment(self, geometry):
        rng = np.random.default_rng(7)
        bits = (rng.random((300, 4)) < 0.5).astype(np.uint8)
        stats = BitStatistics.from_stream(bits)
        assignment = optimize_for_stream(
            stats, geometry, cap_method="compact", sa_steps=30
        )
        assert sorted(assignment.line_of_bit) == [0, 1, 2, 3]
