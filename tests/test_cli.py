"""Tests for the command-line front-end."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "fig2", "--fast"])
        assert args.name == "fig2" and args.fast

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "fig99"])


class TestExtract(object):
    def test_prints_matrix(self, capsys):
        code = main([
            "extract", "--rows", "2", "--cols", "2",
            "--radius", "2", "--pitch", "8", "--cap-method", "compact",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SPICE-form capacitance matrix" in out
        assert "total capacitance" in out


class TestDepletion:
    def test_prints_curve(self, capsys):
        code = main(["depletion", "--radius", "1", "--points", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "C_mos" in out
        assert len(out.strip().splitlines()) == 4  # header + 3 points


class TestOptimize:
    def test_synthetic_stream(self, capsys):
        code = main([
            "optimize", "--rows", "2", "--cols", "2", "--samples", "800",
            "--cap-method", "compact", "--methods", "spiral,identity",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "spiral" in out and "identity" in out

    def test_stream_file_and_save(self, tmp_path, capsys):
        stream = (np.random.default_rng(0).random((500, 4)) < 0.5).astype(
            np.uint8
        )
        stream_path = tmp_path / "bits.npy"
        np.save(stream_path, stream)
        out_path = tmp_path / "assignment.json"
        code = main([
            "optimize", "--rows", "2", "--cols", "2",
            "--cap-method", "compact", "--methods", "greedy",
            "--stream", str(stream_path),
            "--save-assignment", str(out_path),
            "--show-assignment",
        ])
        assert code == 0
        saved = json.loads(out_path.read_text())
        assert sorted(saved["line_of_bit"]) == [0, 1, 2, 3]
        assert len(saved["inverted"]) == 4


class TestFigure:
    def test_routing_table(self, capsys):
        code = main(["figure", "routing", "--fast"])
        assert code == 0
        assert "path-parasitic" in capsys.readouterr().out

    def test_routing_json(self, capsys):
        code = main(["figure", "routing", "--fast", "--format", "json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["label"].startswith("3x3")

    def test_routing_csv_to_file(self, tmp_path, capsys):
        out_path = tmp_path / "rows.csv"
        code = main([
            "figure", "routing", "--fast", "--format", "csv",
            "--output", str(out_path),
        ])
        assert code == 0
        text = out_path.read_text()
        assert text.splitlines()[1].startswith("label,")

    def test_machine_format_refused_without_rows(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure", "ablations", "--fast", "--format", "json"])
