"""Unit tests for every REPxxx linter rule: positive, negative and noqa."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import Finding, lint_paths, lint_source, run_lint
from repro.cli import main as cli_main

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def rules_of(source: str):
    return [f.rule for f in lint_source(source)]


# ---------------------------------------------------------------------------
# REP001 - unseeded / global NumPy RNG
# ---------------------------------------------------------------------------


def test_rep001_unseeded_default_rng():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert rules_of(src) == ["REP001"]


def test_rep001_global_seed_and_legacy_samplers():
    src = (
        "import numpy as np\n"
        "np.random.seed(3)\n"
        "x = np.random.rand(4)\n"
        "y = np.random.permutation(8)\n"
    )
    assert rules_of(src) == ["REP001", "REP001", "REP001"]


def test_rep001_respects_import_aliases():
    src = (
        "import numpy.random as npr\n"
        "from numpy.random import default_rng\n"
        "npr.seed(1)\n"
        "g = default_rng()\n"
    )
    assert rules_of(src) == ["REP001", "REP001"]


def test_rep001_negative_seeded_and_generator_methods():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng(2018)\n"
        "x = rng.permutation(8)\n"
        "y = rng.normal(size=3)\n"
    )
    assert rules_of(src) == []


def test_rep001_noqa_suppression():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[REP001] OS entropy ok\n"
    )
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# REP002 - hand-rolled loops over arrays
# ---------------------------------------------------------------------------


def test_rep002_accumulation_loop():
    src = (
        "total = 0.0\n"
        "for i in range(len(xs)):\n"
        "    total += xs[i]\n"
    )
    assert rules_of(src) == ["REP002"]


def test_rep002_elementwise_store_loop():
    src = (
        "for i in range(a.shape[0]):\n"
        "    out[i] = 2.0 * a[i]\n"
    )
    assert rules_of(src) == ["REP002"]


def test_rep002_negative_complex_bodies_not_flagged():
    src = (
        "for i in range(len(xs)):\n"
        "    if xs[i] > 0:\n"
        "        total += xs[i]\n"
        "for item in xs:\n"
        "    total += item\n"
        "for i in range(len(xs)):\n"
        "    total += xs[i]\n"
        "    count += 1\n"
    )
    assert rules_of(src) == []


def test_rep002_noqa_suppression():
    src = (
        "for i in range(len(xs)):  # repro: noqa[REP002] tiny fixed n\n"
        "    total += xs[i]\n"
    )
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# REP003 - np.matrix / deprecated NumPy API
# ---------------------------------------------------------------------------


def test_rep003_np_matrix_and_removed_aliases():
    src = (
        "import numpy as np\n"
        "m = np.matrix([[1.0]])\n"
        "x = np.float(3)\n"
        "ok = np.alltrue([True])\n"
    )
    assert rules_of(src) == ["REP003", "REP003", "REP003"]


def test_rep003_from_import_usage():
    src = "from numpy import alltrue\nresult = alltrue([True])\n"
    # Flagged twice: once at the import binding, once at the call site.
    assert set(rules_of(src)) == {"REP003"}


def test_rep003_negative_modern_spellings():
    src = (
        "import numpy as np\n"
        "a = np.float64(3)\n"
        "b = np.asarray([1])\n"
        "c = np.bool_(True)\n"
    )
    assert rules_of(src) == []


def test_rep003_noqa_suppression():
    src = (
        "import numpy as np\n"
        "m = np.matrix([[1.0]])  # repro: noqa[REP003] exercising legacy API\n"
    )
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# REP004 - float equality comparisons
# ---------------------------------------------------------------------------


def test_rep004_equality_with_nonzero_float_literal():
    src = "flag = x == 1.5\nother = 2.5 != y\nneg = z == -3.5\n"
    assert rules_of(src) == ["REP004", "REP004", "REP004"]


def test_rep004_negative_zero_guards_ints_and_orderings():
    src = (
        "a = norm == 0.0\n"
        "b = count == 1\n"
        "c = x <= 1.5\n"
        "d = y < 2.5\n"
    )
    assert rules_of(src) == []


def test_rep004_noqa_suppression():
    src = "flag = x == 1.5  # repro: noqa[REP004] sentinel value, exact\n"
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# REP005 - mutation of array parameters
# ---------------------------------------------------------------------------


def test_rep005_subscript_store_and_augassign():
    src = (
        "def f(a):\n"
        "    a[0] = 1.0\n"
        "def g(b):\n"
        "    b[2, 3] += 1.0\n"
    )
    assert rules_of(src) == ["REP005", "REP005"]


def test_rep005_mutating_calls():
    src = (
        "import numpy as np\n"
        "def f(a):\n"
        "    np.fill_diagonal(a, 0.0)\n"
        "def g(b):\n"
        "    b.sort()\n"
    )
    assert rules_of(src) == ["REP005", "REP005"]


def test_rep005_negative_defensive_copy_and_locals():
    src = (
        "import numpy as np\n"
        "def f(a):\n"
        "    a = np.asarray(a, dtype=float).copy()\n"
        "    a[0] = 1.0\n"
        "    return a\n"
        "def g(b):\n"
        "    out = np.empty_like(b)\n"
        "    out[0] = b[0]\n"
        "    return out\n"
    )
    assert rules_of(src) == []


def test_rep005_nested_function_scopes_are_independent():
    src = (
        "def outer(a):\n"
        "    def inner(b):\n"
        "        b[0] = 1.0\n"
        "    return inner\n"
    )
    assert rules_of(src) == ["REP005"]


def test_rep005_noqa_suppression():
    src = (
        "def stamp(m):\n"
        "    m[0, 0] += 1.0  # repro: noqa[REP005] stamping by design\n"
    )
    assert rules_of(src) == []


# ---------------------------------------------------------------------------
# Suppression mechanics and plumbing
# ---------------------------------------------------------------------------


def test_bare_noqa_suppresses_every_rule_on_the_line():
    src = "import numpy as np\nx = np.random.rand(3) == 1.5  # repro: noqa\n"
    assert rules_of(src) == []


def test_noqa_for_other_rule_does_not_suppress():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[REP004] wrong code\n"
    )
    assert rules_of(src) == ["REP001"]


def test_syntax_error_reported_as_rep000():
    findings = lint_source("def broken(:\n", path="bad.py")
    assert [f.rule for f in findings] == ["REP000"]
    assert findings[0].path == "bad.py"


def test_findings_carry_location_and_render():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    finding = lint_source(src, path="mod.py")[0]
    assert isinstance(finding, Finding)
    assert (finding.path, finding.line) == ("mod.py", 2)
    assert finding.render().startswith("mod.py:2:")


def test_run_lint_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("import numpy as np\nrng = np.random.default_rng(1)\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nrng = np.random.default_rng()\n")
    assert run_lint([str(clean)]) == 0
    assert run_lint([str(dirty)]) == 1
    assert run_lint([str(tmp_path / "missing.py")]) == 2
    out = capsys.readouterr().out
    assert "REP001" in out


def test_cli_lint_subcommand(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
    assert cli_main(["lint", str(dirty)]) == 1
    assert cli_main(["lint", str(dirty), "--format", "json"]) == 1
    out = capsys.readouterr().out
    assert '"rule": "REP001"' in out


def test_python_dash_m_entry_point(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import numpy as np\nnp.random.seed(0)\n")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", str(dirty)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO_SRC.parent), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 1
    assert "REP001" in proc.stdout


@pytest.mark.skipif(not REPO_SRC.exists(), reason="source tree not present")
def test_repository_sources_are_clean():
    """The acceptance gate: the library itself carries zero findings."""
    assert lint_paths([REPO_SRC]) == []
