"""Contract-layer tests: every validator, the toggle, and the boundaries."""

import numpy as np
import pytest

from repro.analysis.contracts import (
    ContractViolation,
    check_capacitance_matrix,
    check_mna_system,
    check_probabilities,
    check_signed_permutation,
    check_switching_matrix,
    contract,
    contracts_enabled,
    contracts_override,
)
from repro.circuit.mna import assemble
from repro.circuit.netlist import GROUND, Netlist
from repro.core.assignment import SignedPermutation
from repro.core.power import PowerModel, normalized_power
from repro.stats.switching import BitStatistics
from repro.tsv.matrices import maxwell_to_spice


def make_stats(n=4, seed=7):
    rng = np.random.default_rng(seed)
    bits = (rng.random((256, n)) < 0.5).astype(np.uint8)
    return BitStatistics.from_stream(bits)


def spice_matrix(n=4):
    c = np.full((n, n), 0.2e-15)
    np.fill_diagonal(c, 1.0e-15)
    return c


def invalid_permutation():
    """Bypass __post_init__ to build a structurally broken assignment."""
    bad = SignedPermutation.__new__(SignedPermutation)
    object.__setattr__(bad, "line_of_bit", (0, 0, 2, 3))
    object.__setattr__(bad, "inverted", (False, False, False, False))
    return bad


# ---------------------------------------------------------------------------
# Toggle
# ---------------------------------------------------------------------------


def test_contracts_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CONTRACTS", raising=False)
    assert not contracts_enabled()


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("on", True), ("yes", True),
    ("0", False), ("false", False), ("off", False), ("", False),
])
def test_contracts_env_values(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_CONTRACTS", value)
    assert contracts_enabled() is expected


def test_contracts_override_restores_environment(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    with contracts_override(True):
        assert contracts_enabled()
    assert not contracts_enabled()


# ---------------------------------------------------------------------------
# Validators
# ---------------------------------------------------------------------------


def test_check_probabilities_accepts_valid():
    p = check_probabilities([0.0, 0.5, 1.0])
    assert p.shape == (3,)


@pytest.mark.parametrize("bad,invariant", [
    ([0.5, 1.5], "probability-range"),
    ([-0.1, 0.5], "probability-range"),
    ([[0.5]], "probability-shape"),
    ([np.nan, 0.5], "probability-finite"),
])
def test_check_probabilities_rejects(bad, invariant):
    with pytest.raises(ContractViolation) as excinfo:
        check_probabilities(bad)
    assert excinfo.value.invariant == invariant
    assert invariant in str(excinfo.value)


def test_check_capacitance_matrix_accepts_spice_form():
    check_capacitance_matrix(spice_matrix())


def test_check_capacitance_matrix_rejects_asymmetry():
    c = spice_matrix()
    c[0, 1] *= 3.0
    with pytest.raises(ContractViolation) as excinfo:
        check_capacitance_matrix(c)
    assert excinfo.value.invariant == "capacitance-symmetry"


def test_check_capacitance_matrix_rejects_negative_coupling():
    c = spice_matrix()
    c[0, 1] = c[1, 0] = -0.5e-15
    with pytest.raises(ContractViolation) as excinfo:
        check_capacitance_matrix(c)
    assert excinfo.value.invariant == "capacitance-spice-form"


@pytest.mark.parametrize("bad,invariant", [
    (np.ones((2, 3)), "capacitance-square"),
    (np.full((2, 2), np.nan), "capacitance-finite"),
])
def test_check_capacitance_matrix_rejects_shape_and_nan(bad, invariant):
    with pytest.raises(ContractViolation) as excinfo:
        check_capacitance_matrix(bad)
    assert excinfo.value.invariant == invariant


def test_check_signed_permutation_accepts_object_and_matrix():
    perm = SignedPermutation.from_sequence((2, 0, 1), (True, False, False))
    check_signed_permutation(perm)
    check_signed_permutation(perm.matrix())


@pytest.mark.parametrize("matrix", [
    np.array([[1.0, 0.0], [1.0, 0.0]]),   # doubled column
    np.array([[2.0, 0.0], [0.0, 1.0]]),   # entry not +-1
    np.array([[1.0, 1.0], [0.0, 1.0]]),   # two entries in a row
    np.zeros((2, 2)),                     # empty row/column
])
def test_check_signed_permutation_rejects_matrices(matrix):
    with pytest.raises(ContractViolation) as excinfo:
        check_signed_permutation(matrix)
    assert excinfo.value.invariant == "signed-permutation"


def test_check_signed_permutation_rejects_broken_object():
    with pytest.raises(ContractViolation) as excinfo:
        check_signed_permutation(invalid_permutation())
    assert excinfo.value.invariant == "signed-permutation"


def test_check_switching_matrix_accepts_empirical_stats():
    check_switching_matrix(make_stats())


def test_check_switching_matrix_rejects_asymmetric_coupling():
    stats = make_stats()
    coupling = stats.coupling.copy()
    coupling[0, 1] += 0.2
    bad = BitStatistics(
        self_switching=stats.self_switching,
        coupling=coupling,
        probabilities=stats.probabilities,
        n_samples=stats.n_samples,
    )
    with pytest.raises(ContractViolation) as excinfo:
        check_switching_matrix(bad)
    assert excinfo.value.invariant == "switching-symmetry"


def test_check_switching_matrix_rejects_cauchy_schwarz_violation():
    n = 3
    self_switching = np.full(n, 0.25)
    coupling = np.full((n, n), 0.9)  # far above sqrt(0.25 * 0.25)
    np.fill_diagonal(coupling, self_switching)
    bad = BitStatistics.from_moments(
        self_switching, coupling, np.full(n, 0.5)
    )
    with pytest.raises(ContractViolation) as excinfo:
        check_switching_matrix(bad)
    assert excinfo.value.invariant == "switching-cauchy-schwarz"


def test_check_mna_system_accepts_assembled_netlist():
    netlist = Netlist()
    netlist.voltage_source("in", GROUND, 1.0)
    netlist.resistor("in", "out", 50.0)
    netlist.capacitor("out", GROUND, 1e-15)
    check_mna_system(assemble(netlist))


def test_check_mna_system_rejects_nan():
    class Broken:
        a_matrix = np.full((2, 2), np.nan)
        e_matrix = np.zeros((2, 2))
        n_nodes = 2

    with pytest.raises(ContractViolation) as excinfo:
        check_mna_system(Broken())
    assert excinfo.value.invariant == "mna-finite"


# ---------------------------------------------------------------------------
# Boundary wiring (the acceptance criteria)
# ---------------------------------------------------------------------------


def test_powermodel_rejects_asymmetric_capacitance_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    stats = make_stats()
    c = spice_matrix()
    c[0, 1] *= 5.0
    with pytest.raises(ContractViolation, match="capacitance-symmetry"):
        PowerModel(stats, c)


def test_powermodel_accepts_asymmetric_capacitance_when_disabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    stats = make_stats()
    c = spice_matrix()
    c[0, 1] *= 5.0
    assert np.isfinite(PowerModel(stats, c).power())


def test_powermodel_rejects_invalid_assignment_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    model = PowerModel(make_stats(), spice_matrix())
    with pytest.raises(ContractViolation, match="signed-permutation"):
        model.power(invalid_permutation())


def test_normalized_power_checks_inputs_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    stats = make_stats()
    c = spice_matrix()
    c[2, 3] *= 4.0
    with pytest.raises(ContractViolation, match="capacitance-symmetry"):
        normalized_power(stats, c)


def test_from_matrix_contract_error_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    with pytest.raises(ContractViolation, match="signed-permutation"):
        SignedPermutation.from_matrix(np.array([[1.0, 1.0], [0.0, 1.0]]))


def test_maxwell_to_spice_postcondition_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    maxwell = np.array([[2.0, -0.5], [-0.5, 2.0]])
    check_capacitance_matrix(maxwell_to_spice(maxwell))
    asymmetric = np.array([[2.0, -0.5], [-0.9, 2.0]])
    with pytest.raises(ContractViolation, match="capacitance-symmetry"):
        maxwell_to_spice(asymmetric)


# ---------------------------------------------------------------------------
# The decorator
# ---------------------------------------------------------------------------


def test_contract_decorator_validates_named_parameters(monkeypatch):
    @contract(probabilities=check_probabilities)
    def f(probabilities, other=None):
        return "ran"

    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    assert f([0.5, 0.5]) == "ran"
    with pytest.raises(ContractViolation):
        f([1.5])
    monkeypatch.setenv("REPRO_CONTRACTS", "0")
    assert f([1.5]) == "ran"


def test_contract_decorator_skips_none_arguments(monkeypatch):
    @contract(probabilities=check_probabilities)
    def f(probabilities=None):
        return "ran"

    monkeypatch.setenv("REPRO_CONTRACTS", "1")
    assert f() == "ran"


def test_contract_decorator_rejects_unknown_parameter():
    with pytest.raises(TypeError, match="unknown"):
        @contract(nonexistent=check_probabilities)
        def f(x):
            return x
