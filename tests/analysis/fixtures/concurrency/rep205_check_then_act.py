"""Fixture: REP205 — non-atomic check-then-act on a guarded field."""

import threading


class LazyTable:
    """Lazy init that checks outside the lock and acts inside it."""

    _table = None
    _lock = threading.Lock()

    def get(self):
        if self._table is None:  # expect: REP205
            with self._lock:
                self._table = {}
        with self._lock:
            return self._table


REPRO_SIGNATURES = {
    "@guards": ["LazyTable._table guarded_by _lock"],
    "@threads": ["LazyTable"],
}
