"""Fixture: REP201 — write to a guarded attribute without its lock."""

import threading


class SharedCounter:
    """A counter bumped from worker threads; one writer forgets the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self.value = 0

    def bump(self):
        self.value += 1  # expect: REP201

    def read(self):
        with self._lock:
            return self.value


REPRO_SIGNATURES = {
    "@guards": ["SharedCounter.value guarded_by _lock"],
    "@threads": ["SharedCounter"],
}
