"""Fixture: REP007 (shallow) — daemon thread with no join or atexit hook.

The handle escapes by being returned, so the deep REP206 function-local
rule stays quiet; the shallow file-level rule still wants a join or a
registered shutdown hook somewhere in the file.
"""

import threading


def _tick():
    pass


def launch():
    watchdog = threading.Thread(target=_tick, daemon=True)  # expect: REP007
    watchdog.start()
    return watchdog
