"""Fixture: REP202 — inconsistent lockset found by thread-escape inference.

No annotations here on purpose: the class escapes through its own
``threading.Thread(target=self._spin)``, and ``_count`` is accessed under
``_lock`` on several sites, so the one bare read is flagged by inference.
"""

import threading


class Meter:
    """Counts events from a worker thread; one reader forgets the lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0
        self._thread = None

    def start(self):
        self._thread = threading.Thread(target=self._spin)
        self._thread.start()

    def stop(self):
        if self._thread is not None:
            self._thread.join()

    def _spin(self):
        self.add(1)

    def add(self, n):
        with self._lock:
            self._count += n

    def reset(self):
        with self._lock:
            self._count = 0

    def peek(self):
        return self._count  # expect: REP202
