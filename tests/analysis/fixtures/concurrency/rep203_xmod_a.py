"""Fixture: REP203 across modules, side A — alpha taken before beta.

The cycle only exists when this module's summary is combined with
``rep203_xmod_b``: neither file is wrong on its own.
"""

import threading

from rep203_xmod_b import grab_beta

_alpha = threading.Lock()


def alpha_then_beta():
    with _alpha:
        grab_beta()  # expect: REP203


def grab_alpha():
    with _alpha:
        pass
