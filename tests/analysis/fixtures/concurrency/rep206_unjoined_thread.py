"""Fixture: REP206 — a thread started and then forgotten."""

import threading


def _work():
    pass


def fire_and_forget():
    worker = threading.Thread(target=_work)
    worker.start()  # expect: REP206


def fire_and_join():
    worker = threading.Thread(target=_work)
    worker.start()
    worker.join()
