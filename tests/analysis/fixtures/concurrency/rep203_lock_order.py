"""Fixture: REP203 — two locks taken in opposite orders (deadlock)."""

import threading


class Transfer:
    """Classic AB/BA deadlock between a debit and a credit path."""

    def __init__(self):
        self._debit_lock = threading.Lock()
        self._credit_lock = threading.Lock()

    def debit_then_credit(self):
        with self._debit_lock:
            with self._credit_lock:  # expect: REP203
                pass

    def credit_then_debit(self):
        with self._credit_lock:
            with self._debit_lock:  # expect: REP203
                pass
