"""Fixture: REP203 across modules, side B — beta taken before alpha."""

import threading

from rep203_xmod_a import grab_alpha

_beta = threading.Lock()


def beta_then_alpha():
    with _beta:
        grab_alpha()  # expect: REP203


def grab_beta():
    with _beta:
        pass
