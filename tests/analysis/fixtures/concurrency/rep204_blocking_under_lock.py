"""Fixture: REP204 — blocking calls while holding a lock."""

import threading
import time


class Poller:
    def __init__(self):
        self._lock = threading.Lock()

    def wait_slowly(self):
        with self._lock:
            time.sleep(0.1)  # expect: REP204

    def nap(self):
        time.sleep(0.05)

    def wait_via_helper(self):
        with self._lock:
            self.nap()  # expect: REP204

    def wait_politely(self):
        time.sleep(0.1)
