"""Deep-lint fixture: REP103 — adding normalized power [F] to power [W].

``PowerModel.power`` returns the *normalized* power ``P_n = <T, C>``,
which is a capacitance (farads); ``power_watts`` denormalizes to watts.
Summing the two is the classic mixed-normalization bug.
"""

from repro.core.power import PowerModel


def mixed_power_sum(stats, capacitance, assignment):
    model = PowerModel(stats, capacitance)
    p_normalized = model.power(assignment)
    p_watts = model.power_watts(assignment)
    return p_normalized + p_watts  # expect: REP103
