"""Deep-lint fixture: REP104 — probability expressions escaping [0, 1].

Eq. 8/9 of the paper require true probabilities. Summing two probability
vectors ranges over [0, 2]; a literal above 1 is no probability at all.
"""

from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import epsilon_from_probabilities


def doubled_probabilities(stream):
    stats = BitStatistics.from_stream(stream)
    doubled = stats.probabilities + stats.probabilities
    return epsilon_from_probabilities(doubled)  # expect: REP104


def literal_probabilities():
    return epsilon_from_probabilities([0.4, 1.5])  # expect: REP104
