"""Deep-lint fixture: REP102 — Maxwell-form matrix fed to a SPICE consumer.

``spice_to_maxwell`` returns the field-solver convention (negative
off-diagonals); ``total_capacitance`` requires the SPICE convention. The
values are plausible numbers of the right shape and unit — only the form
tag catches the bug.
"""

from repro.tsv.matrices import spice_to_maxwell, total_capacitance


def totals_from_maxwell(c_spice):
    c_maxwell = spice_to_maxwell(c_spice)
    return total_capacitance(c_maxwell)  # expect: REP102
