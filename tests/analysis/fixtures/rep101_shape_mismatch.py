"""Deep-lint fixture: REP101 — stream matrix used where line-pair fits.

``t_matrix`` is the ``(N, N)`` switching-cost matrix; a raw bit stream is
``(T, N)``. Contracting them over the inner axis mixes the sample axis
with the line axis, which the flow pass proves impossible (``N`` and ``T``
are rigidly distinct symbols).
"""

from repro.stats.switching import BitStatistics, validate_bit_stream


def coupling_against_stream(stream):
    stats = BitStatistics.from_stream(stream)
    bits = validate_bit_stream(stream)
    return stats.t_matrix @ bits  # expect: REP101
