"""REP306: argmin on float keys decides a deterministic result."""

import numpy as np


def pick_best(scores):
    values = np.asarray(scores, dtype=np.float64)
    best = int(np.argmin(values))  # expect: REP306
    return best


def pick_first_index(counts):
    values = np.asarray(counts, dtype=np.int64)
    return int(np.argmin(values))  # integer keys: ties are stable


REPRO_SIGNATURES = {
    "@deterministic": ["pick_best", "pick_first_index"],
}
