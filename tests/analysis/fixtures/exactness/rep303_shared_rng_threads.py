"""REP303: one RNG handed to several threads without a spawn split."""

import threading

import numpy as np


def _chain(chain_rng):
    return chain_rng.random()


def run_chains_shared(n):
    rng = np.random.default_rng(7)
    threads = []
    for _ in range(n):
        worker = threading.Thread(target=_chain, args=(rng,))  # expect: REP303
        threads.append(worker)
        worker.start()
    for worker in threads:
        worker.join()


def run_chains_spawned(n):
    rng = np.random.default_rng(7)
    threads = []
    for chain_rng in rng.spawn(n):
        worker = threading.Thread(target=_chain, args=(chain_rng,))
        threads.append(worker)
        worker.start()
    for worker in threads:
        worker.join()
