"""REP302: unordered set iteration decides serialized report content."""


def summarize(samples):
    seen = set(samples)
    labels = [str(x) for x in seen]  # expect: REP302
    return {"labels": labels}


def summarize_sorted(samples):
    seen = set(samples)
    labels = [str(x) for x in sorted(seen)]
    return {"labels": labels}


REPRO_SIGNATURES = {
    "@deterministic": ["summarize", "summarize_sorted"],
}
