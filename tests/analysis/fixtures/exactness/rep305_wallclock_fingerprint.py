"""REP305: wall-clock values embedded in checkpoint payloads."""

import time


class Store:
    def __init__(self):
        self.saved = None

    def save(self, name, payload):
        self.saved = (name, payload)


class RunLog:
    def __init__(self, fingerprint):
        self.fingerprint = fingerprint


def checkpoint(store, step):
    payload = {"step": step, "stamp": time.time()}  # expect: REP305
    store.save("anneal", payload)


def start_run(geometry):
    stamp = time.time()  # expect: REP305
    return RunLog({"geometry": geometry, "started": stamp})


REPRO_SIGNATURES = {
    "@deterministic": ["Store.save payload", "RunLog fingerprint"],
}
