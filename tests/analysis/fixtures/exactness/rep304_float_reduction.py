"""REP304: order-sensitive float accumulation reaching @exact sinks."""

import numpy as np


def total_charge(weights):
    scaled = np.asarray(weights, dtype=np.float64)
    return np.sum(scaled)  # expect: REP304


def running_sum(values):
    total = 0.0
    for value in values:
        total = total + value
    return total


def total_drift(values):
    return running_sum(values)  # expect: REP304


def total_count(flags):
    bits = np.asarray(flags, dtype=np.int64)
    return np.sum(bits)  # integer reduction: exact, order-free


REPRO_SIGNATURES = {
    "@exact": [
        "total_charge return",
        "total_drift return",
        "total_count return",
    ],
    "@order_sensitive": ["running_sum"],
}
