"""Helper half of the cross-module contamination pair (no sinks here)."""


def mean_rate(total, count):
    return total / count
