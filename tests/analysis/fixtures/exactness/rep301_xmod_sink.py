"""Sink half of the cross-module pair: the float division lives in
``rep301_xmod_helper`` and only becomes a violation here, where the
summary-inferred float reaches this module's @exact field."""

from rep301_xmod_helper import mean_rate


class GramAccumulator:
    def __init__(self):
        self._events = 0

    def fold(self, total, count):
        self._events = mean_rate(total, count)  # expect: REP301


REPRO_SIGNATURES = {"@exact": ["GramAccumulator._events"]}
