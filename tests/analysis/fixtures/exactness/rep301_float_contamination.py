"""REP301: an @exact accumulator picks up a float through division."""


class Counter:
    def __init__(self):
        self._total = 0

    def add(self, xs):
        weight = len(xs) / 2
        self._total = self._total + weight  # expect: REP301


REPRO_SIGNATURES = {"@exact": ["Counter._total"]}
