"""Deep-lint fixture (clean): produces a Maxwell-form matrix.

No ``REPRO_SIGNATURES`` annotation here — the flow pass must *infer* the
return form from the body so :mod:`xmod_consumer` can be flagged across
the module boundary.
"""

from repro.tsv.matrices import spice_to_maxwell


def field_solver_matrix(c_spice):
    return spice_to_maxwell(c_spice)
