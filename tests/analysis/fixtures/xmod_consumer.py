"""Deep-lint fixture: REP102 across a module boundary.

The bad value (a Maxwell-form matrix) is constructed in
:mod:`xmod_producer` — whose return type is inferred, not annotated — and
only consumed here, so the finding requires interprocedural propagation.
"""

from xmod_producer import field_solver_matrix

from repro.core.power import normalized_power
from repro.stats.switching import BitStatistics


def cross_module_power(stream, c_spice):
    stats = BitStatistics.from_stream(stream)
    c = field_solver_matrix(c_spice)
    return normalized_power(stats, c)  # expect: REP102
