"""Deep-lint flow pass: shape/unit lattices, fixtures, repo cleanliness."""

import io
import json
import re
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.findings import (
    Finding,
    render_github,
    render_sarif,
    rule_catalog,
)
from repro.analysis.flow import DEEP_RULES, analyze_paths, analyze_source
from repro.analysis.registry import build_registry, parse_spec
from repro.analysis.shapes import (
    ANY,
    broadcast_shapes,
    dim_of,
    matmul_shape,
    parse_dim,
    unify_shape,
)
from repro.analysis.units import UNIT_NAMES, mul_units

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures"
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_MARKER = re.compile(r"#\s*expect:\s*(REP\d{3})")


def expected_markers(path: Path):
    """``(rule, line)`` pairs declared by ``# expect: REPxxx`` comments."""
    pairs = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _MARKER.search(line)
        if match:
            pairs.append((match.group(1), lineno))
    return sorted(pairs)


@pytest.fixture(scope="module")
def fixture_findings():
    return analyze_paths([FIXTURE_DIR])


# -- the fixture corpus: each file triggers exactly its marked rules ----------


@pytest.mark.parametrize(
    "name", sorted(p.name for p in FIXTURE_DIR.glob("*.py"))
)
def test_fixture_triggers_exactly_its_markers(name, fixture_findings):
    path = FIXTURE_DIR / name
    flagged = sorted(
        (f.rule, f.line)
        for f in fixture_findings
        if Path(f.path).name == name
    )
    assert flagged == expected_markers(path)


def test_corpus_covers_every_deep_rule(fixture_findings):
    assert {f.rule for f in fixture_findings} == set(DEEP_RULES)


def test_cross_module_case_flags_the_consumer(fixture_findings):
    cross = [
        f for f in fixture_findings
        if Path(f.path).name == "xmod_consumer.py"
    ]
    assert len(cross) == 1
    assert cross[0].rule == "REP102"
    producer = [
        f for f in fixture_findings
        if Path(f.path).name == "xmod_producer.py"
    ]
    assert producer == []


# -- whole-package runs --------------------------------------------------------


def test_repository_sources_are_deep_clean():
    findings = analyze_paths([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_run_lint_deep_flags_fixture_and_exits_nonzero():
    stream = io.StringIO()
    bad = FIXTURE_DIR / "rep103_unit_mismatch.py"
    assert run_lint([str(bad)], deep=True, stream=stream) == 1
    assert "REP103" in stream.getvalue()
    clean = io.StringIO()
    assert run_lint([str(bad)], deep=False, stream=clean) == 0


# -- noqa suppression ----------------------------------------------------------


def test_deep_findings_respect_noqa():
    source = (
        "from repro.tsv.capmodel import epsilon_from_probabilities\n"
        "\n"
        "\n"
        "def bad():\n"
        "    return epsilon_from_probabilities([1.5])"
        "  # repro: noqa[REP104]\n"
    )
    assert analyze_source(source, "noqa_case.py") == []
    unsuppressed = source.replace("  # repro: noqa[REP104]", "")
    findings = analyze_source(unsuppressed, "noqa_case.py")
    assert [f.rule for f in findings] == ["REP104"]


# -- the lattices --------------------------------------------------------------


def test_symbolic_dims_unify_like_the_paper_quantities():
    n = parse_dim("N")
    two_n = parse_dim("2N")
    t = parse_dim("T")
    # (N, N) against a concrete (16, 16): N binds once, consistently.
    assert unify_shape((n, n), (dim_of(16), dim_of(16)), {})
    assert not unify_shape((n, n), (dim_of(16), dim_of(8)), {})
    # 2N demands divisibility; N vs T is rigidly distinct.
    assert unify_shape((two_n,), (dim_of(32),), {})
    assert not unify_shape((two_n,), (dim_of(7),), {})
    assert not unify_shape((n, n), (t, n), {})


def test_broadcast_and_matmul_shapes():
    n = parse_dim("N")
    t = parse_dim("T")
    shape, conflict = broadcast_shapes((n, dim_of(1)), (dim_of(1), n))
    assert shape == (n, n) and not conflict
    _, conflict = broadcast_shapes((n,), (t,))
    assert conflict
    shape, conflict = matmul_shape((n, n), (n,))
    assert shape == (n,) and not conflict
    _, conflict = matmul_shape((n, n), (t, n))
    assert conflict
    shape, _ = matmul_shape((n, n), (ANY, ANY))
    assert shape == (n, ANY)


def test_unit_algebra_derives_watts_from_c_v2_f():
    farad, volt = UNIT_NAMES["farad"], UNIT_NAMES["volt"]
    hertz, watt = UNIT_NAMES["hertz"], UNIT_NAMES["watt"]
    energy = mul_units(farad, mul_units(volt, volt))
    assert energy == UNIT_NAMES["joule"]
    assert mul_units(energy, hertz) == watt


# -- registry spec mini-language ----------------------------------------------


def test_parse_spec_alternatives_and_tags():
    fixed, model = parse_spec("(N, N) farad spice | LinearCapacitanceModel")
    assert fixed.unit == UNIT_NAMES["farad"]
    assert fixed.form == "spice"
    assert len(fixed.shape) == 2
    assert model.obj == "LinearCapacitanceModel"
    (prob,) = parse_spec("(N,) probability")
    assert prob.prob is True and prob.rng == (0.0, 1.0)
    (scalar,) = parse_spec("scalar watt")
    assert scalar.shape == () and scalar.unit == UNIT_NAMES["watt"]


def test_registry_knows_the_annotated_core():
    registry = build_registry()
    power = registry.function("repro.core.power.normalized_power")
    assert power is not None
    assert power.ret[0].unit == UNIT_NAMES["farad"]
    attr = registry.member_attribute("BitStatistics", "probabilities")
    assert attr is not None and attr.prob is True
    member = registry.member_function("LinearCapacitanceModel", "matrix")
    assert member is not None and member.ret[0].form == "spice"


# -- renderers -----------------------------------------------------------------


_SAMPLE = [
    Finding("src/x.py", 3, 4, "REP102", "maxwell where spice required"),
    Finding("src/x.py", 9, 0, "REP001", "unseeded rng, 100% wrong"),
]


def test_sarif_output_is_valid_and_declares_rules():
    log = json.loads(render_sarif(_SAMPLE))
    assert log["version"] == "2.1.0"
    run = log["runs"][0]
    declared = [rule["id"] for rule in run["tool"]["driver"]["rules"]]
    assert set(rule_catalog()) <= set(declared)
    results = run["results"]
    assert [r["ruleId"] for r in results] == ["REP102", "REP001"]
    location = results[0]["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/x.py"
    assert location["region"] == {"startLine": 3, "startColumn": 5}
    for result in results:
        assert declared[result["ruleIndex"]] == result["ruleId"]


def test_github_renderer_emits_escaped_workflow_commands():
    out = render_github(_SAMPLE).splitlines()
    assert out[0] == (
        "::error file=src/x.py,line=3,col=5,title=REP102"
        "::maxwell where spice required"
    )
    assert "%25" in out[1]  # '%' escaped per the workflow-command spec
    assert render_github([]) == ""


def test_rule_catalog_spans_both_families():
    catalog = rule_catalog()
    assert "REP001" in catalog and "REP104" in catalog
    assert catalog["REP102"] == DEEP_RULES["REP102"]
