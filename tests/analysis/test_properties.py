"""Property tests: round-trips and contract acceptance of valid instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.contracts import (
    check_capacitance_matrix,
    check_probabilities,
    check_signed_permutation,
    check_switching_matrix,
)
from repro.core.assignment import SignedPermutation
from repro.stats.switching import BitStatistics


@st.composite
def signed_permutations(draw, max_bits=8):
    n = draw(st.integers(min_value=1, max_value=max_bits))
    lines = draw(st.permutations(range(n)))
    inverted = draw(
        st.lists(st.booleans(), min_size=n, max_size=n)
    )
    return SignedPermutation(tuple(lines), tuple(inverted))


@given(signed_permutations())
def test_signed_permutation_roundtrips_through_matrix_form(perm):
    """Eq. 5: object -> A_pi matrix -> object is the identity."""
    recovered = SignedPermutation.from_matrix(perm.matrix())
    assert recovered == perm


@given(signed_permutations())
def test_matrix_form_is_orthogonal(perm):
    """A_pi^-1 = A_pi^T — the congruences of Eq. 4/9 preserve totals."""
    a = perm.matrix()
    assert np.allclose(a @ a.T, np.eye(perm.n_bits))
    assert np.allclose(perm.inverse().matrix(), a.T)


@given(signed_permutations())
def test_contract_accepts_every_valid_signed_permutation(perm):
    check_signed_permutation(perm)
    check_signed_permutation(perm.matrix())


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_contract_accepts_every_valid_probability_vector(n, seed):
    rng = np.random.default_rng(seed)
    check_probabilities(rng.uniform(0.0, 1.0, n))


@given(
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_contract_accepts_every_symmetric_nonnegative_matrix(n, seed):
    rng = np.random.default_rng(seed)
    raw = rng.uniform(0.0, 1.0, (n, n))
    check_capacitance_matrix((raw + raw.T) / 2.0)


@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=64),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_contract_accepts_statistics_of_any_real_bit_stream(
    n_lines, n_samples, seed
):
    """Empirical moments always satisfy the Eq. 3 consistency contract."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((n_samples, n_lines)) < rng.uniform(0.05, 0.95)).astype(
        np.uint8
    )
    stats = BitStatistics.from_stream(bits)
    check_switching_matrix(stats)


@settings(max_examples=50, deadline=None)
@given(
    signed_permutations(max_bits=6),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_line_statistics_stay_valid_under_any_assignment(perm, seed):
    """Eq. 4 transforms of valid statistics remain valid statistics."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((64, perm.n_bits)) < 0.5).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    check_switching_matrix(perm.apply_to_statistics(stats))
