"""Every rule the linter can emit is catalogued, SARIF-declared, documented."""

import json
from pathlib import Path

import pytest

from repro.analysis.concurrency import THREAD_RULES
from repro.analysis.exactness import EXACT_RULES
from repro.analysis.findings import render_sarif, rule_catalog
from repro.analysis.flow import DEEP_RULES
from repro.analysis.linter import ALL_RULES

DOCS = Path(__file__).resolve().parents[2] / "docs" / "static_analysis.md"


def all_rule_codes():
    codes = {rule_cls.code for rule_cls in ALL_RULES}
    codes |= set(DEEP_RULES)
    codes |= set(THREAD_RULES)
    codes |= set(EXACT_RULES)
    return sorted(codes)


@pytest.mark.parametrize("code", all_rule_codes())
def test_rule_has_catalog_entry(code):
    catalog = rule_catalog()
    assert code in catalog
    assert catalog[code].strip()


@pytest.mark.parametrize("code", all_rule_codes())
def test_rule_has_sarif_descriptor(code):
    sarif = json.loads(render_sarif([]))
    descriptors = {
        rule["id"]: rule
        for rule in sarif["runs"][0]["tool"]["driver"]["rules"]
    }
    assert code in descriptors
    assert descriptors[code]["shortDescription"]["text"].strip()


@pytest.mark.parametrize("code", all_rule_codes())
def test_rule_is_documented(code):
    assert code in DOCS.read_text(encoding="utf-8")


def test_catalog_has_no_orphan_entries():
    """The catalog lists exactly the rules some pass can emit."""
    assert sorted(rule_catalog()) == all_rule_codes()


def test_rule_families_do_not_collide():
    families = [
        {rule_cls.code for rule_cls in ALL_RULES},
        set(DEEP_RULES),
        set(THREAD_RULES),
        set(EXACT_RULES),
    ]
    seen = set()
    for family in families:
        assert not (family & seen)
        seen |= family
