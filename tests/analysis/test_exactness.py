"""Exactness pass: fixtures, repo cleanliness, annotations, lattices."""

import io
import re
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.exactness import (
    EXACT_RULES,
    analyze_exactness,
    analyze_exactness_source,
)
from repro.analysis.findings import rule_catalog
from repro.analysis.registry import SignatureRegistry

FIXTURE_DIR = (
    Path(__file__).resolve().parent / "fixtures" / "exactness"
)
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_MARKER = re.compile(r"#\s*expect:\s*(REP\d{3})")


def expected_markers(path: Path):
    """``(rule, line)`` pairs declared by ``# expect: REPxxx`` comments."""
    pairs = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _MARKER.search(line)
        if match:
            pairs.append((match.group(1), lineno))
    return sorted(pairs)


@pytest.fixture(scope="module")
def corpus_findings():
    return analyze_exactness([FIXTURE_DIR])


# -- the fixture corpus: each file triggers exactly its marked rules ----------


@pytest.mark.parametrize(
    "name", sorted(p.name for p in FIXTURE_DIR.glob("*.py"))
)
def test_fixture_triggers_exactly_its_markers(name, corpus_findings):
    path = FIXTURE_DIR / name
    flagged = sorted(
        (f.rule, f.line)
        for f in corpus_findings
        if Path(f.path).name == name
    )
    assert flagged == expected_markers(path)


def test_corpus_covers_every_exact_rule(corpus_findings):
    covered = {f.rule for f in corpus_findings}
    assert covered == set(EXACT_RULES)


def test_cross_module_contamination_fires_at_the_sink(corpus_findings):
    sink = [
        f for f in corpus_findings
        if Path(f.path).name == "rep301_xmod_sink.py"
    ]
    assert [f.rule for f in sink] == ["REP301"]
    helper = [
        f for f in corpus_findings
        if Path(f.path).name == "rep301_xmod_helper.py"
    ]
    assert helper == []  # the division alone is not a violation


# -- whole-package runs --------------------------------------------------------


def test_repository_sources_are_exact_clean():
    findings = analyze_exactness([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_run_lint_exact_flags_fixture_and_exits_nonzero():
    stream = io.StringIO()
    bad = FIXTURE_DIR / "rep301_float_contamination.py"
    assert run_lint([str(bad)], exact=True, stream=stream) == 1
    assert "REP301" in stream.getvalue()
    clean = io.StringIO()
    assert run_lint([str(bad)], exact=False, stream=clean) == 0


def test_run_lint_deep_includes_exact_findings():
    stream = io.StringIO()
    bad = FIXTURE_DIR / "rep306_float_tiebreak.py"
    assert run_lint([str(bad)], deep=True, stream=stream) == 1
    assert "REP306" in stream.getvalue()


def test_run_lint_exclude_drops_fixture_findings():
    stream = io.StringIO()
    code = run_lint(
        [str(FIXTURE_DIR)],
        exact=True,
        stream=stream,
        exclude=[str(FIXTURE_DIR)],
    )
    assert code == 0
    assert "REP3" not in stream.getvalue()


def test_rule_catalog_includes_exact_family():
    catalog = rule_catalog()
    for code, summary in EXACT_RULES.items():
        assert catalog[code] == summary


# -- noqa suppression ----------------------------------------------------------


def test_exact_findings_respect_noqa():
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def pick(scores):\n"
        "    values = np.asarray(scores, dtype=np.float64)\n"
        "    # Stable: enumeration order is documented lexicographic.\n"
        "    return int(np.argmin(values))  # repro: noqa[REP306]\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": ["pick"]}\n'
    )
    assert analyze_exactness_source(source, "noqa_case.py") == []
    unsuppressed = source.replace("  # repro: noqa[REP306]", "")
    findings = analyze_exactness_source(unsuppressed, "noqa_case.py")
    assert [f.rule for f in findings] == ["REP306"]


# -- lattice mechanics ---------------------------------------------------------


def test_int_cast_clears_contamination_but_not_order_sensitivity():
    contaminated = (
        "def scale(n):\n"
        "    return int(n * 0.5)\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@exact": ["scale return"]}\n'
    )
    assert analyze_exactness_source(contaminated, "cast.py") == []
    reduced = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def fold(xs):\n"
        "    return int(np.sum(np.asarray(xs, dtype=np.float64)))\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@exact": ["fold return"]}\n'
    )
    findings = analyze_exactness_source(reduced, "fold.py")
    assert [f.rule for f in findings] == ["REP304"]


def test_sorted_discharges_unordered_taint():
    source = (
        "def report(samples):\n"
        "    return [x for x in sorted(set(samples))]\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": ["report"]}\n'
    )
    assert analyze_exactness_source(source, "sorted.py") == []


def test_commutative_folds_over_sets_are_clean():
    source = (
        "def tally(samples):\n"
        "    seen = set(samples)\n"
        "    return {'n': len(seen), 'total': sum(seen), 'top': max(seen)}\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": ["tally"]}\n'
    )
    assert analyze_exactness_source(source, "folds.py") == []


def test_set_membership_does_not_taint():
    source = (
        "def free_lines(n, pinned):\n"
        "    used = set(pinned)\n"
        "    return [k for k in range(n) if k not in used]\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": ["free_lines"]}\n'
    )
    assert analyze_exactness_source(source, "member.py") == []


def test_listdir_without_sorted_is_unordered():
    source = (
        "import os\n"
        "\n"
        "\n"
        "def manifest(directory):\n"
        "    return list(os.listdir(directory))\n"
        "\n"
        "\n"
        "def manifest_sorted(directory):\n"
        "    return sorted(os.listdir(directory))\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": '
        '["manifest", "manifest_sorted"]}\n'
    )
    findings = analyze_exactness_source(source, "listdir.py")
    assert [(f.rule, f.line) for f in findings] == [("REP302", 5)]


def test_integer_gram_accumulation_is_exact():
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "class Account:\n"
        "    def __init__(self, n):\n"
        "        self._gram = np.zeros((n, n), dtype=np.int64)\n"
        "\n"
        "    def update(self, bits):\n"
        "        deltas = np.diff(bits.astype(np.int8), axis=0)\n"
        "        deltas = deltas.astype(np.int64)\n"
        "        self._gram += deltas.T @ deltas\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@exact": ["Account._gram"],\n'
        '                    "update": {"bits": "(T, N) bit"}}\n'
    )
    assert analyze_exactness_source(source, "gram.py") == []


def test_unannotated_zeros_default_dtype_contaminates():
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "class Account:\n"
        "    def __init__(self, n):\n"
        "        self._gram = np.zeros((n, n))\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@exact": ["Account._gram"]}\n'
    )
    findings = analyze_exactness_source(source, "zeros.py")
    assert [f.rule for f in findings] == ["REP301"]


def test_registry_unit_signatures_imply_float_keys():
    """A ``farad``-valued signature return is a float key for REP306."""
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def pick(compiled, chunk):\n"
        "    values = compiled.powers(chunk)\n"
        "    return int(np.argmin(values))\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@deterministic": ["pick"]}\n'
    )
    findings = analyze_exactness_source(source, "units.py")
    assert [f.rule for f in findings] == ["REP306"]


# -- annotation mini-language --------------------------------------------------


def test_exactness_entries_normalize_module_forms():
    registry = SignatureRegistry()
    registry.add_module_signatures(
        "pkg.mod",
        {
            "@exact": [
                "Account._gram",
                "Account.update bits",
                "validate return",
            ],
            "@deterministic": ["report", "Store.save payload"],
            "@order_sensitive": ["normalized_power"],
        },
    )
    assert "Account._gram" in registry.exact_attrs
    assert "pkg.mod.Account._gram" in registry.exact_attrs
    assert registry.exact_params["Account.update"] == {"bits"}
    assert "validate" in registry.exact_returns
    assert "pkg.mod.validate" in registry.exact_returns
    assert "report" in registry.deterministic_returns
    assert registry.deterministic_params["Store.save"] == {"payload"}
    assert "normalized_power" in registry.order_sensitive
    assert "pkg.mod.normalized_power" in registry.order_sensitive


def test_malformed_exactness_entries_are_rejected():
    registry = SignatureRegistry()
    with pytest.raises(ValueError, match="@exact"):
        registry.add_module_signatures(
            "pkg.mod", {"@exact": ["Account._gram is exact"]}
        )
    with pytest.raises(ValueError, match="@exact"):
        # A bare @exact token must be a Class.attr field.
        registry.add_module_signatures(
            "pkg.mod", {"@exact": ["validate"]}
        )
    with pytest.raises(ValueError, match="@deterministic"):
        registry.add_module_signatures(
            "pkg.mod", {"@deterministic": ["not a name!"]}
        )
    with pytest.raises(ValueError, match="@order_sensitive"):
        registry.add_module_signatures(
            "pkg.mod", {"@order_sensitive": ["f g"]}
        )
