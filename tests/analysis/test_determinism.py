"""Double-run determinism: what `lint --exact` proves, replayed end to end.

The REP3xx pass statically proves the optimizer and the serve layer free
of run-dependent inputs (set order, wall clock, float tie-breaks, shared
RNGs). These tests are the runtime counterpart: run the same seeded
search or the same stream twice and demand *byte-identical* serialized
output, not just numerical closeness.
"""

import json

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.reporting import assignment_to_json
from repro.serve.session import LinkConfig, LinkSession
from repro.stats.switching import BitStatistics
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

N_LINES = 4
GEOMETRY = TSVArrayGeometry(rows=2, cols=2, pitch=8e-6, radius=2e-6)
CAPACITANCE = CapacitanceExtractor(GEOMETRY, method="compact").extract()


def small_model(seed: int) -> PowerModel:
    rng = np.random.default_rng(seed)
    bits = (
        rng.random((200, N_LINES)) < rng.uniform(0.2, 0.8, N_LINES)
    ).astype(np.uint8)
    return PowerModel(BitStatistics.from_stream(bits), CAPACITANCE)


def run_search(data_seed: int, search_seed: int):
    result = simulated_annealing(
        small_model(data_seed),
        N_LINES,
        rng=np.random.default_rng(search_seed),
        n_restarts=2,
        cooling=0.7,
    )
    return assignment_to_json(result.assignment), result.power


class TestDoubleRunDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        data_seed=st.integers(0, 2**16),
        search_seed=st.integers(0, 2**16),
    )
    def test_optimize_report_is_byte_identical(
        self, data_seed, search_seed
    ):
        first_json, first_power = run_search(data_seed, search_seed)
        second_json, second_power = run_search(data_seed, search_seed)
        assert first_json == second_json
        # Same chain, same pricing path: the power is bit-equal too.
        assert first_power == second_power

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16), batches=st.integers(1, 4))
    def test_session_energy_report_is_byte_identical(self, seed, batches):
        config = LinkConfig.from_dict(
            {
                "width": 3,
                "geometry": {
                    "rows": 2, "cols": 2, "pitch": 8e-6, "radius": 2e-6,
                },
                "codecs": [{"kind": "businvert"}],
            }
        )
        rng = np.random.default_rng(seed)
        stream = [
            rng.integers(0, 2**3, size=16, dtype=np.uint64)
            for _ in range(batches)
        ]

        def run_once():
            session = LinkSession(config)
            for words in stream:
                coded = session.encode(words)
                np.testing.assert_array_equal(session.decode(coded), words)
            return json.dumps(session.energy_report(), sort_keys=True)

        assert run_once() == run_once()
