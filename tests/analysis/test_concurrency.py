"""Concurrency pass: fixtures, repo cleanliness, annotations, REP007."""

import io
import re
from pathlib import Path

import pytest

from repro.analysis import run_lint
from repro.analysis.concurrency import (
    THREAD_RULES,
    analyze_thread_source,
    analyze_threads,
)
from repro.analysis.findings import rule_catalog
from repro.analysis.linter import DaemonThreadRule, lint_paths, lint_source
from repro.analysis.registry import SignatureRegistry

FIXTURE_DIR = (
    Path(__file__).resolve().parent / "fixtures" / "concurrency"
)
REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"

_MARKER = re.compile(r"#\s*expect:\s*(REP\d{3})")


def expected_markers(path: Path):
    """``(rule, line)`` pairs declared by ``# expect: REPxxx`` comments."""
    pairs = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        match = _MARKER.search(line)
        if match:
            pairs.append((match.group(1), lineno))
    return sorted(pairs)


@pytest.fixture(scope="module")
def corpus_findings():
    """Deep REP20x findings plus the shallow REP007 family, merged."""
    deep = analyze_threads([FIXTURE_DIR])
    shallow = [f for f in lint_paths([FIXTURE_DIR]) if f.rule == "REP007"]
    return deep + shallow


# -- the fixture corpus: each file triggers exactly its marked rules ----------


@pytest.mark.parametrize(
    "name", sorted(p.name for p in FIXTURE_DIR.glob("*.py"))
)
def test_fixture_triggers_exactly_its_markers(name, corpus_findings):
    path = FIXTURE_DIR / name
    flagged = sorted(
        (f.rule, f.line)
        for f in corpus_findings
        if Path(f.path).name == name
    )
    assert flagged == expected_markers(path)


def test_corpus_covers_every_thread_rule(corpus_findings):
    covered = {f.rule for f in corpus_findings}
    assert covered == set(THREAD_RULES) | {"REP007"}


def test_cross_module_cycle_flags_both_sides(corpus_findings):
    for name in ("rep203_xmod_a.py", "rep203_xmod_b.py"):
        cross = [
            f for f in corpus_findings if Path(f.path).name == name
        ]
        assert [f.rule for f in cross] == ["REP203"]


# -- whole-package runs --------------------------------------------------------


def test_repository_sources_are_thread_clean():
    findings = analyze_threads([REPO_SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_run_lint_threads_flags_fixture_and_exits_nonzero():
    stream = io.StringIO()
    bad = FIXTURE_DIR / "rep204_blocking_under_lock.py"
    assert run_lint([str(bad)], threads=True, stream=stream) == 1
    assert "REP204" in stream.getvalue()
    clean = io.StringIO()
    assert run_lint([str(bad)], threads=False, stream=clean) == 0


def test_run_lint_exclude_drops_fixture_findings():
    """CI lints tests/ with the rule-bad fixture corpora excluded."""
    stream = io.StringIO()
    code = run_lint(
        [str(FIXTURE_DIR)],
        threads=True,
        stream=stream,
        exclude=[str(FIXTURE_DIR)],
    )
    assert code == 0
    assert "REP2" not in stream.getvalue()


def test_run_lint_deep_includes_thread_findings():
    stream = io.StringIO()
    bad = FIXTURE_DIR / "rep201_unguarded_write.py"
    assert run_lint([str(bad)], deep=True, stream=stream) == 1
    assert "REP201" in stream.getvalue()


def test_rule_catalog_includes_thread_family():
    catalog = rule_catalog()
    assert catalog["REP203"] == THREAD_RULES["REP203"]
    assert catalog["REP007"] == DaemonThreadRule.summary


# -- noqa suppression ----------------------------------------------------------


def test_thread_findings_respect_noqa():
    source = (
        "import threading\n"
        "\n"
        "\n"
        "class Box:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.item = None\n"
        "\n"
        "    def put(self, item):\n"
        "        self.item = item  # repro: noqa[REP201] benign tearing\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@guards": ["Box.item guarded_by _lock"],\n'
        '                    "@threads": ["Box"]}\n'
    )
    assert analyze_thread_source(source, "noqa_case.py") == []
    unsuppressed = source.replace("  # repro: noqa[REP201] benign tearing", "")
    findings = analyze_thread_source(unsuppressed, "noqa_case.py")
    assert [f.rule for f in findings] == ["REP201"]


# -- lockset mechanics ---------------------------------------------------------


def test_acquire_release_pairs_track_the_lockset():
    source = (
        "import threading\n"
        "import time\n"
        "\n"
        "_lock = threading.Lock()\n"
        "\n"
        "\n"
        "def locked_sleep():\n"
        "    _lock.acquire()\n"
        "    time.sleep(0.1)\n"
        "    _lock.release()\n"
        "\n"
        "\n"
        "def free_sleep():\n"
        "    _lock.acquire()\n"
        "    _lock.release()\n"
        "    time.sleep(0.1)\n"
    )
    findings = analyze_thread_source(source, "acquire.py")
    assert [(f.rule, f.line) for f in findings] == [("REP204", 9)]


def test_try_finally_release_is_understood():
    source = (
        "import threading\n"
        "import time\n"
        "\n"
        "_lock = threading.Lock()\n"
        "\n"
        "\n"
        "def careful():\n"
        "    _lock.acquire()\n"
        "    try:\n"
        "        time.sleep(0.1)\n"
        "    finally:\n"
        "        _lock.release()\n"
        "    time.sleep(0.2)\n"
    )
    findings = analyze_thread_source(source, "finally.py")
    assert [(f.rule, f.line) for f in findings] == [("REP204", 10)]


def test_async_with_is_not_a_thread_lock():
    source = (
        "import time\n"
        "\n"
        "\n"
        "async def handler(write_lock):\n"
        "    async with write_lock:\n"
        "        time.sleep(0.0)\n"
    )
    assert analyze_thread_source(source, "asynccase.py") == []


def test_double_checked_setdefault_is_clean():
    source = (
        "import threading\n"
        "\n"
        "\n"
        "class Cache:\n"
        "    _data = {}\n"
        "    _lock = threading.Lock()\n"
        "\n"
        "    def get(self, key):\n"
        "        with self._lock:\n"
        "            value = self._data.get(key)\n"
        "        if value is None:\n"
        "            built = object()\n"
        "            with self._lock:\n"
        "                value = self._data.setdefault(key, built)\n"
        "        return value\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@guards": ["Cache._data guarded_by _lock"],\n'
        '                    "@threads": ["Cache"]}\n'
    )
    assert analyze_thread_source(source, "setdefault.py") == []


def test_private_helper_inherits_call_site_lockset():
    source = (
        "import threading\n"
        "\n"
        "\n"
        "class Meter:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._events = []\n"
        "\n"
        "    def add(self, x):\n"
        "        with self._lock:\n"
        "            self._events.append(x)\n"
        "            self._prune()\n"
        "\n"
        "    def _prune(self):\n"
        "        del self._events[:1]\n"
        "\n"
        "\n"
        'REPRO_SIGNATURES = {"@guards": ["Meter._events guarded_by _lock"],\n'
        '                    "@threads": ["Meter"]}\n'
    )
    assert analyze_thread_source(source, "refine.py") == []


# -- annotation mini-language --------------------------------------------------


def test_guards_entries_normalize_class_and_module_forms():
    registry = SignatureRegistry()
    registry.add_module_signatures(
        "pkg.mod",
        {
            "@guards": [
                "Engine._queue guarded_by _lock",
                "_plan guarded_by _plan_lock",
            ],
            "@threads": ["Engine.worker", "helper"],
            "@blocking": ["slow_call"],
        },
    )
    assert registry.guards["Engine._queue"] == "Engine._lock"
    assert registry.guards["pkg.mod._plan"] == "pkg.mod._plan_lock"
    assert registry.thread_entries == {"Engine.worker", "helper"}
    assert registry.blocking == {"slow_call"}


def test_malformed_guards_entry_is_rejected():
    registry = SignatureRegistry()
    with pytest.raises(ValueError, match="guarded_by"):
        registry.add_module_signatures(
            "pkg.mod", {"@guards": ["Engine._queue by _lock"]}
        )
    with pytest.raises(ValueError, match="directive"):
        registry.add_module_signatures("pkg.mod", {"@wat": ["x"]})


# -- REP007 (shallow) ----------------------------------------------------------


def test_rep007_flags_unjoined_daemon_thread():
    source = (
        "import threading\n"
        "\n"
        "t = threading.Thread(target=print, daemon=True)\n"
        "t.start()\n"
    )
    findings = lint_source(source, "daemon.py", rules=[DaemonThreadRule])
    assert [f.rule for f in findings] == ["REP007"]


def test_rep007_accepts_join_or_atexit():
    joined = (
        "import threading\n"
        "\n"
        "t = threading.Thread(target=print, daemon=True)\n"
        "t.start()\n"
        "t.join(timeout=1.0)\n"
    )
    assert lint_source(joined, "ok.py", rules=[DaemonThreadRule]) == []
    hooked = (
        "import atexit\n"
        "import threading\n"
        "\n"
        "t = threading.Thread(target=print, daemon=True)\n"
        "t.start()\n"
        "atexit.register(t.join)\n"
    )
    assert lint_source(hooked, "ok2.py", rules=[DaemonThreadRule]) == []
    non_daemon = (
        "import threading\n"
        "\n"
        "t = threading.Thread(target=print)\n"
        "t.start()\n"
    )
    assert lint_source(non_daemon, "ok3.py", rules=[DaemonThreadRule]) == []
