"""Tests for the crosstalk-avoidance codebooks."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.cac import (
    Codebook,
    adjacency_pairs,
    build_lat_codebook,
    smallest_array_for_payload,
)
from repro.si.delay import effective_capacitance
from repro.tsv.geometry import TSVArrayGeometry


def geom(rows=3, cols=3):
    return TSVArrayGeometry(rows=rows, cols=cols, pitch=4e-6, radius=1e-6)


class TestAdjacency:
    def test_pair_count_3x3(self):
        pairs = adjacency_pairs(geom())
        assert len(pairs) == 12  # 6 horizontal + 6 vertical
        assert all(i < j for i, j in pairs)

    def test_diagonals_add_pairs(self):
        with_diag = adjacency_pairs(geom(), include_diagonal=True)
        assert len(with_diag) == 12 + 8


class TestBuild:
    def test_3x3_codebook_size(self):
        codebook = build_lat_codebook(geom())
        assert len(codebook.codewords) >= 32  # at least 5 payload bits
        assert codebook.payload_bits >= 5
        codebook.check()

    def test_no_opposite_adjacent_transitions(self):
        codebook = build_lat_codebook(geom(2, 2))
        bits = np.array(
            [[(w >> k) & 1 for k in range(4)] for w in codebook.codewords],
            dtype=np.int8,
        )
        pairs = adjacency_pairs(geom(2, 2))
        for a in range(len(bits)):
            for b in range(len(bits)):
                delta = bits[b] - bits[a]
                for i, j in pairs:
                    assert delta[i] * delta[j] != -1

    def test_refuses_huge_arrays(self):
        with pytest.raises(ValueError):
            build_lat_codebook(geom(4, 4), max_lines=10)

    def test_diagonal_constraint_shrinks_codebook(self):
        plain = build_lat_codebook(geom())
        strict = build_lat_codebook(geom(), include_diagonal=True)
        assert len(strict.codewords) <= len(plain.codewords)


class TestCodebookUse:
    @pytest.fixture(scope="class")
    def codebook(self):
        return build_lat_codebook(geom())

    def test_roundtrip(self, codebook):
        rng = np.random.default_rng(0)
        payload = rng.integers(0, 1 << codebook.payload_bits, 500)
        coded = codebook.encode(payload)
        np.testing.assert_array_equal(codebook.decode(coded), payload)

    def test_encode_rejects_overflow(self, codebook):
        with pytest.raises(ValueError):
            codebook.encode(np.array([1 << codebook.payload_bits]))
        with pytest.raises(ValueError):
            codebook.encode(np.array([-1]))

    def test_decode_rejects_non_codeword(self, codebook):
        non_words = set(range(1 << 9)) - set(codebook.codewords)
        bad = next(iter(non_words))
        with pytest.raises(ValueError):
            codebook.decode(np.array([bad]))

    def test_overhead(self, codebook):
        assert codebook.overhead == pytest.approx(9 / codebook.payload_bits)

    def test_empty_payload_overhead_is_inf(self):
        cb = Codebook(codewords=(0,), n_lines=2, pairs=((0, 1),))
        assert cb.overhead == float("inf")

    def test_bounds_miller_capacitance(self, codebook):
        """The point of the code: no 2x-Miller event on adjacent TSVs, so
        the worst effective capacitance over codeword transitions is lower
        than the unconstrained worst case."""
        from repro.tsv.extractor import CapacitanceExtractor

        g = geom()
        cap = CapacitanceExtractor(g, method="compact").extract()
        rng = np.random.default_rng(1)
        payload = rng.integers(0, 1 << codebook.payload_bits, 300)
        bits = codebook.to_bits(codebook.encode(payload))
        deltas = np.unique(np.diff(bits.astype(np.int8), axis=0), axis=0)
        worst_coded = max(
            float(effective_capacitance(cap, d.astype(float)).max())
            for d in deltas if d.any()
        )
        # Unconstrained anti-parallel worst case on the same array.
        from repro.si.delay import worst_case_delay_pattern

        worst_plain = max(
            float(effective_capacitance(
                cap, worst_case_delay_pattern(cap, line)
            )[line])
            for line in range(9)
        )
        assert worst_coded < 0.8 * worst_plain


class TestSmallestArray:
    def test_finds_array_for_small_payloads(self):
        geometry, codebook = smallest_array_for_payload(4, 4e-6, 1e-6)
        assert codebook.payload_bits >= 4
        assert geometry.n_tsvs > 4  # redundancy is unavoidable

    def test_rejects_impossible_payload(self):
        with pytest.raises(ValueError):
            smallest_array_for_payload(12, 4e-6, 1e-6, max_lines=10)

    def test_rejects_bad_payload(self):
        with pytest.raises(ValueError):
            smallest_array_for_payload(0, 4e-6, 1e-6)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_random_payload_roundtrip_2x2(seed):
    codebook = build_lat_codebook(geom(2, 2))
    rng = np.random.default_rng(seed)
    payload = rng.integers(0, 1 << codebook.payload_bits, 50)
    assert (codebook.decode(codebook.encode(payload)) == payload).all()
