"""Round-trip property tests: every coder has an exact inverse.

Satellite of the serving PR: ``decode(encode(x)) == x`` must hold for
*arbitrary* streams and bus widths — the serving layer leans on these
inverses for its own guarantee. Also pins the width contract: all word
coders transport words in int64, so widths beyond ``MAX_WORD_WIDTH`` (62)
raise a clean ``ValueError`` up front instead of the opaque
``OverflowError`` mid-encode they used to.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.businvert import (
    MAX_WORD_WIDTH,
    bus_invert_decode,
    bus_invert_encode,
    coupling_invert_decode,
    coupling_invert_encode,
)
from repro.coding.cac import build_lat_codebook
from repro.coding.correlator import correlate_words, decorrelate_words
from repro.coding.gray import gray_decode_words, gray_encode_words
from repro.tsv.geometry import TSVArrayGeometry


def word_streams(max_width=MAX_WORD_WIDTH, max_len=200):
    """Strategy: (words, width) with words valid for the width."""
    return st.integers(1, max_width).flatmap(
        lambda width: st.lists(
            st.integers(0, (1 << width) - 1), min_size=0, max_size=max_len
        ).map(lambda xs: (np.asarray(xs, dtype=np.int64), width))
    )


class TestGrayRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(word_streams(), st.booleans())
    def test_exact_inverse(self, stream, negated):
        words, width = stream
        coded = gray_encode_words(words, width, negated=negated)
        np.testing.assert_array_equal(
            gray_decode_words(coded, width, negated=negated), words
        )

    @settings(max_examples=60, deadline=None)
    @given(word_streams(), st.booleans())
    def test_code_stays_in_width(self, stream, negated):
        words, width = stream
        coded = gray_encode_words(words, width, negated=negated)
        assert ((coded >= 0) & (coded < (1 << width))).all()


class TestCorrelatorRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(word_streams(), st.integers(1, 5), st.booleans())
    def test_exact_inverse(self, stream, n_channels, negated):
        words, width = stream
        coded = correlate_words(
            words, width, n_channels=n_channels, negated=negated
        )
        np.testing.assert_array_equal(
            decorrelate_words(
                coded, width, n_channels=n_channels, negated=negated
            ),
            words,
        )


class TestInvertRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(word_streams(max_width=MAX_WORD_WIDTH - 1))
    def test_bus_invert_exact_inverse(self, stream):
        words, width = stream
        coded, flags = bus_invert_encode(words, width)
        np.testing.assert_array_equal(
            bus_invert_decode(coded, flags, width), words
        )

    @settings(max_examples=40, deadline=None)
    @given(word_streams(max_width=9, max_len=120))
    def test_coupling_invert_exact_inverse(self, stream):
        words, width = stream
        coded, flags = coupling_invert_encode(words, width)
        np.testing.assert_array_equal(
            coupling_invert_decode(coded, flags, width), words
        )


class TestCacRoundTrip:
    @pytest.mark.parametrize("rows,cols", [(2, 2), (2, 3), (3, 3)])
    def test_exact_inverse_over_full_payload_space(self, rows, cols):
        geometry = TSVArrayGeometry(
            rows=rows, cols=cols, pitch=4.0e-6, radius=1.0e-6
        )
        codebook = build_lat_codebook(geometry)
        payloads = np.arange(1 << codebook.payload_bits)
        coded = codebook.encode(payloads)
        np.testing.assert_array_equal(codebook.decode(coded), payloads)


class TestWidthGuards:
    """Widths beyond the int64 transport raise ValueError, not Overflow."""

    @pytest.mark.parametrize("width", [0, -1, MAX_WORD_WIDTH + 1, 64, 70])
    def test_gray(self, width):
        with pytest.raises(ValueError, match="width"):
            gray_encode_words(np.array([0]), width)
        with pytest.raises(ValueError, match="width"):
            gray_decode_words(np.array([0]), width)

    @pytest.mark.parametrize("width", [0, MAX_WORD_WIDTH + 1, 64])
    def test_correlator(self, width):
        with pytest.raises(ValueError, match="width"):
            correlate_words(np.array([0]), width)
        with pytest.raises(ValueError, match="width"):
            decorrelate_words(np.array([0]), width)

    @pytest.mark.parametrize("width", [0, MAX_WORD_WIDTH + 1, 64])
    def test_businvert(self, width):
        with pytest.raises(ValueError, match="width"):
            bus_invert_encode(np.array([0]), width)

    def test_max_width_still_works(self):
        top = (1 << MAX_WORD_WIDTH) - 1
        words = np.array([0, top, top // 3], dtype=np.int64)
        coded = gray_encode_words(words, MAX_WORD_WIDTH, negated=True)
        np.testing.assert_array_equal(
            gray_decode_words(coded, MAX_WORD_WIDTH, negated=True), words
        )
