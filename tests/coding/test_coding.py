"""Tests for Gray, correlator and invert codings."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.coding.businvert import (
    bus_invert_decode,
    bus_invert_encode,
    coded_bit_stream,
    coupling_invert_decode,
    coupling_invert_encode,
    coupling_transition_cost,
)
from repro.coding.correlator import correlate_words, decorrelate_words
from repro.coding.gray import gray_decode_words, gray_encode_words
from repro.datagen.gaussian import ar1_gaussian_words
from repro.datagen.random_stream import uniform_random_words
from repro.datagen.util import words_to_bits
from repro.stats.switching import BitStatistics


class TestGray:
    def test_known_values(self):
        words = np.arange(8)
        gray = gray_encode_words(words, 3)
        np.testing.assert_array_equal(gray, [0, 1, 3, 2, 6, 7, 5, 4])

    def test_adjacent_words_differ_in_one_bit(self):
        gray = gray_encode_words(np.arange(256), 8)
        diff = gray[1:] ^ gray[:-1]
        assert (np.bitwise_count(diff.astype(np.uint64)) == 1).all()

    def test_negated_is_complement(self):
        words = np.arange(16)
        plain = gray_encode_words(words, 4)
        negated = gray_encode_words(words, 4, negated=True)
        np.testing.assert_array_equal(negated, plain ^ 0xF)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            gray_encode_words(np.array([-1]), 4)
        with pytest.raises(ValueError):
            gray_encode_words(np.array([16]), 4)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 255), min_size=1, max_size=50),
           st.booleans())
    def test_roundtrip(self, values, negated):
        words = np.array(values, dtype=np.int64)
        coded = gray_encode_words(words, 8, negated=negated)
        back = gray_decode_words(coded, 8, negated=negated)
        np.testing.assert_array_equal(back, words)

    def test_gray_reduces_switching_of_gaussian_msbs(self):
        """The Sec. 6 motivation: Gray-coded normally distributed words have
        MSBs nearly stable (at 0 plain, at 1 negated)."""
        rng = np.random.default_rng(0)
        words = ar1_gaussian_words(20000, 8, sigma=20.0, rho=0.0, rng=rng)
        unsigned = np.where(words < 0, words + 256, words)
        plain_stats = BitStatistics.from_stream(words_to_bits(unsigned, 8))
        gray = gray_encode_words(unsigned, 8)
        gray_stats = BitStatistics.from_stream(words_to_bits(gray, 8))
        assert gray_stats.self_switching[6] < 0.3 * plain_stats.self_switching[6]
        assert gray_stats.probabilities[6] < 0.2

        negated = gray_encode_words(unsigned, 8, negated=True)
        neg_stats = BitStatistics.from_stream(words_to_bits(negated, 8))
        np.testing.assert_allclose(
            neg_stats.self_switching, gray_stats.self_switching, atol=1e-12
        )
        assert neg_stats.probabilities[6] > 0.8


class TestCorrelator:
    def test_first_samples_pass_through(self):
        words = np.array([5, 9, 12, 7])
        coded = correlate_words(words, 4, n_channels=2)
        assert coded[0] == 5 and coded[1] == 9
        assert coded[2] == 12 ^ 5 and coded[3] == 7 ^ 9

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=60),
        st.integers(1, 4),
        st.booleans(),
    )
    def test_roundtrip(self, values, n_channels, negated):
        words = np.array(values, dtype=np.int64)
        coded = correlate_words(words, 8, n_channels=n_channels, negated=negated)
        back = decorrelate_words(coded, 8, n_channels=n_channels, negated=negated)
        np.testing.assert_array_equal(back, words)

    def test_correlator_quiets_correlated_stream(self):
        """Consecutive similar samples XOR to mostly-zero words."""
        rng = np.random.default_rng(1)
        base = ar1_gaussian_words(10000, 8, sigma=30.0, rho=0.97, rng=rng)
        unsigned = np.where(base < 0, base + 256, base)
        coded = correlate_words(unsigned, 8)
        plain_stats = BitStatistics.from_stream(words_to_bits(unsigned, 8))
        coded_stats = BitStatistics.from_stream(words_to_bits(coded, 8))
        assert coded_stats.probabilities[7] < 0.2
        assert (coded_stats.self_switching.mean()
                < plain_stats.self_switching.mean() + 0.05)

    def test_negated_flips_probabilities(self):
        rng = np.random.default_rng(2)
        base = ar1_gaussian_words(10000, 8, sigma=30.0, rho=0.97, rng=rng)
        unsigned = np.where(base < 0, base + 256, base)
        plain = correlate_words(unsigned, 8)
        negated = correlate_words(unsigned, 8, negated=True)
        p_plain = BitStatistics.from_stream(words_to_bits(plain, 8))
        p_neg = BitStatistics.from_stream(words_to_bits(negated, 8))
        np.testing.assert_allclose(
            p_neg.self_switching, p_plain.self_switching, atol=0.01
        )
        assert p_neg.probabilities[7] > 1.0 - p_plain.probabilities[7] - 0.05

    def test_validation(self):
        with pytest.raises(ValueError):
            correlate_words(np.array([1]), 4, n_channels=0)
        with pytest.raises(ValueError):
            correlate_words(np.array([[1]]), 4)


class TestBusInvert:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 127), min_size=1, max_size=80))
    def test_roundtrip(self, values):
        words = np.array(values, dtype=np.int64)
        coded, flags = bus_invert_encode(words, 7)
        np.testing.assert_array_equal(bus_invert_decode(coded, flags, 7), words)

    def test_limits_transitions(self):
        """No transmitted transition may flip more than width/2 data bits."""
        rng = np.random.default_rng(3)
        words = uniform_random_words(500, 8, rng)
        coded, _ = bus_invert_encode(words, 8)
        prev = 0
        for word in coded:
            distance = bin(int(prev) ^ int(word)).count("1")
            assert distance <= 4
            prev = word

    def test_flag_mismatch_rejected(self):
        with pytest.raises(ValueError):
            bus_invert_decode(np.array([1, 2]), np.array([0]), 4)


class TestCouplingInvert:
    def test_cost_classes(self):
        # Two adjacent wires toggling in opposite directions: cost 2.
        assert coupling_transition_cost(0b01, 0b10, 2) == 2
        # Same direction: free.
        assert coupling_transition_cost(0b00, 0b11, 2) == 0
        # Single toggle next to a quiet wire: cost 1.
        assert coupling_transition_cost(0b00, 0b01, 2) == 1
        # Quiet bus: free.
        assert coupling_transition_cost(0b10, 0b10, 2) == 0

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 127), min_size=1, max_size=80))
    def test_roundtrip(self, values):
        words = np.array(values, dtype=np.int64)
        coded, flags = coupling_invert_encode(words, 7)
        back = coupling_invert_decode(coded, flags, 7)
        np.testing.assert_array_equal(back, words)

    def test_reduces_planar_coupling_cost(self):
        rng = np.random.default_rng(4)
        words = uniform_random_words(2000, 7, rng)
        coded, flags = coupling_invert_encode(words, 7)

        def stream_cost(stream_words, flag_bits):
            total, prev = 0, 0
            for word, flag in zip(stream_words, flag_bits):
                state = int(word) | (int(flag) << 7)
                total += coupling_transition_cost(prev, state, 8)
                prev = state
            return total

        plain_cost = stream_cost(words, np.zeros(len(words), dtype=int))
        coded_cost = stream_cost(coded, flags)
        assert coded_cost < plain_cost

    def test_coded_bit_stream_layout(self):
        words = np.array([3, 3], dtype=np.int64)
        coded, flags = coupling_invert_encode(words, 4)
        bits = coded_bit_stream(coded, flags, 4)
        assert bits.shape == (2, 5)
        np.testing.assert_array_equal(bits[:, 4], flags)
