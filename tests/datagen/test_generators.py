"""Tests for the stream generators (gaussian, sequential, images, mems,
random)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen import images, mems
from repro.datagen.gaussian import (
    ar1_gaussian_samples,
    ar1_gaussian_words,
    gaussian_bit_stream,
)
from repro.datagen.random_stream import uniform_random_bits, uniform_random_words
from repro.datagen.sequential import program_counter_bits, program_counter_words
from repro.stats.switching import BitStatistics


class TestGaussian:
    def test_moments(self):
        rng = np.random.default_rng(0)
        x = ar1_gaussian_samples(40000, sigma=10.0, rho=0.5, mean=3.0, rng=rng)
        assert x.mean() == pytest.approx(3.0, abs=0.3)
        assert x.std() == pytest.approx(10.0, rel=0.05)
        corr = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert corr == pytest.approx(0.5, abs=0.03)

    def test_negative_rho(self):
        rng = np.random.default_rng(1)
        x = ar1_gaussian_samples(40000, sigma=5.0, rho=-0.6, rng=rng)
        corr = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert corr == pytest.approx(-0.6, abs=0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            ar1_gaussian_samples(0, sigma=1.0)
        with pytest.raises(ValueError):
            ar1_gaussian_samples(10, sigma=-1.0)
        with pytest.raises(ValueError):
            ar1_gaussian_samples(10, sigma=1.0, rho=1.0)

    def test_words_within_range(self):
        rng = np.random.default_rng(2)
        words = ar1_gaussian_words(1000, 8, sigma=1000.0, rng=rng)
        assert words.max() <= 127 and words.min() >= -128

    def test_bit_stream_shape(self):
        rng = np.random.default_rng(3)
        bits = gaussian_bit_stream(100, 12, sigma=50.0, rng=rng)
        assert bits.shape == (100, 12)
        assert set(np.unique(bits)) <= {0, 1}


class TestSequential:
    def test_pure_counter(self):
        words = program_counter_words(100, 8, branch_probability=0.0,
                                      rng=np.random.default_rng(0))
        diffs = np.diff(words) % 256
        assert (diffs == 1).all()

    def test_wraps_modulo(self):
        words = program_counter_words(1000, 4, 0.0, np.random.default_rng(1))
        assert words.max() <= 15 and words.min() >= 0

    def test_full_branching_is_uniform(self):
        rng = np.random.default_rng(2)
        words = program_counter_words(50000, 4, 1.0, rng)
        counts = np.bincount(words, minlength=16)
        assert counts.min() > 0.8 * counts.mean()

    def test_msb_activity_grows_with_branching(self):
        rng = np.random.default_rng(3)
        quiet = BitStatistics.from_stream(
            program_counter_bits(20000, 16, 0.01, rng)
        )
        noisy = BitStatistics.from_stream(
            program_counter_bits(20000, 16, 0.8, rng)
        )
        assert quiet.self_switching[-1] < noisy.self_switching[-1]

    def test_bit_probabilities_balanced(self):
        rng = np.random.default_rng(4)
        stats = BitStatistics.from_stream(
            program_counter_bits(40000, 8, 0.1, rng)
        )
        np.testing.assert_allclose(stats.probabilities, 0.5, atol=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            program_counter_words(0, 8, 0.5)
        with pytest.raises(ValueError):
            program_counter_words(10, 0, 0.5)
        with pytest.raises(ValueError):
            program_counter_words(10, 8, 1.5)


class TestImages:
    def test_scene_range_and_shape(self):
        scene = images.synthetic_scene(32, 48, rng=np.random.default_rng(0))
        assert scene.shape == (32, 48)
        assert scene.min() >= 0.0 and scene.max() <= 1.0

    def test_scene_is_spatially_correlated(self):
        scene = images.synthetic_scene(64, 64, rng=np.random.default_rng(1))
        horizontal = np.corrcoef(scene[:, :-1].ravel(), scene[:, 1:].ravel())[0, 1]
        assert horizontal > 0.8

    def test_scene_validation(self):
        with pytest.raises(ValueError):
            images.synthetic_scene(2, 2)
        with pytest.raises(ValueError):
            images.synthetic_scene(32, 32, correlation_length=0.0)

    def test_quantize(self):
        q = images.quantize_pixels(np.array([[0.0, 1.0, 0.5]]))
        np.testing.assert_array_equal(q, [[0, 255, 128]])

    def test_bayer_planes(self):
        rgb = np.zeros((4, 4, 3))
        rgb[0::2, 0::2, 0] = 1.0  # only red sites carry red
        mosaic = images.bayer_mosaic(rgb)
        assert mosaic.red.shape == (2, 2)
        np.testing.assert_allclose(mosaic.red, 1.0)
        np.testing.assert_allclose(mosaic.blue, 0.0)

    def test_bayer_rejects_odd_dims(self):
        with pytest.raises(ValueError):
            images.bayer_mosaic(np.zeros((3, 4, 3)))

    def test_stream_shapes(self):
        frames = images.default_frames(2, 16, 16)
        assert images.rgb_parallel_stream(frames).shape == (2 * 64, 32)
        assert images.rgb_parallel_with_stable_stream(frames).shape == (128, 36)
        assert images.rgb_mux_stream(frames).shape == (2 * 64 * 4, 9)
        gray = images.default_frames(2, 16, 16, rgb=False)
        assert images.grayscale_stream(gray).shape == (2 * 256, 9)

    def test_stable_lines_are_constant(self):
        frames = images.default_frames(1, 16, 16)
        stream = images.rgb_parallel_with_stable_stream(frames)
        assert (stream[:, images.STABLE_ENABLE] == 0).all()
        assert (stream[:, images.STABLE_POWER] == 1).all()
        assert (stream[:, images.STABLE_GROUND] == 0).all()

    def test_parallel_stream_is_temporally_correlated(self):
        frames = images.default_frames(2, 32, 32)
        stats = BitStatistics.from_stream(images.rgb_parallel_stream(frames))
        # The red MSB (line 7) must switch far less than the red LSB (0).
        assert stats.self_switching[7] < 0.5 * stats.self_switching[0]

    def test_mux_destroys_correlation(self):
        frames = images.default_frames(2, 32, 32)
        parallel = BitStatistics.from_stream(images.rgb_parallel_stream(frames))
        mux = BitStatistics.from_stream(images.rgb_mux_stream(frames))
        # Multiplexing different colours raises the MSB activity.
        assert mux.self_switching[7] > parallel.self_switching[7]


class TestMems:
    def test_axes_shape_and_range(self):
        axes = mems.sensor_axes("accelerometer", "walking", 512,
                                np.random.default_rng(0))
        assert axes.shape == (512, 3)
        assert axes.max() < 2**15 and axes.min() >= -(2**15)

    def test_unknown_sensor_or_scenario(self):
        with pytest.raises(ValueError):
            mems.sensor_axes("barometer", "walking", 64)
        with pytest.raises(ValueError):
            mems.sensor_axes("gyroscope", "flying", 64)

    def test_accelerometer_z_carries_gravity(self):
        axes = mems.sensor_axes("accelerometer", "rest", 2048,
                                np.random.default_rng(1))
        assert abs(axes[:, 2].mean()) > 4.0 * abs(axes[:, 0].mean()) + 1000.0

    def test_rotation_excites_gyroscope(self):
        rng = np.random.default_rng(2)
        rest = mems.sensor_axes("gyroscope", "rest", 2048, rng)
        rotating = mems.sensor_axes("gyroscope", "rotating", 2048, rng)
        assert rotating[:, 0].std() > 2.0 * rest[:, 0].std()

    def test_rms_stream_is_unsigned(self):
        axes = mems.sensor_axes("accelerometer", "walking", 512,
                                np.random.default_rng(3))
        bits = mems.rms_stream(axes)
        assert bits.shape == (512, 16)
        # RMS is non-negative and clearly non-zero-mean.
        from repro.datagen.util import bits_to_words
        words = bits_to_words(bits)
        assert (words >= 0).all()
        assert words.mean() > 1000.0

    def test_interleaving_destroys_temporal_correlation(self):
        rng = np.random.default_rng(4)
        axes = mems.sensor_axes("magnetometer", "rest", 4096, rng)
        single = BitStatistics.from_stream(mems.axis_bits(axes, 0))
        inter = BitStatistics.from_stream(mems.xyz_interleaved_stream(axes))
        assert inter.self_switching[-1] > single.self_switching[-1]

    def test_all_sensors_mux_shape(self):
        bits = mems.all_sensors_mux_stream("driving", 128,
                                           np.random.default_rng(5))
        assert bits.shape == (3 * 3 * 128, 16)


class TestRandom:
    def test_range_and_shape(self):
        words = uniform_random_words(1000, 7, np.random.default_rng(0))
        assert words.min() >= 0 and words.max() < 128

    def test_bits_are_balanced(self):
        bits = uniform_random_bits(20000, 8, np.random.default_rng(1))
        stats = BitStatistics.from_stream(bits)
        np.testing.assert_allclose(stats.probabilities, 0.5, atol=0.02)
        np.testing.assert_allclose(stats.self_switching, 0.5, atol=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_random_words(0, 8)
        with pytest.raises(ValueError):
            uniform_random_words(8, 0)


@settings(max_examples=10, deadline=None)
@given(branch=st.floats(0.0, 1.0), seed=st.integers(0, 2**31 - 1))
def test_sequential_stream_valid_bits(branch, seed):
    bits = program_counter_bits(64, 8, branch, np.random.default_rng(seed))
    assert bits.shape == (64, 8)
    assert set(np.unique(bits)) <= {0, 1}
