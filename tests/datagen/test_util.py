"""Tests for word/bit conversions and stream composition."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datagen.util import (
    append_stable_lines,
    bits_to_words,
    concatenate_streams,
    interleave_streams,
    quantize_to_integers,
    words_to_bits,
)


class TestWordsToBits:
    def test_known_values(self):
        bits = words_to_bits(np.array([0, 1, 2, 5]), 3)
        expected = np.array([
            [0, 0, 0],
            [1, 0, 0],
            [0, 1, 0],
            [1, 0, 1],
        ], dtype=np.uint8)
        np.testing.assert_array_equal(bits, expected)

    def test_twos_complement(self):
        bits = words_to_bits(np.array([-1, -4]), 3)
        np.testing.assert_array_equal(bits, [[1, 1, 1], [0, 0, 1]])

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            words_to_bits(np.array([8]), 3)
        with pytest.raises(ValueError):
            words_to_bits(np.array([-5]), 3)

    def test_unsigned_full_range_allowed(self):
        bits = words_to_bits(np.array([7]), 3)
        np.testing.assert_array_equal(bits, [[1, 1, 1]])

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            words_to_bits(np.array([1.5]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            words_to_bits(np.zeros((2, 2), dtype=int), 3)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            words_to_bits(np.array([0]), 0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=30),
)
def test_unsigned_roundtrip(values):
    words = np.array(values, dtype=np.int64)
    assert (bits_to_words(words_to_bits(words, 16)) == words).all()


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(-(2**15), 2**15 - 1), min_size=1, max_size=30),
)
def test_signed_roundtrip(values):
    words = np.array(values, dtype=np.int64)
    assert (bits_to_words(words_to_bits(words, 16), signed=True) == words).all()


class TestInterleave:
    def test_word_streams(self):
        out = interleave_streams([np.array([1, 2]), np.array([10, 20])])
        np.testing.assert_array_equal(out, [1, 10, 2, 20])

    def test_bit_streams(self):
        a = np.zeros((2, 3), dtype=np.uint8)
        b = np.ones((2, 3), dtype=np.uint8)
        out = interleave_streams([a, b])
        assert out.shape == (4, 3)
        np.testing.assert_array_equal(out[0], 0)
        np.testing.assert_array_equal(out[1], 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            interleave_streams([])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            interleave_streams([np.zeros(3), np.zeros(4)])

    def test_single_stream_is_identity(self):
        a = np.arange(5)
        np.testing.assert_array_equal(interleave_streams([a]), a)


class TestConcatenate:
    def test_blocks_in_order(self):
        out = concatenate_streams([np.array([1, 2]), np.array([3])])
        np.testing.assert_array_equal(out, [1, 2, 3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            concatenate_streams([])


class TestStableLines:
    def test_appends_constants(self):
        bits = np.zeros((3, 2), dtype=np.uint8)
        out = append_stable_lines(bits, [1, 0])
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out[:, 2], 1)
        np.testing.assert_array_equal(out[:, 3], 0)

    def test_rejects_non_binary(self):
        with pytest.raises(ValueError):
            append_stable_lines(np.zeros((2, 2), dtype=np.uint8), [2])

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            append_stable_lines(np.zeros(4, dtype=np.uint8), [1])


class TestQuantize:
    def test_signed_saturation(self):
        out = quantize_to_integers(np.array([1e9, -1e9, 0.4]), 8)
        np.testing.assert_array_equal(out, [127, -128, 0])

    def test_unsigned_saturation(self):
        out = quantize_to_integers(np.array([300.0, -5.0]), 8, signed=False)
        np.testing.assert_array_equal(out, [255, 0])

    def test_rounding(self):
        out = quantize_to_integers(np.array([1.4, 1.6]), 8)
        np.testing.assert_array_equal(out, [1, 2])

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            quantize_to_integers(np.array([0.0]), 0)
