"""Cross-module integration tests.

These tie the layers together: the statistical power model must agree with
the event-based circuit energy on the *physically routed* stream; coded
links must decode after crossing the modelled array; the public pipeline
must be deterministic under seeding.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AssignmentConstraints,
    BitStatistics,
    CapacitanceExtractor,
    PowerModel,
    SignedPermutation,
    TSVArrayGeometry,
    optimize_assignment,
)
from repro.circuit.energy import EnergyModel
from repro.coding.correlator import correlate_words, decorrelate_words
from repro.coding.gray import gray_decode_words, gray_encode_words
from repro.datagen.gaussian import gaussian_bit_stream
from repro.datagen.util import bits_to_words, words_to_bits


@pytest.fixture(scope="module")
def geometry():
    return TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)


@pytest.fixture(scope="module")
def cap(geometry):
    return CapacitanceExtractor(geometry, method="compact").extract()


class TestModelEnergyConsistency:
    """P_n predicted from statistics == measured on the routed stream."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_prediction_matches_measurement(self, geometry, cap, seed):
        rng = np.random.default_rng(seed)
        bits = gaussian_bit_stream(8000, 9, sigma=16.0, rho=0.4, rng=rng)
        stats = BitStatistics.from_stream(bits)
        model = PowerModel(stats, cap)
        assignment = SignedPermutation.random(9, rng, with_inversions=True)

        predicted = model.power(assignment)
        routed = assignment.apply_to_bits(bits)
        measured = EnergyModel(cap).normalized_power(routed)
        assert measured == pytest.approx(predicted, rel=2e-3)

    def test_optimized_assignment_really_saves_energy(self, geometry, cap):
        """The whole point, measured end to end on the physical stream."""
        rng = np.random.default_rng(7)
        bits = gaussian_bit_stream(8000, 9, sigma=16.0, rho=0.6, rng=rng)
        report = optimize_assignment(
            bits, geometry, method="optimal", cap_method="compact",
            mos_aware=False, rng=np.random.default_rng(0),
            baseline_samples=30,
        )
        energy = EnergyModel(cap)
        optimized = energy.normalized_power(
            report.assignment.apply_to_bits(bits)
        )
        baseline = np.mean([
            energy.normalized_power(
                SignedPermutation.random(9, rng).apply_to_bits(bits)
            )
            for _ in range(20)
        ])
        assert optimized < baseline
        assert 1.0 - optimized / baseline == pytest.approx(
            report.reduction_vs_random, abs=0.05
        )


class TestCodedLinkRoundTrip:
    """Data survives coding -> assignment -> wires -> inverse path."""

    def test_gray_link(self, geometry):
        rng = np.random.default_rng(1)
        payload = rng.integers(0, 512, 500)
        coded = gray_encode_words(payload, 9, negated=True)
        bits = words_to_bits(coded, 9)
        assignment = SignedPermutation.random(9, rng, with_inversions=True)
        wires = assignment.apply_to_bits(bits)
        # Receiver: undo routing/inversions, then decode.
        received_bits = assignment.inverse().apply_to_bits(wires)
        received = gray_decode_words(
            bits_to_words(received_bits), 9, negated=True
        )
        np.testing.assert_array_equal(received, payload)

    def test_correlator_link(self, geometry):
        rng = np.random.default_rng(2)
        payload = rng.integers(0, 256, 400)
        coded = correlate_words(payload, 8, n_channels=4, negated=True)
        bits = words_to_bits(coded, 8)
        assignment = SignedPermutation.random(8, rng, with_inversions=True)
        wires = assignment.apply_to_bits(bits)
        received_bits = assignment.inverse().apply_to_bits(wires)
        received = decorrelate_words(
            bits_to_words(received_bits), 8, n_channels=4, negated=True
        )
        np.testing.assert_array_equal(received, payload)


class TestPipelineDeterminism:
    def test_same_seed_same_report(self, geometry):
        rng_bits = np.random.default_rng(3)
        bits = gaussian_bit_stream(3000, 9, sigma=16.0, rho=0.5, rng=rng_bits)
        a = optimize_assignment(
            bits, geometry, cap_method="compact",
            rng=np.random.default_rng(11), baseline_samples=20,
        )
        b = optimize_assignment(
            bits, geometry, cap_method="compact",
            rng=np.random.default_rng(11), baseline_samples=20,
        )
        assert a.assignment == b.assignment
        assert a.power == b.power

    def test_constraints_respected_end_to_end(self, geometry):
        bits = gaussian_bit_stream(
            3000, 9, sigma=16.0, rho=0.5, rng=np.random.default_rng(4)
        )
        constraints = AssignmentConstraints(
            no_invert=frozenset({8}), pinned={8: 4}
        )
        report = optimize_assignment(
            bits, geometry, cap_method="compact", constraints=constraints,
            rng=np.random.default_rng(0), baseline_samples=20,
        )
        assert report.assignment.line_of_bit[8] == 4
        assert not report.assignment.inverted[8]


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 6), st.integers(0, 2**31 - 1))
def test_routing_roundtrip_property(n, seed):
    """inverse() undoes apply_to_bits for any stream and assignment."""
    rng = np.random.default_rng(seed)
    bits = (rng.random((40, n)) < 0.5).astype(np.uint8)
    assignment = SignedPermutation.from_sequence(
        rng.permutation(n), rng.integers(0, 2, n).astype(bool)
    )
    wires = assignment.apply_to_bits(bits)
    back = assignment.inverse().apply_to_bits(wires)
    np.testing.assert_array_equal(back, bits)


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_power_invariant_to_data_relabeling(seed):
    """Relabeling the *data* bits and compensating the assignment leaves
    the physical power unchanged (gauge invariance of the pipeline)."""
    rng = np.random.default_rng(seed)
    n = 6
    geometry = TSVArrayGeometry(rows=2, cols=3, pitch=8e-6, radius=2e-6)
    cap = CapacitanceExtractor(geometry, method="compact").extract()
    bits = (rng.random((300, n)) < 0.5).astype(np.uint8)
    stats = BitStatistics.from_stream(bits)
    model = PowerModel(stats, cap)

    assignment = SignedPermutation.from_sequence(
        rng.permutation(n), rng.integers(0, 2, n).astype(bool)
    )
    relabel = SignedPermutation.from_sequence(
        rng.permutation(n), rng.integers(0, 2, n).astype(bool)
    )
    relabeled_stats = relabel.apply_to_statistics(stats)
    compensated = assignment.compose(relabel.inverse())
    model_relabeled = PowerModel(relabeled_stats, cap)
    assert model_relabeled.power(compensated) == pytest.approx(
        model.power(assignment), rel=1e-9
    )
