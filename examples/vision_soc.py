"""Vision-SoC example: image pixels crossing from a sensor die to a
processor die (paper Sec. 5.1).

Walks through the paper's 6x6 scenario: a full Bayer cell (32 data bits)
transmitted in parallel together with four *stable* lines — enable and
redundant lines parked at 0, one power and one ground TSV. Power and ground
must not be inverted (their drivers are not drivers at all), which is
expressed with ``AssignmentConstraints``. The optimal assignment then

* routes the high-activity colour LSBs to the low-capacitance array rim,
* inverts the enable/redundant lines so they sit at logical 1 (wider
  depletion region -> smaller capacitances, the MOS effect),
* keeps the stable lines where their coupling hurts least.

Run:  python examples/vision_soc.py
"""

import numpy as np

from repro.core import AssignmentConstraints, optimize_assignment
from repro.datagen import images
from repro.tsv import TSVArrayGeometry


def main() -> None:
    rng = np.random.default_rng(7)
    print("Synthesizing camera frames (stand-in for real photographs) ...")
    frames = [images.synthetic_rgb_scene(64, 64, rng=rng) for _ in range(3)]

    stream = images.rgb_parallel_with_stable_stream(frames)
    print(f"Stream: {stream.shape[0]} cycles x {stream.shape[1]} lines "
          "(32 data + enable + redundant + power + ground)")

    geometry = TSVArrayGeometry(rows=6, cols=6, pitch=4e-6, radius=1e-6)
    constraints = AssignmentConstraints(
        no_invert=frozenset({images.STABLE_POWER, images.STABLE_GROUND})
    )

    print("Optimizing (this explores permutations AND inversions) ...")
    report = optimize_assignment(
        stream,
        geometry,
        method="optimal",
        cap_method="compact3d",
        constraints=constraints,
        rng=np.random.default_rng(0),
    )
    spiral = optimize_assignment(
        stream, geometry, method="spiral", cap_method="compact3d",
        rng=np.random.default_rng(0),
    )

    print(f"\n  random assignment : P_n = {report.random_mean_power * 1e15:7.2f} fF")
    print(f"  Spiral mapping    : P_n = {spiral.power * 1e15:7.2f} fF "
          f"(-{spiral.reduction_vs_random * 100:.1f} %)")
    print(f"  optimal (Eq. 10)  : P_n = {report.power * 1e15:7.2f} fF "
          f"(-{report.reduction_vs_random * 100:.1f} %)")

    names = {images.STABLE_ENABLE: "enable", images.STABLE_REDUNDANT: "redundant",
             images.STABLE_POWER: "power", images.STABLE_GROUND: "ground"}
    print("\nStable-line placement by the optimal assignment:")
    for bit, name in names.items():
        line = report.assignment.line_of_bit[bit]
        inverted = report.assignment.inverted[bit]
        row, col = geometry.row_col(line)
        state = "inverted (parked at 1)" if inverted else "as-is"
        print(f"  {name:9s} -> TSV ({row}, {col}), {state}")

    # Floorplan view: which bit drives which TSV.
    print("\nBit-to-TSV floorplan (S* = stable lines):")
    label = {bit: f"{bit:2d}" for bit in range(32)}
    label.update({b: f"S{k}" for k, b in enumerate(names)})
    bit_of_line = report.assignment.bit_of_line
    for row in range(6):
        cells = []
        for col in range(6):
            bit = bit_of_line[geometry.index(row, col)]
            cells.append(label[bit].rjust(3))
        print("   " + " ".join(cells))


if __name__ == "__main__":
    main()
