"""Delay-budget example: trading power against worst-case crosstalk delay.

The power-optimal assignment may park anti-correlated bit pairs on
strongly coupled TSVs — good for average power (the inversions fix the
sign), but the *worst-case* transition then sees 2x-Miller effective
capacitances and the link slows down. ``repro.core.constrained`` optimizes
power under an explicit Elmore-delay bound; this script sweeps the bound
and prints the resulting power/delay trade-off curve for an anti-correlated
DSP stream.

Run:  python examples/delay_budget.py
"""

import numpy as np

from repro.core.constrained import (
    DelayModel,
    delay_constrained_annealing,
    pairwise_miller_bounds,
)
from repro.core.power import PowerModel
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv import CapacitanceExtractor, TSVArrayGeometry


def main() -> None:
    geometry = TSVArrayGeometry.large_2018(4, 4)
    cap = CapacitanceExtractor(geometry, method="compact3d").extract()
    rng = np.random.default_rng(9)
    # Anti-correlated stream: lots of opposite MSB transitions.
    bits = gaussian_bit_stream(10000, 16, sigma=512.0, rho=-0.6, rng=rng)
    stats = BitStatistics.from_stream(bits)

    power_model = PowerModel(stats, cap)
    delay_model = DelayModel(geometry, cap, pairwise_miller_bounds(bits))

    unconstrained = delay_constrained_annealing(
        stats, delay_model, power_model, delay_bound=1.0,
        rng=np.random.default_rng(0), steps_per_temperature=200,
    )
    d0 = unconstrained.delay
    print(f"power-optimal assignment: P_n = "
          f"{unconstrained.power * 1e15:6.2f} fF, worst Elmore delay = "
          f"{d0 * 1e12:5.1f} ps\n")

    print("tightening the delay budget:")
    print(f"  {'bound [ps]':>10}  {'delay [ps]':>10}  {'P_n [fF]':>9}  "
          f"{'power cost':>10}  feasible")
    for factor in (1.00, 0.98, 0.96, 0.94, 0.92):
        bound = d0 * factor
        result = delay_constrained_annealing(
            stats, delay_model, power_model, delay_bound=bound,
            rng=np.random.default_rng(0), steps_per_temperature=200,
        )
        cost = result.power / unconstrained.power - 1.0
        print(f"  {bound * 1e12:10.1f}  {result.delay * 1e12:10.1f}  "
              f"{result.power * 1e15:9.2f}  {cost * 100:9.2f} %  "
              f"{result.feasible}")

    print("\nEvery picosecond shaved off the worst-case transition costs")
    print("a little average power - the knob is now explicit.")


if __name__ == "__main__":
    main()
