"""MEMS-sensor example: choosing transmission format and mapping together
(paper Sec. 5.2 and Sec. 7).

A smartphone-style 9-axis sensor stack sends its samples through a 4x4 TSV
array. The transmission *format* changes the bit statistics — and with them
which systematic mapping works:

* XYZ interleaving keeps the Gaussian amplitude distribution but destroys
  temporal correlation  -> Sawtooth territory;
* RMS aggregation produces unsigned, correlated values -> Spiral territory;
* Gray-coding the interleaved stream restores exploitable structure, and
  the XNOR variant hands the MOS effect to the assignment for free.

The script reports normalized power for the mappings, then the
circuit-level power (drivers + leakage, 3 GHz) of the best combination.

Run:  python examples/mems_pipeline.py
"""

import numpy as np

from repro.coding.gray import gray_encode_words
from repro.datagen import mems
from repro.datagen.util import interleave_streams, words_to_bits
from repro.experiments.common import (
    circuit_power_mw,
    optimize_for_stream,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv import TSVArrayGeometry


def show(label: str, study) -> None:
    print(f"  {label}")
    for method in ("optimal", "sawtooth", "spiral"):
        print(f"    {method:9s}: reduction vs random assignment "
              f"{study.reduction(method) * 100:+6.2f} %")


def main() -> None:
    rng = np.random.default_rng(3)
    geometry = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
    axes = mems.sensor_axes("accelerometer", "walking", 8192, rng)

    print("Accelerometer, walking scenario, 16 b, 4x4 TSV array\n")

    rms_bits = mems.rms_stream(axes)
    rms_stats = BitStatistics.from_stream(rms_bits)
    show("RMS stream (unsigned, correlated):",
         study_assignments(rms_stats, geometry, cap_method="compact3d"))

    xyz_bits = mems.xyz_interleaved_stream(axes)
    xyz_stats = BitStatistics.from_stream(xyz_bits)
    show("XYZ-interleaved stream (Gaussian, uncorrelated):",
         study_assignments(xyz_stats, geometry, cap_method="compact3d"))

    # Gray-code the interleaved stream inside the sensor's ADC (free), with
    # the XNOR variant so the parked bits sit at logical 1.
    words = interleave_streams([axes[:, 0], axes[:, 1], axes[:, 2]])
    unsigned = np.where(words < 0, words + (1 << 16), words)
    gray_neg = words_to_bits(
        gray_encode_words(unsigned, 16, negated=True), 16
    )
    gray_stats = BitStatistics.from_stream(gray_neg)
    show("XNOR-Gray coded interleaved stream:",
         study_assignments(gray_stats, geometry, cap_method="compact3d"))

    print("\nCircuit-level power (drivers + leakage, 3 GHz, 32 b/cycle "
          "equivalent):")
    plain_mw = circuit_power_mw(
        words_to_bits(unsigned, 16), geometry, payload_bits=16,
        cap_method="compact3d",
    )
    best = optimize_for_stream(gray_stats, geometry, cap_method="compact3d")
    coded_mw = circuit_power_mw(
        gray_neg, geometry, assignment=best, payload_bits=16,
        cap_method="compact3d",
    )
    print(f"  plain interleaved, natural order : {plain_mw:6.3f} mW")
    print(f"  XNOR-Gray + optimal assignment   : {coded_mw:6.3f} mW "
          f"(-{(1 - coded_mw / plain_mw) * 100:.1f} %)")


if __name__ == "__main__":
    main()
