"""Quickstart: cut the TSV power of a data stream with one call.

Builds a 4x4 TSV array, synthesizes a temporally correlated 16 b DSP
stream, and asks the library for the power-optimal bit-to-TSV assignment
(paper Eq. 10) plus the systematic Spiral/Sawtooth mappings for comparison.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import optimize_assignment
from repro.datagen.gaussian import gaussian_bit_stream
from repro.tsv import TSVArrayGeometry


def main() -> None:
    # The TSV array: 16 vias, ITRS-2018 "large" dimensions (r=2um, d=8um).
    geometry = TSVArrayGeometry.large_2018(rows=4, cols=4)

    # A representative sample of the traffic the array will carry: 16-bit
    # Gaussian words with temporal correlation 0.6 (typical DSP data).
    rng = np.random.default_rng(42)
    bits = gaussian_bit_stream(20000, 16, sigma=256.0, rho=0.6, rng=rng)

    print("Searching for the power-optimal bit-to-TSV assignment ...")
    for method in ("optimal", "sawtooth", "spiral", "identity"):
        report = optimize_assignment(
            bits,
            geometry,
            method=method,
            cap_method="compact3d",   # fast calibrated capacitance model
            rng=np.random.default_rng(0),
        )
        print(
            f"  {method:9s}: P_n = {report.power * 1e15:7.2f} fF, "
            f"reduction vs random assignment = "
            f"{report.reduction_vs_random * 100:5.2f} %"
        )

    best = optimize_assignment(
        bits, geometry, method="optimal", cap_method="compact3d",
        rng=np.random.default_rng(0),
    )
    print("\nOptimal assignment (bit -> TSV, * = transmitted inverted):")
    for bit, (line, inverted) in enumerate(
        zip(best.assignment.line_of_bit, best.assignment.inverted)
    ):
        row, col = geometry.row_col(line)
        marker = "*" if inverted else " "
        print(f"  bit {bit:2d}{marker} -> TSV ({row}, {col})")


if __name__ == "__main__":
    main()
