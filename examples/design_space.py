"""Design-space exploration: how geometry shapes the technique's payoff.

Sweeps the TSV radius/pitch (at the paper's aspect ratio, liner = r/5,
pitch = 4r) and the array size, and reports

* the extracted capacitance landscape (corner vs middle totals — the edge
  effect the Spiral mapping lives off),
* the MOS-effect strength (capacitance swing between all-0 and all-1
  probabilities — what inversions can harvest),
* the resulting optimal-assignment reduction for a reference DSP stream.

This is the "which arrays are worth optimizing?" question a designer would
ask before adopting the technique.

Run:  python examples/design_space.py
"""

import numpy as np

from repro.datagen.gaussian import gaussian_bit_stream
from repro.experiments.common import study_assignments
from repro.stats.switching import BitStatistics
from repro.tsv import CapacitanceExtractor, TSVArrayGeometry
from repro.tsv.matrices import total_capacitance


def main() -> None:
    rng = np.random.default_rng(5)
    print(f"{'array':>6} {'r[um]':>6} {'d[um]':>6} "
          f"{'C_corner':>9} {'C_mid':>7} {'edge':>6} {'MOS':>6} {'P_red':>7}")

    for rows, cols in ((3, 3), (4, 4), (5, 5)):
        n = rows * cols
        bits = gaussian_bit_stream(8000, n, sigma=2.0 ** (n / 2), rho=0.5,
                                   rng=rng)
        stats = BitStatistics.from_stream(bits)
        for radius_um in (0.5, 1.0, 2.0):
            radius = radius_um * 1e-6
            geometry = TSVArrayGeometry(rows=rows, cols=cols,
                                        pitch=4.0 * radius, radius=radius)
            extractor = CapacitanceExtractor(geometry, method="compact3d")
            balanced = extractor.extract()
            totals = total_capacitance(balanced)
            corner = totals[geometry.index(0, 0)]
            middle = totals[geometry.index(rows // 2, cols // 2)]
            edge_effect = 1.0 - corner / middle
            swing = 1.0 - (
                total_capacitance(extractor.extract(np.ones(n))).mean()
                / total_capacitance(extractor.extract(np.zeros(n))).mean()
            )
            study = study_assignments(
                stats, geometry, methods=("optimal",),
                cap_method="compact3d", baseline_samples=60,
                sa_steps=10 * n,
            )
            print(
                f"{rows}x{cols:<4} {radius_um:6.1f} {4 * radius_um:6.1f} "
                f"{corner * 1e15:8.1f}f {middle * 1e15:6.1f}f "
                f"{edge_effect * 100:5.1f}% {swing * 100:5.1f}% "
                f"{study.reduction('optimal') * 100:6.2f}%"
            )

    print("\nReading: smaller TSVs have a stronger MOS effect (more for the")
    print("inversions to harvest); the edge effect — and so the placement")
    print("gain — grows with array size.")


if __name__ == "__main__":
    main()
