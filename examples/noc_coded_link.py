"""3-D NoC example: reusing a planar link code on a TSV hop (paper Sec. 7).

In a 3-D network-on-chip, flits are coded once for the long planar links
(here: the coupling-driven invert code of the paper's ref [24]) and the
same coded stream then crosses dies through a 3x3 TSV array. The code is
tuned to *metal-wire* physics, so it is not ideal for TSVs — but the
bit-to-TSV assignment is free, and the paper shows it recovers a double-
digit reduction even on already-coded random traffic.

The script encodes random flits, verifies the decode round-trip, and
compares the TSV power of a natural wiring against the optimal assignment.

Run:  python examples/noc_coded_link.py
"""

import numpy as np

from repro.coding.businvert import (
    coded_bit_stream,
    coupling_invert_decode,
    coupling_invert_encode,
)
from repro.datagen.random_stream import uniform_random_words
from repro.experiments.common import circuit_power_mw, optimize_for_stream
from repro.stats.switching import BitStatistics
from repro.tsv import TSVArrayGeometry


def main() -> None:
    rng = np.random.default_rng(11)
    geometry = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)

    # 7-bit random flit payloads through the planar coupling-invert code.
    payload = uniform_random_words(30000, 7, rng)
    coded, flags = coupling_invert_encode(payload, 7)
    decoded = coupling_invert_decode(coded, flags, 7)
    assert (decoded == payload).all(), "decode round-trip failed"
    print(f"Encoded {len(payload)} flits; "
          f"{flags.mean() * 100:.1f} % transmitted inverted; "
          "round-trip verified.")

    # Physical link: 7 data lines + invert flag + a packet flag that is set
    # with probability 0.01 % (almost stable at 0) -> 9 lines on a 3x3.
    link = coded_bit_stream(coded, flags, 7)
    packet_flag = (rng.random(len(link)) < 1e-4).astype(np.uint8)
    lines = np.concatenate([link, packet_flag[:, None]], axis=1)

    stats = BitStatistics.from_stream(lines)
    assignment = optimize_for_stream(stats, geometry, cap_method="compact3d")

    plain_mw = circuit_power_mw(
        lines, geometry, payload_bits=7, cap_method="compact3d"
    )
    optimal_mw = circuit_power_mw(
        lines, geometry, assignment=assignment, payload_bits=7,
        cap_method="compact3d",
    )
    print(f"\nTSV power (3 GHz, scaled to 32 b payload per cycle):")
    print(f"  natural wiring     : {plain_mw:6.3f} mW")
    print(f"  optimal assignment : {optimal_mw:6.3f} mW "
          f"(-{(1 - optimal_mw / plain_mw) * 100:.1f} %)")

    print("\nWhat the optimizer did with the special lines:")
    for bit, name in ((7, "invert flag"), (8, "packet flag")):
        line = assignment.line_of_bit[bit]
        row, col = geometry.row_col(line)
        state = "inverted" if assignment.inverted[bit] else "as-is"
        print(f"  {name:11s} -> TSV ({row}, {col}), {state}")


if __name__ == "__main__":
    main()
