"""3-D NoC example, served end to end (paper Sec. 7 + ``repro.serve``).

In a 3-D network-on-chip, flits are coded for the planar links (here:
the coupling-driven invert code of the paper's ref [24]) and the coded
stream then crosses dies through a 3x3 TSV array. The code is tuned to
*metal-wire* physics, so it is not ideal for TSVs — but the bit-to-TSV
assignment is free, and the paper shows it recovers a double-digit
reduction even on already-coded random traffic.

This version drives the *real serving data path*: it finds the optimal
assignment offline, boots a live link server in the background, creates
a coded link (coupling-invert codec + that assignment), streams the NoC
trace through it over a socket in pipelined chunks, verifies the decode
round-trip bit for bit, and prints the energy savings the *server*
reports from its online accounting — which match an offline
``CompiledPowerModel`` computation exactly.

Run:  python examples/noc_coded_link.py
"""

import numpy as np

from repro.datagen.random_stream import uniform_random_words
from repro.experiments.common import optimize_for_stream
from repro.serve import BackgroundServer, LinkClient, build_chain
from repro.datagen.util import words_to_bits
from repro.stats.switching import BitStatistics
from repro.tsv import TSVArrayGeometry

N_FLITS = 30000
WIDTH = 7  # payload bits per flit


def main() -> None:
    rng = np.random.default_rng(11)
    geometry = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)
    payload = uniform_random_words(N_FLITS, WIDTH, rng)

    # -- offline: tune the bit-to-TSV assignment for the *coded* traffic.
    # The planar invert code adds its flag line; the 9th TSV idles at 0.
    codecs = [{"kind": "couplinginvert"}]
    chain = build_chain(codecs, WIDTH, geometry=geometry)
    preview_bits = np.zeros((N_FLITS, geometry.n_tsvs), dtype=np.uint8)
    preview_bits[:, : chain.width_out] = words_to_bits(
        chain.encode(payload), chain.width_out
    )
    stats = BitStatistics.from_stream(preview_bits)
    assignment = optimize_for_stream(stats, geometry, cap_method="compact3d")
    print(f"Optimized the {geometry.rows}x{geometry.cols} assignment "
          f"offline for the coded NoC traffic.")

    # -- online: boot a real server and stream the trace through it.
    config = {
        "width": WIDTH,
        "geometry": {"rows": geometry.rows, "cols": geometry.cols,
                     "pitch": geometry.pitch, "radius": geometry.radius},
        "codecs": codecs,
        "assignment": {
            "line_of_bit": list(assignment.line_of_bit),
            "inverted": [bool(x) for x in assignment.inverted],
        },
    }
    with BackgroundServer() as server:
        with LinkClient.connect(server.address) as client:
            client.create_link("noc-hop", config)
            coded = client.stream("noc-hop", payload, chunk_words=2048)
            decoded = client.stream(
                "noc-hop", coded, op="decode", chunk_words=2048
            )
            assert (decoded == payload).all(), "decode round-trip failed"
            flags = (coded >> WIDTH) & 1
            print(f"Streamed {len(payload)} flits through the live link; "
                  f"{flags.mean() * 100:.1f} % transmitted inverted; "
                  "round-trip verified bit-exact.")

            stats = client.stats("noc-hop")
    metrics, energy = stats["metrics"], stats["energy"]
    latency = metrics["latency"]
    print(f"\nServer-side view ({metrics['batches']} batches, "
          f"mean {metrics['mean_batch_requests']:.1f} requests/batch):")
    print(f"  latency p50/p95/p99 : {latency['p50_s'] * 1e6:7.0f} / "
          f"{latency['p95_s'] * 1e6:.0f} / {latency['p99_s'] * 1e6:.0f} us")
    print("  online energy account (3 GHz):")
    print(f"    coded + routed    : {energy['coded']['power_mw']:7.4f} mW")
    print(f"    uncoded reference : {energy['uncoded']['power_mw']:7.4f} mW")
    print(f"    reported savings  : {energy['savings'] * 100:6.1f} %")

    print("\nWhat the optimizer did with the invert-flag line:")
    line = assignment.line_of_bit[WIDTH]
    row, col = geometry.row_col(line)
    state = "inverted" if assignment.inverted[WIDTH] else "as-is"
    print(f"  invert flag -> TSV ({row}, {col}), {state}")


if __name__ == "__main__":
    main()
