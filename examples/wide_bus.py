"""Wide-bus example: splitting a 32-bit link across two TSV bundles.

Modern 3-D links are wider than a single TSV array. The per-array
optimization is the paper's contribution; the *bundle-level* question —
which bits should travel together — is the extra layer
``repro.core.partition`` adds. This script carries two independent 16-bit
DSP words on one 32-bit bus over two 4x4 arrays and compares partitioning
strategies:

* ``interleaved``  — bits scattered round-robin (what a naive router does),
* ``contiguous``   — bus order,
* ``correlation``  — clustered so correlated bits share an array, where the
  assignment can exploit their coupling.

Run:  python examples/wide_bus.py
"""

import numpy as np

from repro.core.partition import optimize_partitioned
from repro.datagen.gaussian import gaussian_bit_stream
from repro.tsv import TSVArrayGeometry


def main() -> None:
    rng = np.random.default_rng(21)
    # Two independent, strongly structured 16-bit channels scrambled onto a
    # 32-bit bus in an arbitrary wire order - a realistic mess where no
    # naive split matches the channels.
    a = gaussian_bit_stream(12000, 16, sigma=256.0, rho=0.8, rng=rng)
    b = gaussian_bit_stream(12000, 16, sigma=256.0, rho=0.8, rng=rng)
    scramble = np.random.default_rng(99).permutation(32)
    bus = np.concatenate([a, b], axis=1)[:, scramble]
    channel_of_bus_bit = ["A" if k < 16 else "B" for k in scramble]

    geometries = [TSVArrayGeometry.large_2018(4, 4) for _ in range(2)]

    print("32-bit bus over two 4x4 TSV bundles, optimal per-array "
          "assignment:\n")
    results = {}
    for strategy in ("interleaved", "contiguous", "correlation"):
        report = optimize_partitioned(
            bus, geometries, strategy=strategy,
            cap_method="compact3d", baseline_samples=80,
            rng=np.random.default_rng(0),
        )
        results[strategy] = report
        print(f"  {strategy:12s}: total P_n = "
              f"{report.total_power * 1e15:7.2f} fF, reduction vs random "
              f"wiring = {report.reduction_vs_random * 100:5.2f} %")

    best = results["correlation"]
    print("\nCorrelation clustering per bundle (channel of each bus bit):")
    for k, group in enumerate(best.groups):
        channels = "".join(channel_of_bus_bit[bit] for bit in group)
        print(f"  bundle {k}: {channels}")
    print("\nThe correlated MSB clusters of each channel end up in one")
    print("bundle, where the per-array optimizer can exploit their")
    print("coupling; the uncorrelated LSB leftovers fill the gaps.")


if __name__ == "__main__":
    main()
