"""Grid overhead: claim throughput, end-to-end jobs/s, verify sweep.

The distributed grid's value is scaling the figure sweeps out to many
workers (see ``docs/grid.md``); its cost is the fixed per-job overhead —
an atomic-rename claim with a lease write, an ``execute_job`` dispatch,
one insert-or-verify transaction. The real sweep points dwarf that
overhead by orders of magnitude (an annealing study runs seconds to
minutes), so this benchmark times the machinery on the microsecond-cheap
``selftest`` experiment, where the overhead *is* the wall time:

* ``claim`` — pure queue cycles (claim + complete, no execution);
* ``execute`` — a worker draining the grid end to end (queue + runner +
  store);
* ``verify`` — re-running every finished job through the store's
  insert-or-verify path (the whole-grid determinism audit).

Run:  PYTHONPATH=src python benchmarks/bench_grid.py [--quick]
Writes ``benchmarks/BENCH_grid.json`` (gitignored). Exits non-zero when
any correctness gate fails — every job done, every result recorded,
every verification bit-identical, zero violations; timings are
informational (CI machines are too noisy to gate on speed).
"""

import argparse
import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.grid.queue import JobQueue, JobState
from repro.grid.space import DesignSpace, expand
from repro.grid.store import ResultStore
from repro.grid.worker import GridWorker


def _fresh_grid(root: Path, n_jobs: int) -> list:
    shutil.rmtree(root, ignore_errors=True)
    jobs = expand(DesignSpace(
        experiment="selftest", base={"n_points": n_jobs},
    ))
    queue = JobQueue(root)
    for job in jobs:
        queue.submit(job)
    return jobs


def bench_claim(root: Path, n_jobs: int, repeats: int) -> dict:
    """Pure queue overhead: claim + complete cycles, no execution."""
    best = float("inf")
    for _ in range(repeats):
        _fresh_grid(root, n_jobs)
        queue = JobQueue(root)
        begin = time.perf_counter()
        cycled = 0
        while True:
            claim = queue.claim("bench")
            if claim is None:
                break
            queue.complete(claim.job.fingerprint, "bench")
            cycled += 1
        best = min(best, time.perf_counter() - begin)
        assert cycled == n_jobs, f"cycled {cycled} of {n_jobs} jobs"
    return {
        "stage": "claim", "jobs": n_jobs, "best_s": best,
        "jobs_per_s": n_jobs / best, "clean": True,
    }


def bench_execute(root: Path, n_jobs: int, repeats: int) -> dict:
    """End-to-end worker throughput: queue + runner + result store."""
    best = float("inf")
    clean = True
    for _ in range(repeats):
        _fresh_grid(root, n_jobs)
        worker = GridWorker(root, lease_timeout_s=60.0, poll_s=0.01)
        begin = time.perf_counter()
        stats = worker.run()
        best = min(best, time.perf_counter() - begin)
        store = ResultStore(root / "results.sqlite")
        clean = clean and (
            stats["completed"] == n_jobs
            and store.count() == n_jobs
            and store.violations() == []
        )
    return {
        "stage": "execute", "jobs": n_jobs, "best_s": best,
        "jobs_per_s": n_jobs / best, "clean": clean,
    }


def bench_verify(root: Path, n_jobs: int) -> dict:
    """Whole-grid determinism audit: resubmit done jobs, re-run, verify.

    Reuses the last ``execute`` grid on disk; every re-run must verify
    bit-identical against its stored row (``verified`` counts, zero
    violations, zero fresh inserts).
    """
    queue = JobQueue(root)
    for job in queue.jobs(JobState.DONE):
        queue.resubmit(job.fingerprint, from_states=[JobState.DONE])
    worker = GridWorker(root, lease_timeout_s=60.0, poll_s=0.01)
    begin = time.perf_counter()
    stats = worker.run()
    elapsed = time.perf_counter() - begin
    store = ResultStore(root / "results.sqlite")
    clean = (
        stats["verified"] == n_jobs
        and stats["completed"] == 0
        and store.count() == n_jobs
        and store.violations() == []
    )
    return {
        "stage": "verify", "jobs": n_jobs, "best_s": elapsed,
        "jobs_per_s": n_jobs / elapsed, "clean": clean,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer jobs and repetitions (CI smoke mode)",
    )
    parser.add_argument("--jobs", type=int, default=None,
                        help="grid size (default 64 quick / 256 full)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per stage (best is reported)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_grid.json"),
        help="report destination (default: the benchmarks/ directory)",
    )
    args = parser.parse_args(argv)
    n_jobs = args.jobs or (64 if args.quick else 256)
    repeats = args.repeats or (2 if args.quick else 5)

    report = {
        "benchmark": "grid",
        "quick": args.quick,
        "repeats": repeats,
        "results": [],
    }
    workdir = Path(tempfile.mkdtemp(prefix="bench-grid-"))
    try:
        root = workdir / "grid"
        rows = [
            bench_claim(root, n_jobs, repeats),
            bench_execute(root, n_jobs, repeats),
        ]
        rows.append(bench_verify(root, n_jobs))
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    ok = True
    for row in rows:
        report["results"].append(row)
        ok = ok and row["clean"]
        print(
            f"{row['stage']:8s} {row['best_s']:6.3f}s  "
            f"{row['jobs_per_s']:8.1f} jobs/s  "
            f"({row['jobs']} jobs, {'clean' if row['clean'] else 'DIRTY'})"
        )

    with open(args.output, "w") as sink:
        json.dump(report, sink, indent=2)
    print(f"wrote {args.output}")
    if not ok:
        print("GRID CORRECTNESS GATE FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
