"""Benchmark/reproduction of Fig. 4 (image-sensor / VSoC streams)."""

from repro.experiments import fig4
from repro.experiments.common import format_table


def test_fig4(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: fig4.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Fig. 4 - P_red vs mean random assignment, image-sensor streams",
        rows,
    ))
    values = {r.label: r.values for r in rows}
    # Paper shape: the optimal assignment never loses to the Spiral, and
    # multiplexing shrinks the Spiral's gain.
    for label, row in values.items():
        assert row["optimal"] >= row["spiral"] - 0.01, label
    assert (values["RGB par. 4x8 r=1um"]["spiral"]
            > values["RGB mux. 3x3 r=1um"]["spiral"])
