"""Append this checkout's headline benchmark numbers to TRAJECTORY.jsonl.

The bench scripts write ``BENCH_optimize.json``, ``BENCH_serve.json``
and ``BENCH_lint.json`` into ``benchmarks/`` (gitignored; the frozen
seed baselines live in ``benchmarks/baselines/``); this script distills
them into one JSON line per revision so the repo carries its own
performance history — `evals/s` for the annealer fast path, `words/s`
for the online codec service, `files/s` for every analyzer pass, and
(when ``BENCH_grid.json`` is present) `jobs/s` for the distributed
grid's claim/execute/verify overhead — without anyone having to diff
the full reports.

Run (after the three benchmarks):

    PYTHONPATH=src python benchmarks/bench_optimize.py --quick
    PYTHONPATH=src python benchmarks/bench_serve.py --quick
    PYTHONPATH=src python benchmarks/bench_lint.py --quick
    python benchmarks/trajectory.py

Exits non-zero when a BENCH file is missing or malformed, so a CI
trajectory step cannot silently append a hole. With
``--min-encode-speedup R`` it additionally fails when the serve layer's
steady-state encode rate has fallen below ``R`` times the frozen seed
baseline in ``benchmarks/baselines/BENCH_serve.json`` — the regression
gate for the vectorized codec kernels.
"""

import argparse
import json
import subprocess
from pathlib import Path

HERE = Path(__file__).resolve().parent
TRAJECTORY = HERE / "TRAJECTORY.jsonl"
BASELINES = HERE / "baselines"


def git_revision() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, check=True,
            cwd=HERE,
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _load(path: Path) -> dict:
    with open(path) as source:
        return json.load(source)


def optimize_headline(report: dict) -> dict:
    """Annealer throughput on the largest benchmarked problem."""
    rows = report["results"]
    top = max(rows, key=lambda row: row["n"])
    return {
        "n": top["n"],
        "sa_evals_per_s": top["sa_evaluations"] / top["sa_fast_s"],
        "sa_speedup": top["sa_speedup"],
        "sa_identical": top["sa_identical"],
    }


def serve_headline(report: dict) -> dict:
    """Codec service throughput at the no-batching-window operating point."""
    rows = report["results"]
    base = min(rows, key=lambda row: row["window_ms"])
    return {
        "window_ms": base["window_ms"],
        "encode_words_per_s": base["encode_words_per_s"],
        "decode_words_per_s": base["decode_words_per_s"],
        "round_trip_exact": base["round_trip_exact"],
        "energy_exact": base["energy_exact"],
    }


def lint_headline(report: dict) -> dict:
    """Per-pass analyzer throughput over src/repro."""
    passes = {
        row["pass"]: {
            "files_per_s": row["files_per_s"],
            "clean": row["clean"],
        }
        for row in report["results"]
    }
    return {"n_files": report["n_files"], "passes": passes}


def grid_headline(report: dict) -> dict:
    """Per-stage grid overhead (claim cycles, end-to-end jobs, verify)."""
    stages = {
        row["stage"]: {
            "jobs_per_s": row["jobs_per_s"],
            "clean": row["clean"],
        }
        for row in report["results"]
    }
    return {"jobs": report["results"][0]["jobs"], "stages": stages}


def build_entry(bench_dir: Path) -> dict:
    entry = {
        "revision": git_revision(),
        "optimize": optimize_headline(_load(bench_dir / "BENCH_optimize.json")),
        "serve": serve_headline(_load(bench_dir / "BENCH_serve.json")),
        "lint": lint_headline(_load(bench_dir / "BENCH_lint.json")),
    }
    # The grid report is optional: bench_grid.py runs in the grid CI job,
    # not in every job that assembles a trajectory entry.
    grid_report = bench_dir / "BENCH_grid.json"
    if grid_report.exists():
        entry["grid"] = grid_headline(_load(grid_report))
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir", default=str(HERE),
        help="directory holding the three BENCH_*.json reports",
    )
    parser.add_argument(
        "--output", default=str(TRAJECTORY),
        help="trajectory file to append to",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="print the entry without appending",
    )
    parser.add_argument(
        "--min-encode-speedup", type=float, default=None, metavar="R",
        help="fail unless serve encode_words_per_s is at least R times "
             "the frozen seed baseline (benchmarks/baselines/)",
    )
    args = parser.parse_args(argv)

    try:
        entry = build_entry(Path(args.bench_dir))
    except FileNotFoundError as exc:
        print(f"missing benchmark report: {exc.filename}")
        print("run bench_optimize.py, bench_serve.py and bench_lint.py first")
        return 1
    except (KeyError, ValueError) as exc:
        print(f"malformed benchmark report: {exc!r}")
        return 1

    if args.min_encode_speedup is not None:
        try:
            seed = serve_headline(_load(BASELINES / "BENCH_serve.json"))
        except (FileNotFoundError, KeyError, ValueError) as exc:
            print(f"cannot load the frozen serve baseline: {exc!r}")
            return 1
        rate = entry["serve"]["encode_words_per_s"]
        ratio = rate / seed["encode_words_per_s"]
        print(
            f"encode speedup over seed baseline: {ratio:.1f}x "
            f"({rate:,.0f} vs {seed['encode_words_per_s']:,.0f} words/s, "
            f"gate {args.min_encode_speedup:.1f}x)"
        )
        if ratio < args.min_encode_speedup:
            print("ENCODE SPEEDUP GATE FAILED")
            return 1

    line = json.dumps(entry, sort_keys=True)
    print(line)
    if not args.dry_run:
        with open(args.output, "a") as sink:
            sink.write(line + "\n")
        print(f"appended to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
