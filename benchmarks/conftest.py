"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's evaluation artefacts (a
figure or a Sec. 3/ablation table) and prints the resulting table, so a
``pytest benchmarks/ --benchmark-only`` run doubles as the full experiment
reproduction.

By default the benchmarks run the *fast* parameterizations (shrunken sweeps
and streams) so the whole suite finishes in a few minutes. Set
``REPRO_BENCH_FULL=1`` to run the paper-scale versions.
"""

import os

import pytest


def full_mode() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def fast() -> bool:
    """True when the shrunken (default) parameterizations should be used."""
    return not full_mode()
