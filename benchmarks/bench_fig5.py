"""Benchmark/reproduction of Fig. 5 (MEMS sensor streams)."""

from repro.experiments import fig5
from repro.experiments.common import format_table


def test_fig5(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: fig5.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Fig. 5 - P_red vs mean random assignment, MEMS streams on 4x4",
        rows,
    ))
    values = {r.label: r.values for r in rows}
    # Paper shape: Spiral wins on the unsigned RMS streams, Sawtooth on the
    # interleaved (normally distributed) streams.
    for sensor in ("Acc", "Gyr", "Mag"):
        assert values[f"{sensor} RMS"]["spiral"] > values[f"{sensor} RMS"]["sawtooth"]
        assert values[f"{sensor} XYZ"]["sawtooth"] > values[f"{sensor} XYZ"]["spiral"]
