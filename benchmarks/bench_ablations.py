"""Benchmarks of the DESIGN.md ablations.

* capacitance model choice (FDM vs compact vs compact3d),
* linear C(p) model accuracy,
* optimizer quality/cost,
* the value of inversions (the MOS-effect half of the technique).
"""

import pytest

from repro.experiments import ablations
from repro.experiments.common import format_table


def test_ablation_capacitance_models(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: ablations.capacitance_models(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation - extraction model", rows))
    for row in rows:
        assert row.values["optimal"] >= row.values["sawtooth"] - 0.01


def test_ablation_linear_capmodel(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: ablations.linear_capmodel_error(fast=fast),
        rounds=1, iterations=1,
    )
    print()
    print(format_table("Ablation - Eq. 6/7 linear model NRMSE", rows))
    for row in rows:
        assert row.values["regr NRMSE"] < 0.05


def test_ablation_optimizers(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: ablations.optimizers(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation - optimizers", rows, unit="raw"))
    by_label = {r.label: r.values for r in rows}
    assert by_label["sim. annealing"]["gap"] < 0.02
    # Branch and bound is certified exact and must match enumeration.
    assert by_label["branch & bound"]["power [fF]"] == pytest.approx(
        by_label["exhaustive (no inv)"]["power [fF]"], rel=1e-9
    )
    assert (by_label["branch & bound"]["evals"]
            < by_label["exhaustive (no inv)"]["evals"])


def test_ablation_inversions(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: ablations.inversions(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table("Ablation - value of inversions", rows))
    by_label = {r.label: r.values for r in rows}
    assert (by_label["with inversions"]["reduction"]
            >= by_label["without inversions"]["reduction"] - 1e-9)


def test_ablation_variation_robustness(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: ablations.variation_robustness(fast=fast),
        rounds=1, iterations=1,
    )
    print()
    print(format_table("Ablation - robustness under process variation", rows))
    by_label = {r.label: r.values for r in rows}
    optimal = by_label["optimal (nominal)"]
    # The frozen design-time optimum must keep most of its gain and leave
    # little on the table vs per-sample re-optimization.
    assert optimal["worst"] > 0.5 * optimal["nominal"]
    assert optimal["regret"] < 0.02
