"""Benchmark/reproduction of Fig. 2 (sequential streams, optimal vs Spiral).

Prints the reduction table the paper plots; the benchmark time covers the
full sweep (stream synthesis, statistics, annealing, baselines).
"""

from repro.experiments import fig2
from repro.experiments.common import format_table


def test_fig2(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: fig2.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table("Fig. 2 - P_red vs worst-case random assignment", rows))
    assert rows
    # Paper shape: the reduction shrinks as the branch probability rises.
    assert rows[0].values["opt 4x4"] > rows[-1].values["opt 4x4"]
