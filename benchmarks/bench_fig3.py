"""Benchmark/reproduction of Fig. 3 (Gaussian streams, sigma/rho sweep)."""

from repro.experiments import fig3
from repro.experiments.common import format_table


def test_fig3(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: fig3.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Fig. 3 - P_red vs mean random assignment, 16 b Gaussian on 4x4",
        rows,
    ))
    # Paper shape: Sawtooth near-optimal at rho <= 0, Spiral not.
    zero = [r for r in rows if r.label.startswith("rho=+0.0")]
    assert zero
    assert all(r.values["sawtooth"] > r.values["spiral"] for r in zero)
