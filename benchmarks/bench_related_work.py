"""Benchmark/reproduction of the intro's related-work argument:
crosstalk-avoidance coding improves SI but raises the TSV power."""

from repro.experiments import related_work
from repro.experiments.common import format_table


def test_related_work(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: related_work.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Related work - LAT CAC vs bit assignment (8-bit payload)",
        rows, unit="raw",
    ))
    values = {r.label: r.values for r in rows}
    # The paper's claims: CAC lowers the SI metrics but costs power and
    # TSVs; the assignment lowers power at zero cost.
    assert values["LAT-CAC 2x(3x3)"]["peak noise [V]"] < values["plain 3x3"][
        "peak noise [V]"
    ]
    assert values["LAT-CAC 2x(3x3)"]["max C_eff [fF]"] < values["plain 3x3"][
        "max C_eff [fF]"
    ]
    assert values["LAT-CAC 2x(3x3)"]["power [mW]"] > values["plain 3x3"][
        "power [mW]"
    ]
    assert values["assignment 3x3"]["power [mW]"] < values["plain 3x3"][
        "power [mW]"
    ]
    assert values["assignment 3x3"]["TSVs"] == values["plain 3x3"]["TSVs"]
