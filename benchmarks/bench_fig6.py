"""Benchmark/reproduction of Fig. 6 (circuit-level power with codings)."""

from repro.experiments import fig6
from repro.experiments.common import format_table


def test_fig6(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: fig6.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Fig. 6 - TSV power incl. drivers and leakage [mW], 32 b/cycle",
        rows, unit="mW",
    ))
    print()
    print(format_table(
        "Fig. 6 - reduction vs plain transmission", fig6.reductions(rows)
    ))
    values = {r.label: r.values for r in rows}
    sensor_mux = values["Sensor Mux. (16b, 4x4)"]
    rgb = values["RGB Mux.+1R (8b, 3x3)"]
    # Paper shape: optimal always helps; the codings help most when
    # combined with the assignment (XNOR trick).
    assert sensor_mux["gray+opt"] < sensor_mux["gray"] < sensor_mux["plain"]
    assert rgb["corr+opt"] < rgb["corr"] < rgb["plain"]
    assert values["Coded 7b+flag (3x3)"]["optimal"] < values[
        "Coded 7b+flag (3x3)"
    ]["plain"]
