"""Benchmark/reproduction of the Sec. 3 routing-overhead analysis."""

from repro.experiments import routing_overhead
from repro.experiments.common import format_table


def test_routing_overhead(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: routing_overhead.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "Sec. 3 - path-parasitic increase across all assignments", rows
    ))
    # Paper claim: negligible (0.4 % worst case on the 3x3 in their node;
    # our model lands in the same low-percent regime, growing with the
    # array footprint).
    for row in rows:
        assert row.values["worst"] < 0.05
