"""Benchmark/case study: the assignment across a whole 3-D NoC.

Network-level version of the paper's Sec. 7 NoC argument: per-link invert
coding costs a TSV and codec per link; the bit-to-TSV assignment is free
and competitive or better.
"""

from repro.experiments import noc_case_study
from repro.experiments.common import format_table


def test_noc_case_study(benchmark, fast):
    rows = benchmark.pedantic(
        lambda: noc_case_study.run(fast=fast), rounds=1, iterations=1
    )
    print()
    print(format_table(
        "NoC case study - vertical-link power reduction", rows, unit="raw"
    ))
    for row in rows:
        assert row.values["assigned %"] > 0.0, row.label
        assert row.values["both %"] > row.values["coded %"], row.label
