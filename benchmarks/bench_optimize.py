"""Benchmark the assignment searches: naive vs delta-cost vs batched.

Times the three evaluation tiers of :mod:`repro.core.fastpower` behind the
Eq. 10 searches across array sizes, and emits ``BENCH_optimize.json``:

* simulated annealing with the generic scalar objective (naive) against
  the compiled delta-cost fast path — same seeds, same proposal sequence,
  so the best powers must agree bit-for-bit;
* multi-restart annealing in population mode (all chains lockstep, one
  batched kernel call per pricing round) against the per-chain supervisor
  — same spawned seeds, so best power, assignment, and evaluation counts
  must agree bit-for-bit;
* greedy descent, naive vs delta-cost;
* batched :meth:`CompiledPowerModel.powers` against a Python loop of
  single evaluations (the random-baseline workload).

Timings are the minimum over ``--repeats`` runs (the standard low-noise
estimator on shared machines). The script exits non-zero when the fast
and naive annealers disagree on the seeded smoke case or when population
mode deviates from the per-chain path at any size, so CI can gate on the
exactness of the delta kernels without gating on machine speed.

Run as ``python benchmarks/bench_optimize.py [--quick]`` (needs the
package importable, e.g. ``pip install -e .`` or ``PYTHONPATH=src``).
Writes ``benchmarks/BENCH_optimize.json`` (gitignored; the committed
seed baselines live in ``benchmarks/baselines/``).
"""

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.fastpower import CompiledPowerModel, random_assignments
from repro.core.optimize import greedy_descent, simulated_annealing
from repro.core.power import PowerModel
from repro.core.assignment import SignedPermutation
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

#: Benchmark seed; the fast/naive agreement gate runs under this seed.
SEED = 2018

#: Array shapes per line count (the paper's 3x3 case plus larger buses).
SHAPES = {9: (3, 3), 16: (4, 4), 32: (4, 8), 64: (8, 8)}


def build_model(n: int, samples: int) -> PowerModel:
    """MOS-aware power model of an ``n``-line TSV array and test stream."""
    rows, cols = SHAPES[n]
    geometry = TSVArrayGeometry(
        rows=rows, cols=cols, pitch=8.0e-6, radius=2.0e-6
    )
    bits = gaussian_bit_stream(
        samples, n, sigma=2.0 ** (n / 2.0), rho=0.5,
        rng=np.random.default_rng(SEED),
    )
    capacitance = LinearCapacitanceModel.fit(
        CapacitanceExtractor(geometry, method="compact3d"), n_probes=8
    )
    return PowerModel(BitStatistics.from_stream(bits), capacitance)


def timed(fn, repeats: int):
    """(min seconds over repeats, last result)."""
    best = None
    result = None
    for _ in range(repeats):
        begin = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - begin
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def bench_size(n: int, repeats: int, baseline_k: int, run_naive_sa: bool):
    """All measurements for one array size."""
    model = build_model(n, samples=4000)
    compiled = CompiledPowerModel.compile(model)
    row = {"n": n, "mos_aware": True, "seed": SEED}

    t_fast, sa_fast = timed(
        lambda: simulated_annealing(
            compiled, n, rng=np.random.default_rng(SEED)
        ),
        repeats,
    )
    row["sa_fast_s"] = t_fast
    row["sa_fast_power"] = sa_fast.power
    row["sa_evaluations"] = sa_fast.evaluations
    if run_naive_sa:
        t_naive, sa_naive = timed(
            lambda: simulated_annealing(
                model.power, n, rng=np.random.default_rng(SEED)
            ),
            repeats,
        )
        row["sa_naive_s"] = t_naive
        row["sa_naive_power"] = sa_naive.power
        row["sa_speedup"] = t_naive / t_fast
        row["sa_identical"] = sa_naive.power == sa_fast.power

    t_pop, sa_pop = timed(
        lambda: simulated_annealing(
            compiled, n, rng=np.random.default_rng(SEED),
            n_restarts=4, population=True,
        ),
        repeats,
    )
    t_chains, sa_chains = timed(
        lambda: simulated_annealing(
            compiled, n, rng=np.random.default_rng(SEED),
            n_restarts=4, population=False,
        ),
        repeats,
    )
    row["sa_population_s"] = t_pop
    row["sa_chains_s"] = t_chains
    row["sa_population_power"] = sa_pop.power
    row["sa_population_speedup"] = t_chains / t_pop
    row["sa_population_identical"] = bool(
        sa_pop.power == sa_chains.power
        and sa_pop.assignment == sa_chains.assignment
        and sa_pop.evaluations == sa_chains.evaluations
    )

    start = SignedPermutation.identity(n)
    t_greedy_fast, greedy_fast = timed(
        lambda: greedy_descent(compiled, start), repeats
    )
    row["greedy_fast_s"] = t_greedy_fast
    if run_naive_sa:
        t_greedy_naive, greedy_naive = timed(
            lambda: greedy_descent(model.power, start), repeats
        )
        row["greedy_naive_s"] = t_greedy_naive
        row["greedy_speedup"] = t_greedy_naive / t_greedy_fast
        row["greedy_close"] = bool(
            abs(greedy_naive.power - greedy_fast.power)
            <= 1e-9 * abs(greedy_naive.power)
        )

    samples = random_assignments(
        n, baseline_k, np.random.default_rng(SEED), with_inversions=True
    )
    t_batched, batched = timed(lambda: compiled.powers(samples), repeats)
    t_loop, _ = timed(
        lambda: [compiled.power(a) for a in samples], repeats
    )
    row["powers_batched_s"] = t_batched
    row["powers_loop_s"] = t_loop
    row["powers_speedup"] = t_loop / t_batched
    loop_values = np.array([compiled.power(a) for a in samples])
    row["powers_close"] = bool(
        np.allclose(batched, loop_values, rtol=1e-12, atol=0.0)
    )
    return row


def smoke_gate(samples: int = 2000) -> dict:
    """Seeded fast-vs-naive agreement check (n = 9, quick even on CI)."""
    model = build_model(9, samples=samples)
    compiled = CompiledPowerModel.compile(model)
    fast = simulated_annealing(
        compiled, 9, rng=np.random.default_rng(SEED)
    )
    naive = simulated_annealing(
        model.power, 9, rng=np.random.default_rng(SEED)
    )
    return {
        "n": 9,
        "seed": SEED,
        "fast_power": fast.power,
        "naive_power": naive.power,
        "identical": fast.power == naive.power,
        "evaluations_match": fast.evaluations == naive.evaluations,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes and single repetition (CI smoke mode)",
    )
    parser.add_argument("--repeats", type=int, default=None,
                        help="repetitions per timing (min is reported)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_optimize.json"),
        help="report destination (default: the benchmarks/ directory)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        sizes = (9, 16)
        repeats = args.repeats or 1
    else:
        sizes = (9, 16, 32, 64)
        repeats = args.repeats or 3

    report = {
        "benchmark": "optimize",
        "quick": args.quick,
        "repeats": repeats,
        "results": [],
    }
    for n in sizes:
        # The naive annealer at n >= 32 costs minutes per run; the fast
        # path is still timed there so scaling stays visible.
        run_naive = n <= 16
        print(f"# n={n} ...", flush=True)
        row = bench_size(
            n, repeats, baseline_k=200, run_naive_sa=run_naive
        )
        report["results"].append(row)
        if run_naive:
            print(
                f"  SA naive {row['sa_naive_s']:.2f}s  "
                f"fast {row['sa_fast_s']:.2f}s  "
                f"speedup {row['sa_speedup']:.1f}x  "
                f"identical={row['sa_identical']}"
            )
        else:
            print(f"  SA fast {row['sa_fast_s']:.2f}s (naive skipped)")
        print(
            f"  SA x4 restarts: population {row['sa_population_s']:.2f}s "
            f"vs chains {row['sa_chains_s']:.2f}s  "
            f"({row['sa_population_speedup']:.1f}x)  "
            f"identical={row['sa_population_identical']}"
        )
        print(
            f"  powers() batched {row['powers_batched_s'] * 1e3:.1f}ms "
            f"vs loop {row['powers_loop_s'] * 1e3:.1f}ms  "
            f"({row['powers_speedup']:.1f}x)"
        )

    print("# smoke gate (n=9, seed 2018): fast vs naive must agree")
    gate = smoke_gate()
    report["smoke"] = gate
    print(f"  identical={gate['identical']}  "
          f"fast={gate['fast_power']:.6e}  naive={gate['naive_power']:.6e}")

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"# written to {args.output}")

    bad_powers = [
        row["n"] for row in report["results"] if not row["powers_close"]
    ]
    if bad_powers:
        print(f"FAIL: batched powers() disagree with power() at n={bad_powers}")
        return 1
    if not gate["identical"]:
        print("FAIL: fast and naive annealers disagree on the smoke case")
        return 1
    bad_population = [
        row["n"] for row in report["results"]
        if not row["sa_population_identical"]
    ]
    if bad_population:
        print(
            "FAIL: population annealing deviates from the per-chain "
            f"path at n={bad_population}"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
