"""Micro-benchmarks of the library's hot kernels.

These time the pieces the figure sweeps are built from — capacitance
extraction, power evaluation, annealing, statistics, the event-based energy
model and the transient engine — with enough rounds for stable medians.
"""

import numpy as np
import pytest

from repro.circuit.driver import DriverModel
from repro.circuit.energy import EnergyModel
from repro.circuit.transient import TransientSolver
from repro.core.assignment import SignedPermutation
from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.datagen.gaussian import gaussian_bit_stream
from repro.stats.switching import BitStatistics
from repro.tsv.arraycap import CompactCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.fdm import FDMFieldSolver
from repro.tsv.geometry import TSVArrayGeometry
from repro.tsv.rlc import build_array_netlist


@pytest.fixture(scope="module")
def geometry():
    return TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)


@pytest.fixture(scope="module")
def bits():
    return gaussian_bit_stream(
        20000, 16, sigma=256.0, rho=0.5, rng=np.random.default_rng(0)
    )


@pytest.fixture(scope="module")
def model(geometry, bits):
    cap = CapacitanceExtractor(geometry, method="compact3d").extract()
    return PowerModel(BitStatistics.from_stream(bits), cap)


def test_compact_extraction(benchmark, geometry):
    compact = CompactCapacitanceModel(geometry)
    probs = np.random.default_rng(0).uniform(0.0, 1.0, geometry.n_tsvs)
    benchmark(compact.capacitance_matrix, probs)


def test_fdm_extraction_coarse(benchmark, geometry):
    def extract():
        return FDMFieldSolver(
            geometry, resolution=0.4e-6, margin=2 * geometry.pitch
        ).capacitance_matrix()

    benchmark.pedantic(extract, rounds=3, iterations=1)


def test_bit_statistics(benchmark, bits):
    benchmark(BitStatistics.from_stream, bits)


def test_power_evaluation(benchmark, model):
    assignment = SignedPermutation.random(
        16, np.random.default_rng(1), with_inversions=True
    )
    benchmark(model.power, assignment)


def test_simulated_annealing(benchmark, model):
    benchmark.pedantic(
        lambda: simulated_annealing(
            model.power, 16, rng=np.random.default_rng(2),
            steps_per_temperature=100,
        ),
        rounds=3,
        iterations=1,
    )


def test_event_energy_model(benchmark, geometry, bits):
    cap = CapacitanceExtractor(geometry, method="compact3d").extract()
    energy = EnergyModel(cap, driver=DriverModel())
    benchmark(energy.cycle_energies, bits)


def test_transient_two_line_cycle(benchmark):
    geometry = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)
    cap = CapacitanceExtractor(geometry, method="compact").extract()
    stream = (np.random.default_rng(3).random((10, 2)) < 0.5).astype(np.uint8)
    cycle = 1.0 / 3e9

    def run():
        netlist = build_array_netlist(
            geometry, cap, stream, DriverModel(), cycle
        )
        solver = TransientSolver(netlist, timestep=cycle / 100)
        return solver.run(len(stream) * cycle).total_supply_energy()

    benchmark.pedantic(run, rounds=3, iterations=1)
