"""Benchmark the repro.serve data path over a real socket.

For each micro-batch window setting, the script boots a fresh
``BackgroundServer``, streams a seeded word stream through a
representative codec chain with a pipelined ``LinkClient``, and records
the sustained encode/decode throughput (words/s) plus the server-side
per-request latency percentiles (p50/p95/p99).  Throughput is the best
over ``--repeats`` runs; a new server per run keeps the latency
histogram per-setting.

Each run warms the server up through a scratch link first (batch loop,
serializer, kernel dispatch caches), so the timed region measures steady
state instead of first-request construction costs.

The script exits non-zero when any round trip is not bit-exact or when
the server's online energy account disagrees with an offline
``CompiledPowerModel`` recomputation, so CI can gate on serving
*correctness* without gating on machine speed.

``--fleet N`` additionally boots a ``FleetServer`` with N worker
processes per setting and records the same sweep through the fleet
front.  The routing/journaling hop costs something; the gate is that
the fleet's best encode throughput stays within ``--min-fleet-ratio``
(default 0.8) of the single-engine best — regressions in the forwarding
path fail the benchmark even on fast machines.

Run:  PYTHONPATH=src python benchmarks/bench_serve.py [--quick]
Writes ``benchmarks/BENCH_serve.json`` (gitignored; the committed seed
baselines live in ``benchmarks/baselines/``).
"""

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.fastpower import CompiledPowerModel
from repro.datagen.util import words_to_bits
from repro.experiments.common import cap_model_for
from repro.serve import BackgroundServer, BatchPolicy, LinkClient, build_chain
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

SEED = 2018
WIDTH = 8
GEOMETRY_SPEC = {"rows": 3, "cols": 3, "pitch": 4.0e-6, "radius": 1.0e-6}
CODECS = [{"kind": "businvert"}]

#: Batch windows swept (seconds).  0.0 serves each request immediately;
#: the longer windows trade latency for larger coalesced batches.
WINDOWS_S = (0.0, 0.5e-3, 2.0e-3, 5.0e-3)


def link_config():
    return {
        "width": WIDTH,
        "geometry": dict(GEOMETRY_SPEC),
        "codecs": [dict(c) for c in CODECS],
    }


def run_once(window_s, words, chunk_words, in_flight, n_workers=0):
    """One server boot + encode/decode sweep.  Returns a result row."""
    policy = BatchPolicy(window_s=window_s)
    if n_workers:
        from repro.serve import FleetServer

        harness = BackgroundServer(
            server_factory=lambda: FleetServer(
                n_workers=n_workers, policy=policy
            )
        )
    else:
        harness = BackgroundServer(policy=policy)
    with harness as server:
        with LinkClient.connect(server.address) as client:
            client.create_link("bench", link_config())

            # Untimed warm-up through a scratch link: exercises the whole
            # request path without touching the bench link's codec state,
            # energy account, or latency histogram, so the timed region
            # below reflects steady state. In fleet mode the scratch link
            # must land on the *same worker process* as the bench link,
            # or the timed region pays a cold worker's first-request
            # construction costs.
            warm_name = "warmup"
            if n_workers:
                from repro.serve import worker_for

                slots = list(range(n_workers))
                target = worker_for("bench", slots)
                suffix = 0
                while worker_for(warm_name, slots) != target:
                    warm_name = f"warmup-{suffix}"
                    suffix += 1
            client.create_link(warm_name, link_config())
            warm = words[: min(len(words), 4 * chunk_words)]
            warm_coded = client.stream(
                warm_name, warm, chunk_words=chunk_words,
                max_in_flight=in_flight,
            )
            client.stream(
                warm_name, warm_coded, op="decode", chunk_words=chunk_words,
                max_in_flight=in_flight,
            )

            begin = time.perf_counter()
            coded = client.stream(
                "bench", words, chunk_words=chunk_words,
                max_in_flight=in_flight,
            )
            encode_s = time.perf_counter() - begin

            begin = time.perf_counter()
            back = client.stream(
                "bench", coded, op="decode", chunk_words=chunk_words,
                max_in_flight=in_flight,
            )
            decode_s = time.perf_counter() - begin

            stats = client.stats("bench")

    exact = bool((back == words).all())
    metrics = stats["metrics"]
    latency = metrics["latency"]
    reported = stats["energy"]["coded"]["normalized_power_farad"]
    return {
        "encode_s": encode_s,
        "decode_s": decode_s,
        "encode_words_per_s": len(words) / encode_s,
        "decode_words_per_s": len(words) / decode_s,
        "batches": metrics["batches"],
        "requests": metrics["requests"],
        "mean_batch_requests": metrics["mean_batch_requests"],
        "latency_p50_s": latency["p50_s"],
        "latency_p95_s": latency["p95_s"],
        "latency_p99_s": latency["p99_s"],
        "round_trip_exact": exact,
        "reported_power": reported,
        "coded": coded,
    }


def offline_power(words, coded):
    """Recompute the coded stream's normalized power offline."""
    geometry = TSVArrayGeometry(**GEOMETRY_SPEC)
    chain = build_chain(
        [dict(c) for c in CODECS], WIDTH, geometry=geometry
    )
    np.testing.assert_array_equal(coded, chain.encode(words))
    bits = np.zeros((len(words), geometry.n_tsvs), dtype=np.uint8)
    bits[:, : chain.width_out] = words_to_bits(coded, chain.width_out)
    return CompiledPowerModel(
        BitStatistics.from_stream(bits), cap_model_for(geometry)
    ).power()


def bench_window(window_s, words, repeats, chunk_words, in_flight,
                 n_workers=0):
    """Best-of-repeats throughput for one batch-window setting."""
    best = None
    for _ in range(repeats):
        row = run_once(window_s, words, chunk_words, in_flight, n_workers)
        if best is None or row["encode_words_per_s"] > \
                best["encode_words_per_s"]:
            best = row
    coded = best.pop("coded")
    best["window_ms"] = window_s * 1e3
    best["n_words"] = len(words)
    best["chunk_words"] = chunk_words

    expected = offline_power(words, coded)
    best["offline_power"] = expected
    best["energy_exact"] = bool(
        abs(best["reported_power"] - expected)
        <= 1e-12 * abs(expected)
    )
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small stream and single repetition (CI smoke mode)",
    )
    parser.add_argument("--repeats", type=int, default=None,
                        help="server boots per setting (best is reported)")
    parser.add_argument("--words", type=int, default=None,
                        help="stream length per run")
    parser.add_argument(
        "--fleet", type=int, default=0, metavar="N",
        help="also sweep a FleetServer with N worker processes and "
             "gate its throughput against the single-engine runs",
    )
    parser.add_argument(
        "--min-fleet-ratio", type=float, default=None,
        help="minimum fleet/single best-encode-throughput ratio "
             "(default 0.8; relaxed to 0.65 on single-core machines, "
             "where the forwarding hop cannot overlap with codec work)",
    )
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_serve.json"),
        help="report destination (default: the benchmarks/ directory)",
    )
    args = parser.parse_args(argv)

    if args.quick:
        n_words = args.words or 50_000
        repeats = args.repeats or 1
        windows = (0.0, 2.0e-3)
    else:
        n_words = args.words or 500_000
        repeats = args.repeats or 3
        windows = WINDOWS_S

    words = np.random.default_rng(SEED).integers(0, 1 << WIDTH, n_words)

    report = {
        "benchmark": "serve",
        "quick": args.quick,
        "repeats": repeats,
        "codecs": CODECS,
        "width": WIDTH,
        "results": [],
    }
    if args.fleet:
        if args.min_fleet_ratio is None:
            cores = os.cpu_count() or 1
            args.min_fleet_ratio = 0.8 if cores >= 2 else 0.65
        report["fleet_workers"] = args.fleet
        report["min_fleet_ratio"] = args.min_fleet_ratio

    def show(row, label="single"):
        print(
            f"  [{label}] "
            f"encode {row['encode_words_per_s'] / 1e6:.2f} Mwords/s  "
            f"decode {row['decode_words_per_s'] / 1e6:.2f} Mwords/s  "
            f"p50/p95/p99 {row['latency_p50_s'] * 1e6:.0f}/"
            f"{row['latency_p95_s'] * 1e6:.0f}/"
            f"{row['latency_p99_s'] * 1e6:.0f} us  "
            f"({row['mean_batch_requests']:.1f} req/batch)"
        )
        print(
            f"  [{label}] round_trip_exact={row['round_trip_exact']}  "
            f"energy_exact={row['energy_exact']}"
        )

    ok = True
    best_single = 0.0
    best_fleet = 0.0
    for window_s in windows:
        print(f"# window={window_s * 1e3:.1f} ms ...", flush=True)
        row = bench_window(
            window_s, words, repeats, chunk_words=4096, in_flight=32
        )
        report["results"].append(row)
        ok = ok and row["round_trip_exact"] and row["energy_exact"]
        best_single = max(best_single, row["encode_words_per_s"])
        show(row)
        if args.fleet:
            fleet_row = bench_window(
                window_s, words, repeats, chunk_words=4096, in_flight=32,
                n_workers=args.fleet,
            )
            fleet_row["fleet_workers"] = args.fleet
            report["results"].append(fleet_row)
            ok = (ok and fleet_row["round_trip_exact"]
                  and fleet_row["energy_exact"])
            best_fleet = max(best_fleet, fleet_row["encode_words_per_s"])
            show(fleet_row, label=f"fleet-{args.fleet}")

    if args.fleet:
        # Gate on the best-vs-best ratio: the fleet's forwarding and
        # journaling hop must stay within the configured fraction of
        # the single-engine throughput.
        ratio = best_fleet / best_single if best_single else 0.0
        report["fleet_encode_ratio"] = ratio
        fleet_ok = ratio >= args.min_fleet_ratio
        report["fleet_ratio_ok"] = fleet_ok
        print(
            f"# fleet/single encode ratio {ratio:.2f} "
            f"(gate >= {args.min_fleet_ratio:.2f}): "
            f"{'ok' if fleet_ok else 'FAILED'}"
        )
        ok = ok and fleet_ok

    with open(args.output, "w") as sink:
        json.dump(report, sink, indent=2)
    print(f"wrote {args.output}")
    if not ok:
        print("CORRECTNESS GATE FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
