"""Analyzer speed: shallow AST lint and deep shape/unit inference.

The deep pass (``repro-tsv lint --deep``) runs in CI and pre-commit on
every change, so its wall time over ``src/repro`` belongs in the bench
trajectory next to the physics kernels: a regression here slows every
contributor.
"""

from pathlib import Path

import pytest

from repro.analysis.flow import analyze_paths
from repro.analysis.linter import iter_python_files, lint_paths

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


@pytest.fixture(scope="module")
def src_tree():
    files = list(iter_python_files([SRC]))
    assert len(files) > 30, "src/repro tree unexpectedly small"
    return [SRC]


def test_shallow_lint_src(benchmark, src_tree):
    """AST rules REP001..REP005 over the whole package."""
    findings = benchmark(lint_paths, src_tree)
    assert findings == []


def test_deep_lint_src(benchmark, src_tree):
    """Interprocedural shape/unit pass REP101..REP104 over the package."""
    findings = benchmark(analyze_paths, src_tree)
    assert findings == []
