"""Analyzer speed: shallow lint, shape/unit, concurrency, exactness.

All four run in CI and pre-commit on every change, so their wall time
over ``src/repro`` belongs in the bench trajectory next to the physics
kernels: a regression here slows every contributor.  The concurrency
and exactness passes additionally carry explicit wall-time budgets
(2 s each over the package) — their fixpoints (may-block closure,
transitive acquisitions, memoized interprocedural summaries) are the
parts most likely to blow up as the tree grows.

Run:  PYTHONPATH=src python benchmarks/bench_lint.py [--quick]
Writes ``benchmarks/BENCH_lint.json`` (gitignored; the committed seed
baselines live in ``benchmarks/baselines/``).  Exits non-zero
when any pass reports findings on the tree or the concurrency pass
misses its budget, so CI can gate on analyzer health without gating on
raw machine speed for the unbudgeted passes.
"""

import argparse
import json
import time
from pathlib import Path

import pytest

from repro.analysis.concurrency import analyze_threads
from repro.analysis.exactness import analyze_exactness
from repro.analysis.flow import analyze_paths
from repro.analysis.linter import iter_python_files, lint_paths

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Wall-time budget for the concurrency pass over src/repro (seconds,
#: best-of-repeats).  Generous against the ~1 s measured cost so CI
#: noise does not trip it, tight enough to catch a quadratic blowup.
THREAD_BUDGET_S = 2.0

#: Same deal for the exactness pass (REP301..REP306): its memoized
#: function summaries are linear today (~1.3 s measured); the budget
#: catches a recursion-guard or summary-invalidation regression.
EXACT_BUDGET_S = 2.0


@pytest.fixture(scope="module")
def src_tree():
    files = list(iter_python_files([SRC]))
    assert len(files) > 30, "src/repro tree unexpectedly small"
    return [SRC]


def test_shallow_lint_src(benchmark, src_tree):
    """AST rules REP001..REP007 over the whole package."""
    findings = benchmark(lint_paths, src_tree)
    assert findings == []


def test_deep_lint_src(benchmark, src_tree):
    """Interprocedural shape/unit pass REP101..REP104 over the package."""
    findings = benchmark(analyze_paths, src_tree)
    assert findings == []


def test_thread_lint_src(benchmark, src_tree):
    """Concurrency pass REP201..REP206 over the package."""
    findings = benchmark(analyze_threads, src_tree)
    assert findings == []


def test_exact_lint_src(benchmark, src_tree):
    """Exactness/determinism pass REP301..REP306 over the package."""
    findings = benchmark(analyze_exactness, src_tree)
    assert findings == []


def _time_pass(run, repeats):
    """Best-of-repeats wall time and the final findings list."""
    best = float("inf")
    findings = []
    for _ in range(repeats):
        begin = time.perf_counter()
        findings = run([SRC])
        best = min(best, time.perf_counter() - begin)
    return best, findings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions (CI smoke mode)",
    )
    parser.add_argument("--repeats", type=int, default=None,
                        help="timed runs per pass (best is reported)")
    parser.add_argument(
        "--output",
        default=str(Path(__file__).resolve().parent / "BENCH_lint.json"),
        help="report destination (default: the benchmarks/ directory)",
    )
    args = parser.parse_args(argv)
    repeats = args.repeats or (2 if args.quick else 5)

    n_files = len(list(iter_python_files([SRC])))
    passes = (
        ("shallow", lint_paths, None),
        ("flow", analyze_paths, None),
        ("threads", analyze_threads, THREAD_BUDGET_S),
        ("exact", analyze_exactness, EXACT_BUDGET_S),
    )

    report = {
        "benchmark": "lint",
        "quick": args.quick,
        "repeats": repeats,
        "n_files": n_files,
        "results": [],
    }
    ok = True
    for name, run, budget_s in passes:
        best, findings = _time_pass(run, repeats)
        clean = findings == []
        within = budget_s is None or best < budget_s
        ok = ok and clean and within
        row = {
            "pass": name,
            "best_s": best,
            "files_per_s": n_files / best,
            "n_findings": len(findings),
            "clean": clean,
        }
        if budget_s is not None:
            row["budget_s"] = budget_s
            row["within_budget"] = within
        report["results"].append(row)
        budget = (
            "" if budget_s is None
            else f"  budget {budget_s:.1f}s ({'ok' if within else 'MISSED'})"
        )
        print(
            f"{name:8s} {best:6.3f}s  {n_files / best:6.1f} files/s  "
            f"findings={len(findings)}{budget}"
        )
        for finding in findings:
            print(f"  {finding.render()}")

    with open(args.output, "w") as sink:
        json.dump(report, sink, indent=2)
    print(f"wrote {args.output}")
    if not ok:
        print("ANALYZER GATE FAILED")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
