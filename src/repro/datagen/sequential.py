"""Sequential (program-counter-like) data streams — the Fig. 2 workload.

The paper validates the Spiral mapping on "synthetic sequential data streams
with varying branch probability": address-like patterns that usually
increment by one and occasionally jump to a uniformly random value. Their
marginal distribution is uniform over the word range (so there is no spatial
bit correlation and every bit probability is 1/2), while the temporal
correlation — and with it the MSB self-switching — is set by the branch
probability: 0 is a pure counter, 1 is white uniform noise.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datagen.util import words_to_bits
from repro.rng import ensure_rng


def program_counter_words(
    n_samples: int,
    width: int,
    branch_probability: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Unsigned word stream: increment-by-one with random branches.

    Each step the value either increments (probability ``1 - branch
    probability``, wrapping modulo ``2**width``) or jumps to a uniform
    random word. The start value is uniform, so the stream is stationary
    and exactly equally distributed.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    if not 0.0 <= branch_probability <= 1.0:
        raise ValueError(
            f"branch_probability must be in [0, 1], got {branch_probability}"
        )
    rng = ensure_rng(rng)
    modulus = 1 << width
    branches = rng.random(n_samples) < branch_probability
    targets = rng.integers(0, modulus, n_samples, dtype=np.int64)

    words = np.empty(n_samples, dtype=np.int64)
    current = int(targets[0])  # uniform stationary start
    for t in range(n_samples):
        if branches[t]:
            current = int(targets[t])
        else:
            current = (current + 1) % modulus
        words[t] = current
    return words


def program_counter_bits(
    n_samples: int,
    width: int,
    branch_probability: float,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Bit stream of :func:`program_counter_words` (LSB first)."""
    words = program_counter_words(n_samples, width, branch_probability, rng)
    return words_to_bits(words, width)
