"""Synthetic MEMS sensor traces — the Fig. 5 / Fig. 6 workloads.

The paper uses magnetometer, accelerometer and gyroscope signals recorded on
a smartphone "in various daily use scenarios", each sensing three axes at
16 b. Those recordings are not redistributable; what the assignment
technique sees is only their second-order structure — normally distributed,
temporally correlated samples with sensor-specific DC offsets — so this
module synthesizes each sensor/scenario as

``offset + drift + periodic motion + AR(1) noise``

with physically motivated magnitudes (gravity on the accelerometer z-axis,
the Earth field on the magnetometer, near-zero-mean rates on the gyroscope).

Stream builders match the paper's three transmission formats:

* :func:`rms_stream` — per-sample root-mean-square of the three axes
  (unsigned, *not* mean-free: the Spiral case);
* :func:`xyz_interleaved_stream` — x, y, z regularly interleaved (temporal
  correlation destroyed, amplitude distribution kept: the Sawtooth case);
* :func:`all_sensors_mux_stream` — the three XYZ-interleaved sensors
  multiplexed pattern-by-pattern onto one array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.datagen.util import interleave_streams, quantize_to_integers, words_to_bits
from repro.rng import ensure_rng

SENSORS = ("accelerometer", "gyroscope", "magnetometer")
SCENARIOS = ("rest", "walking", "driving", "rotating")

#: Word width of every sensor channel (the paper: 16 b resolution).
WIDTH = 16


@dataclass(frozen=True)
class _AxisRecipe:
    """Synthesis parameters of one sensor axis in one scenario (in LSBs)."""

    offset: float
    noise_sigma: float
    noise_rho: float
    motion_amplitude: float
    motion_period: float  # samples


def _recipes(scenario: str) -> Dict[str, Tuple[_AxisRecipe, ...]]:
    """Per-sensor (x, y, z) synthesis recipes for a scenario."""
    if scenario not in SCENARIOS:
        raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")
    motion = {
        "rest": (0.0, 64.0),
        "walking": (1800.0, 50.0),
        "driving": (900.0, 160.0),
        "rotating": (2500.0, 80.0),
    }[scenario]
    amplitude, period = motion
    gravity = 8192.0  # ~1 g on the z axis at +-4 g full scale
    earth_field = 3000.0  # magnetometer DC component

    accel = (
        _AxisRecipe(0.0, 300.0, 0.95, amplitude, period),
        _AxisRecipe(0.0, 300.0, 0.95, 0.7 * amplitude, period * 1.3),
        _AxisRecipe(gravity, 260.0, 0.95, 0.5 * amplitude, period),
    )
    gyro_gain = 2.2 if scenario == "rotating" else 0.4
    gyro = (
        _AxisRecipe(0.0, 500.0, 0.9, gyro_gain * amplitude, period),
        _AxisRecipe(0.0, 500.0, 0.9, gyro_gain * 0.8 * amplitude, period * 0.8),
        _AxisRecipe(0.0, 400.0, 0.9, gyro_gain * 0.6 * amplitude, period * 1.1),
    )
    mag = (
        _AxisRecipe(earth_field, 120.0, 0.99, 0.1 * amplitude, period * 4.0),
        _AxisRecipe(-0.4 * earth_field, 120.0, 0.99, 0.08 * amplitude, period * 4.5),
        _AxisRecipe(0.7 * earth_field, 110.0, 0.99, 0.06 * amplitude, period * 5.0),
    )
    return {"accelerometer": accel, "gyroscope": gyro, "magnetometer": mag}


def sensor_axes(
    sensor: str,
    scenario: str = "walking",
    n_samples: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Raw (n_samples, 3) integer samples of one sensor's x, y, z axes."""
    if sensor not in SENSORS:
        raise ValueError(f"unknown sensor {sensor!r}; choose from {SENSORS}")
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    rng = ensure_rng(rng)
    recipes = _recipes(scenario)[sensor]
    t = np.arange(n_samples, dtype=float)
    axes = []
    for recipe in recipes:
        noise = np.empty(n_samples)
        noise[0] = rng.standard_normal()
        scale = np.sqrt(1.0 - recipe.noise_rho**2)
        innovations = rng.standard_normal(n_samples)
        for k in range(1, n_samples):
            noise[k] = recipe.noise_rho * noise[k - 1] + scale * innovations[k]
        phase = rng.uniform(0.0, 2.0 * np.pi)
        motion = recipe.motion_amplitude * np.sin(
            2.0 * np.pi * t / recipe.motion_period + phase
        )
        axes.append(recipe.offset + motion + recipe.noise_sigma * noise)
    samples = np.stack(axes, axis=1)
    return quantize_to_integers(samples, WIDTH, signed=True)


def axis_bits(axes: np.ndarray, axis: int) -> np.ndarray:
    """Bit stream (LSB first) of one axis column of :func:`sensor_axes`."""
    return words_to_bits(axes[:, axis], WIDTH)


def rms_stream(axes: np.ndarray) -> np.ndarray:
    """16-line bit stream of the per-sample RMS of the three axes.

    RMS values are unsigned and non-zero-mean — the stream where the paper
    finds the Spiral mapping beats the Sawtooth mapping.
    """
    axes = np.asarray(axes, dtype=float)
    if axes.ndim != 2 or axes.shape[1] != 3:
        raise ValueError("expected an (n, 3) axis array")
    rms = np.sqrt(np.mean(axes**2, axis=1))
    words = quantize_to_integers(rms, WIDTH, signed=False)
    return words_to_bits(words, WIDTH)


def xyz_interleaved_stream(axes: np.ndarray) -> np.ndarray:
    """16-line bit stream with x, y, z samples regularly interleaved.

    Interleaving destroys the temporal correlation while keeping the
    (approximately Gaussian) amplitude distribution — the Sawtooth case.
    """
    axes = np.asarray(axes)
    if axes.ndim != 2 or axes.shape[1] != 3:
        raise ValueError("expected an (n, 3) axis array")
    words = interleave_streams([axes[:, 0], axes[:, 1], axes[:, 2]])
    return words_to_bits(words, WIDTH)


def all_sensors_mux_stream(
    scenario: str = "walking",
    n_samples: int = 4096,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """All three sensors, XYZ-interleaved then muxed pattern-by-pattern.

    The paper's "for completeness" case: one TSV array carries the three
    XYZ-interleaved sensor streams in regular rotation.
    """
    rng = ensure_rng(rng)
    words_per_sensor: List[np.ndarray] = []
    for sensor in SENSORS:
        axes = sensor_axes(sensor, scenario, n_samples, rng)
        words = interleave_streams([axes[:, 0], axes[:, 1], axes[:, 2]])
        words_per_sensor.append(words)
    muxed = interleave_streams(words_per_sensor)
    return words_to_bits(muxed, WIDTH)
