"""Uniform random word streams — the Fig. 6 coded-link workload.

The paper's last experiment transmits "a random 7 b data stream" through a
coupling-invert NoC encoder; uniform random words are also the natural
worst-case reference for any statistics-exploiting technique (no structure
to exploit beyond what an encoder introduces).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datagen.util import words_to_bits
from repro.rng import ensure_rng


def uniform_random_words(
    n_samples: int,
    width: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Independent words uniform over ``0 .. 2**width - 1``."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if width < 1:
        raise ValueError("width must be >= 1")
    rng = ensure_rng(rng)
    return rng.integers(0, 1 << width, n_samples, dtype=np.int64)


def uniform_random_bits(
    n_samples: int,
    width: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Bit stream of :func:`uniform_random_words` (LSB first)."""
    return words_to_bits(uniform_random_words(n_samples, width, rng), width)
