"""Synthetic image-sensor streams — the Fig. 4 / Fig. 6 VSoC workloads.

The paper transmits digitized pixels from an image-sensing die to a
processing die and evaluates four transmission formats. Its data comes from
photographs (cars, people, landscapes); what the assignment technique
exploits is only the strong correlation of neighbouring pixels, so this
module synthesizes scenes with controlled spatial correlation instead:
low-pass-filtered Gaussian random fields (texture), smooth illumination
gradients, and a few uniform geometric patches (object silhouettes).

Stream builders (Sec. 5.1):

* :func:`rgb_parallel_stream` — all four Bayer colours of a 2x2 block in
  parallel over 32 lines (4 x 8 b);
* :func:`rgb_parallel_with_stable_stream` — the same plus four stable
  lines: enable, redundant (both parked at 0), power (1) and ground (0) —
  a 36-line / 6x6-array format;
* :func:`rgb_mux_stream` — the four colours time-multiplexed over 8 lines
  plus an enable line (3x3 array);
* :func:`grayscale_stream` — one 8 b grayscale pixel per cycle plus an
  enable line (3x3 array).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np
from scipy import ndimage

from repro.datagen.util import append_stable_lines, words_to_bits
from repro.rng import ensure_rng

#: Indices of the stable lines appended by
#: :func:`rgb_parallel_with_stable_stream`, in order.
STABLE_ENABLE, STABLE_REDUNDANT, STABLE_POWER, STABLE_GROUND = 32, 33, 34, 35


def synthetic_scene(
    height: int = 64,
    width: int = 64,
    correlation_length: float = 6.0,
    n_patches: int = 4,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """One synthetic grayscale scene, float in [0, 1], shape (height, width).

    The scene is a smooth illumination gradient plus low-pass-filtered
    Gaussian texture plus a few uniform rectangular patches, mimicking the
    pixel-correlation structure of photographs.
    """
    if height < 4 or width < 4:
        raise ValueError("scene must be at least 4x4")
    if correlation_length <= 0.0:
        raise ValueError("correlation_length must be positive")
    rng = ensure_rng(rng)

    texture = ndimage.gaussian_filter(
        rng.standard_normal((height, width)), sigma=correlation_length
    )
    spread = texture.std()
    if spread > 0.0:
        texture = texture / (4.0 * spread)  # most mass in [-0.25, 0.25]

    ys = np.linspace(0.0, 1.0, height)[:, None]
    xs = np.linspace(0.0, 1.0, width)[None, :]
    gdir = rng.uniform(-1.0, 1.0, 2)
    gradient = 0.25 * (gdir[0] * ys + gdir[1] * xs)

    scene = 0.5 + gradient + texture
    for _ in range(n_patches):
        h = rng.integers(height // 8, height // 2)
        w = rng.integers(width // 8, width // 2)
        y0 = rng.integers(0, height - h)
        x0 = rng.integers(0, width - w)
        scene[y0:y0 + h, x0:x0 + w] = rng.uniform(0.1, 0.9)
    return np.clip(scene, 0.0, 1.0)


def synthetic_rgb_scene(
    height: int = 64,
    width: int = 64,
    correlation_length: float = 6.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Synthetic RGB scene, float in [0, 1], shape (height, width, 3).

    Built from a shared luminance scene plus per-channel chroma scenes and
    per-channel colour casts (random gain and offset): within each channel
    neighbouring pixels stay strongly correlated (as in photographs), while
    the R, G and B values of the *same* pixel differ substantially — which
    is what makes the paper's colour-multiplexed transmission lose its
    temporal correlation.
    """
    rng = ensure_rng(rng)
    luminance = synthetic_scene(height, width, correlation_length, rng=rng)
    channels = []
    for _ in range(3):
        chroma = synthetic_scene(
            height, width, correlation_length, n_patches=2, rng=rng
        )
        gain = rng.uniform(0.6, 1.3)
        offset = rng.uniform(-0.25, 0.25)
        mixed = 0.35 * luminance + 0.65 * chroma
        channels.append(np.clip(gain * mixed + offset, 0.0, 1.0))
    return np.stack(channels, axis=-1)


def quantize_pixels(scene: np.ndarray, bits: int = 8) -> np.ndarray:
    """Scale a [0, 1] scene to 0..2**bits - 1 integers."""
    if bits < 1:
        raise ValueError("bits must be >= 1")
    top = (1 << bits) - 1
    return np.clip(np.rint(np.asarray(scene) * top), 0, top).astype(np.int64)


@dataclass(frozen=True)
class BayerFrame:
    """The four colour planes of a Bayer-mosaicked frame (RGGB layout).

    Each plane has shape ``(height // 2, width // 2)`` — one sample per 2x2
    Bayer cell: R top-left, two greens, B bottom-right.
    """

    red: np.ndarray
    green1: np.ndarray
    green2: np.ndarray
    blue: np.ndarray

    def planes(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return self.red, self.green1, self.green2, self.blue


def bayer_mosaic(rgb: np.ndarray) -> BayerFrame:
    """Sample an RGB frame through an RGGB Bayer colour filter array."""
    rgb = np.asarray(rgb)
    if rgb.ndim != 3 or rgb.shape[2] != 3:
        raise ValueError("expected an (H, W, 3) RGB frame")
    h, w = rgb.shape[:2]
    if h % 2 or w % 2:
        raise ValueError("frame dimensions must be even for a Bayer mosaic")
    return BayerFrame(
        red=rgb[0::2, 0::2, 0],
        green1=rgb[0::2, 1::2, 1],
        green2=rgb[1::2, 0::2, 1],
        blue=rgb[1::2, 1::2, 2],
    )


def _bayer_words(frames: List[np.ndarray]) -> np.ndarray:
    """Per-cell (n_cells, 4) int array of R, G1, G2, B over all frames."""
    cells = []
    for frame in frames:
        mosaic = bayer_mosaic(quantize_pixels(frame))
        stacked = np.stack(
            [plane.reshape(-1) for plane in mosaic.planes()], axis=1
        )
        cells.append(stacked)
    return np.concatenate(cells, axis=0)


def rgb_parallel_stream(frames: List[np.ndarray]) -> np.ndarray:
    """32-line bit stream: one full Bayer cell (R, G1, G2, B) per cycle.

    Lines 0-7 carry R (LSB first), 8-15 G1, 16-23 G2, 24-31 B. Cells are
    scanned row-major, so consecutive cycles carry neighbouring (strongly
    correlated) pixels.
    """
    cells = _bayer_words(frames)
    columns = [words_to_bits(cells[:, k], 8) for k in range(4)]
    return np.concatenate(columns, axis=1)


def rgb_parallel_with_stable_stream(frames: List[np.ndarray]) -> np.ndarray:
    """36-line bit stream: the parallel RGB format plus four stable lines.

    The extra lines (see the ``STABLE_*`` constants) model the paper's
    second analysis: an enable signal and a redundant (yield-enhancement)
    line both parked at logical 0, and one power (constant 1) and one
    ground (constant 0) TSV supplying the sensor. Inversions must be
    forbidden for the power/ground lines when optimizing
    (``AssignmentConstraints(no_invert={34, 35})``).
    """
    data = rgb_parallel_stream(frames)
    return append_stable_lines(data, [0, 0, 1, 0])


def rgb_mux_stream(frames: List[np.ndarray]) -> np.ndarray:
    """9-line bit stream: Bayer colours time-multiplexed plus an enable.

    Each Bayer cell takes four cycles (R, G1, G2, B in turn) on lines 0-7;
    line 8 is the enable signal, parked at 0. Multiplexing destroys the
    pixel-to-pixel temporal correlation — the paper's point in Fig. 4.
    """
    cells = _bayer_words(frames)
    muxed = cells.reshape(-1)  # R, G1, G2, B, R, G1, ...
    bits = words_to_bits(muxed, 8)
    return append_stable_lines(bits, [0])


def grayscale_stream(frames: List[np.ndarray]) -> np.ndarray:
    """9-line bit stream: one 8 b grayscale pixel per cycle plus an enable.

    Frames are grayscale ([0, 1] floats); pixels are scanned row-major.
    """
    words = np.concatenate(
        [quantize_pixels(frame).reshape(-1) for frame in frames]
    )
    bits = words_to_bits(words, 8)
    return append_stable_lines(bits, [0])


def default_frames(
    n_frames: int = 3,
    height: int = 64,
    width: int = 64,
    rgb: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """A small deterministic scene set (the stand-in for the paper's photos)."""
    if rng is None:
        rng = np.random.default_rng(2018)
    maker = synthetic_rgb_scene if rgb else synthetic_scene
    return [maker(height, width, rng=rng) for _ in range(n_frames)]
