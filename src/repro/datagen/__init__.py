"""Synthetic data-stream generators.

The paper evaluates its technique on sequential (program-counter-like)
streams, Gaussian DSP streams, image-sensor pixels and MEMS sensor traces.
The real traces are not redistributable, so this package synthesizes streams
with the same second-order bit statistics — which is all the technique
exploits.

``util``
    Word/bit conversions, interleaving and multiplexing helpers.
``gaussian``
    AR(1) Gaussian word streams (the paper's synthetic DSP workload).
``sequential``
    Branch-probability program-counter streams (Fig. 2 workload).
``images``
    Synthetic scenes, Bayer mosaic and the four VSoC stream builders
    (Fig. 4 / Fig. 6 workloads).
``mems``
    Synthetic 9-axis MEMS sensor traces (Fig. 5 / Fig. 6 workloads).
``random_stream``
    Uniform random words (Fig. 6 coded-link workload).
"""

from repro.datagen.util import (
    bits_to_words,
    interleave_streams,
    words_to_bits,
)
from repro.datagen.gaussian import ar1_gaussian_words, gaussian_bit_stream

__all__ = [
    "bits_to_words",
    "interleave_streams",
    "words_to_bits",
    "ar1_gaussian_words",
    "gaussian_bit_stream",
]
