"""AR(1) Gaussian word streams — the paper's synthetic DSP workload.

Sec. 4 and Fig. 3 of the paper analyze "Gaussian distributed 16 b pattern
sets" with a given standard deviation and lag-1 temporal correlation
``rho``. An AR(1) process

``x[t] = rho * x[t-1] + sqrt(1 - rho^2) * w[t]``,  ``w ~ N(0, sigma)``

has exactly that marginal distribution and autocorrelation, for positive and
negative ``rho`` alike.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datagen.util import quantize_to_integers, words_to_bits
from repro.rng import ensure_rng


def ar1_gaussian_samples(
    n_samples: int,
    sigma: float,
    rho: float = 0.0,
    mean: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Real-valued AR(1) Gaussian samples with the requested moments.

    The process is started from its stationary distribution, so every sample
    (including the first) is ``N(mean, sigma^2)`` and neighbouring samples
    have correlation coefficient ``rho``.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    if sigma < 0.0:
        raise ValueError("sigma must be non-negative")
    if not -1.0 < rho < 1.0:
        raise ValueError(f"rho must be in (-1, 1), got {rho}")
    rng = ensure_rng(rng)
    innovations = rng.standard_normal(n_samples)
    x = np.empty(n_samples)
    x[0] = innovations[0]
    scale = np.sqrt(1.0 - rho**2)
    for t in range(1, n_samples):
        x[t] = rho * x[t - 1] + scale * innovations[t]
    return mean + sigma * x


def ar1_gaussian_words(
    n_samples: int,
    width: int,
    sigma: float,
    rho: float = 0.0,
    mean: float = 0.0,
    signed: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Quantized AR(1) Gaussian word stream.

    ``sigma`` and ``mean`` are in LSBs of the target width. Samples are
    rounded and saturated to the (two's complement if ``signed``) word
    range.
    """
    samples = ar1_gaussian_samples(n_samples, sigma=sigma, rho=rho, mean=mean,
                                   rng=rng)
    return quantize_to_integers(samples, width=width, signed=signed)


def gaussian_bit_stream(
    n_samples: int,
    width: int,
    sigma: float,
    rho: float = 0.0,
    mean: float = 0.0,
    signed: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Bit stream of a quantized AR(1) Gaussian word stream (LSB first)."""
    words = ar1_gaussian_words(n_samples, width=width, sigma=sigma, rho=rho,
                               mean=mean, signed=signed, rng=rng)
    return words_to_bits(words, width)


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = samples, ``N`` = bits per word.
REPRO_SIGNATURES = {
    "ar1_gaussian_samples": {
        "n_samples": "scalar dimensionless",
        "sigma": "scalar dimensionless",
        "rho": "scalar dimensionless",
        "mean": "scalar dimensionless",
        "rng": "any",
        "return": "(T,) dimensionless",
    },
    "ar1_gaussian_words": {
        "n_samples": "scalar dimensionless",
        "width": "scalar dimensionless",
        "sigma": "scalar dimensionless",
        "rho": "scalar dimensionless",
        "mean": "scalar dimensionless",
        "signed": "any",
        "rng": "any",
        "return": "(T,) dimensionless",
    },
    "gaussian_bit_stream": {
        "n_samples": "scalar dimensionless",
        "width": "scalar dimensionless",
        "sigma": "scalar dimensionless",
        "rho": "scalar dimensionless",
        "mean": "scalar dimensionless",
        "signed": "any",
        "rng": "any",
        "return": "(T, N) bit",
    },
}
