"""Word/bit conversions and stream composition helpers.

Conventions (see DESIGN.md):

* a *word stream* is a 1-D integer array of samples;
* a *bit stream* is a ``(samples, lines)`` array of 0/1 with column 0 the
  LSB;
* negative words are represented in two's complement at the given width.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def words_to_bits(words: np.ndarray, width: int) -> np.ndarray:
    """Expand integer words into a ``(samples, width)`` bit stream (LSB first).

    Negative values are encoded in two's complement; every word must fit the
    width (``-2**(width-1) <= w < 2**width`` — unsigned values may use the
    full width).
    """
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError(f"word stream must be 1-D, got {words.ndim}-D")
    if not np.issubdtype(words.dtype, np.integer):
        raise ValueError(f"word stream must be integer, got {words.dtype}")
    lo, hi = -(2 ** (width - 1)), 2**width
    if ((words < lo) | (words >= hi)).any():
        raise ValueError(f"words outside representable range for width {width}")
    unsigned = np.where(words < 0, words + (1 << width), words).astype(np.uint64)
    shifts = np.arange(width, dtype=np.uint64)
    return ((unsigned[:, None] >> shifts) & 1).astype(np.uint8)


def bits_to_words(bits: np.ndarray, signed: bool = False) -> np.ndarray:
    """Collapse a ``(samples, width)`` bit stream back into integer words.

    With ``signed=True`` the MSB (last column) is interpreted as a two's
    complement sign bit.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError(f"bit stream must be 2-D, got {bits.ndim}-D")
    width = bits.shape[1]
    weights = (1 << np.arange(width, dtype=np.int64)).astype(np.int64)
    words = (bits.astype(np.int64) * weights).sum(axis=1)
    if signed:
        words = np.where(words >= (1 << (width - 1)), words - (1 << width), words)
    return words


def interleave_streams(streams: Sequence[np.ndarray]) -> np.ndarray:
    """Round-robin (sample-by-sample) multiplex of equal-shape streams.

    Works on word streams (1-D) and bit streams (2-D) alike. With inputs
    ``A, B`` the output is ``A0, B0, A1, B1, ...`` — the paper's "regularly
    interleaved/multiplexed" transmission, which destroys temporal
    correlation while preserving the amplitude distribution.
    """
    if not streams:
        raise ValueError("need at least one stream")
    arrays = [np.asarray(s) for s in streams]
    shape = arrays[0].shape
    if any(a.shape != shape for a in arrays):
        raise ValueError("all streams must have the same shape")
    stacked = np.stack(arrays, axis=1)
    return stacked.reshape((-1,) + shape[1:])


def concatenate_streams(streams: Sequence[np.ndarray]) -> np.ndarray:
    """Sequential (block-by-block) transmission of several streams.

    The paper's "Sensor Seq." scenario: each stream is sent completely
    before the next begins, preserving intra-stream temporal correlation.
    """
    if not streams:
        raise ValueError("need at least one stream")
    return np.concatenate([np.asarray(s) for s in streams], axis=0)


def append_stable_lines(bits: np.ndarray, values: Sequence[int]) -> np.ndarray:
    """Append constant lines (enable/redundant/power/ground) to a bit stream.

    ``values`` gives the constant logical level of each extra line, appended
    after the existing columns in order.
    """
    bits = np.asarray(bits)
    if bits.ndim != 2:
        raise ValueError("bit stream must be 2-D")
    for v in values:
        if v not in (0, 1):
            raise ValueError(f"stable line value must be 0 or 1, got {v}")
    extra = np.tile(np.asarray(values, dtype=np.uint8), (bits.shape[0], 1))
    return np.concatenate([bits.astype(np.uint8), extra], axis=1)


def quantize_to_integers(
    values: np.ndarray, width: int, signed: bool = True
) -> np.ndarray:
    """Round real samples to integers and saturate them to the word range."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    values = np.asarray(values, dtype=float)
    rounded = np.rint(values).astype(np.int64)
    if signed:
        lo, hi = -(2 ** (width - 1)), 2 ** (width - 1) - 1
    else:
        lo, hi = 0, 2**width - 1
    return np.clip(rounded, lo, hi)
