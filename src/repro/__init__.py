"""repro — low-power bit-to-TSV assignment for 3-D interconnects.

An open-source reproduction of L. Bamberg, R. Schmidt and A. Garcia-Ortiz,
*"Coding Approach for Low-Power 3D Interconnects"*, DAC 2018: the TSV
power consumption of a 3-D IC is reduced by a fixed, signed bit-to-TSV
assignment — permute which logical bit drives which via and transmit some
bits inverted — exploiting the heterogeneous capacitances of TSV arrays and
the MOS (depletion) effect.

Typical use::

    import numpy as np
    from repro import TSVArrayGeometry, optimize_assignment

    geometry = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
    report = optimize_assignment(bit_stream, geometry)
    print(report.reduction_vs_random, report.assignment.line_of_bit)

Subpackages: :mod:`repro.tsv` (capacitance substrate), :mod:`repro.core`
(power model + assignment search), :mod:`repro.stats` (bit statistics),
:mod:`repro.datagen` (workload synthesis), :mod:`repro.coding` (classic
low-power codes), :mod:`repro.circuit` (transient/energy validation),
:mod:`repro.routing` (overhead analysis), :mod:`repro.experiments` (the
paper's figures).
"""

from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.pipeline import (
    AssignmentReport,
    evaluate_assignment,
    optimize_assignment,
)
from repro.core.power import PowerModel
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import PositionClass, TSVArrayGeometry

__version__ = "1.0.0"

__all__ = [
    "AssignmentConstraints",
    "AssignmentReport",
    "BitStatistics",
    "CapacitanceExtractor",
    "LinearCapacitanceModel",
    "PositionClass",
    "PowerModel",
    "SignedPermutation",
    "TSVArrayGeometry",
    "evaluate_assignment",
    "optimize_assignment",
    "__version__",
]
