"""Sec. 3: local-routing parasitic overhead of the assignment freedom.

The paper quantifies the only cost of the technique on a 3x3 array in a
40 nm node: across all bit-to-TSV assignments the worst-case path-parasitic
increase is 0.4 %, the mean below 0.2 % and the standard deviation below
0.1 % — i.e. negligible. We compute the same three statistics exactly (see
:mod:`repro.routing.local`) for the paper's 3x3 / r = 2 um / minimum-pitch
setup and for the other array sizes used in the evaluation.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentRow, format_table
from repro.routing.local import LocalRoutingModel
from repro.tsv.geometry import TSVArrayGeometry


def run(fast: bool = False) -> List[ExperimentRow]:
    """Worst / mean / std parasitic increase per array."""
    configs = [
        ("3x3 r=2um d=8um", TSVArrayGeometry(3, 3, 8e-6, 2e-6)),
        ("3x3 r=1um d=4um", TSVArrayGeometry(3, 3, 4e-6, 1e-6)),
        ("4x4 r=2um d=8um", TSVArrayGeometry(4, 4, 8e-6, 2e-6)),
    ]
    if not fast:
        configs.append(("6x6 r=1um d=4um", TSVArrayGeometry(6, 6, 4e-6, 1e-6)))
    rows = []
    for label, geometry in configs:
        overhead = LocalRoutingModel(geometry).overhead()
        rows.append(
            ExperimentRow(
                label,
                {
                    "worst": overhead.worst_case,
                    "mean": overhead.mean,
                    "std": overhead.std,
                },
            )
        )
    return rows


def main(fast: bool = False) -> str:
    table = format_table(
        "Sec. 3 - path-parasitic increase across all assignments "
        "(paper: 0.4 % / <0.2 % / <0.1 % on the 3x3)",
        run(fast=fast),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
