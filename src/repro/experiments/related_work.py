"""Related-work comparison: crosstalk-avoidance coding vs bit assignment.

The paper's introduction dismisses crosstalk-avoidance codes (CAC, its
refs [13-15]) for power purposes: "these techniques again improve the
signal integrity but also increase the TSV count, leading to an even
increased overall TSV power". This experiment makes that argument
quantitative with our LAT-style codebook (:mod:`repro.coding.cac`):

An 8-bit random payload crosses a die boundary at 3 GHz.

* **plain** — 8 data lines + 1 spare on one 3x3 array, arbitrary wiring;
* **assignment** — the same link with the Eq. 10 optimal assignment
  (zero extra TSVs);
* **LAT-CAC** — the payload split into two 4-bit groups, each encoded into
  the 63-word LAT codebook of a 3x3 array: 18 TSVs, no opposite adjacent
  transitions by construction;
* **LAT-CAC + assignment** — the coded streams additionally re-assigned.

Reported per variant: TSV count, worst-case victim crosstalk noise,
worst observed Miller effective capacitance (the delay proxy CAC bounds),
and total power scaled to the payload. Expected shape: CAC wins both SI
metrics and *loses* power; the assignment wins power at zero cost.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.coding.cac import build_lat_codebook
from repro.core.assignment import SignedPermutation
from repro.datagen.random_stream import uniform_random_words
from repro.datagen.util import append_stable_lines, words_to_bits
from repro.experiments.common import (
    ExperimentRow,
    circuit_power_mw,
    extractor_for,
    format_table,
    optimize_for_stream,
)
from repro.si.delay import effective_capacitance
from repro.si.noise import stream_noise_statistics
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

PAYLOAD_BITS = 8


def _max_effective_cap(cap_matrix: np.ndarray, bits: np.ndarray) -> float:
    """Largest Miller effective capacitance observed in a stream [F]."""
    deltas = np.diff(bits.astype(np.int8), axis=0)
    worst = 0.0
    # Deduplicate transition patterns — streams repeat them heavily.
    unique = np.unique(deltas, axis=0)
    for delta in unique:
        if not delta.any():
            continue
        worst = max(worst, float(effective_capacitance(
            cap_matrix, delta.astype(float)
        ).max()))
    return worst


def run(
    fast: bool = False,
    n_samples: Optional[int] = None,
    seed: int = 2018,
) -> List[ExperimentRow]:
    if n_samples is None:
        n_samples = 2000 if fast else 20000
    rng = np.random.default_rng(seed)
    geometry = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)
    cap = extractor_for(geometry).extract()
    sa_steps = 60 if fast else None

    payload = uniform_random_words(n_samples, PAYLOAD_BITS, rng)

    # --- plain: 8 data lines + one spare (stable 0) on one 3x3 -------------
    plain_bits = append_stable_lines(
        words_to_bits(payload, PAYLOAD_BITS), [0]
    )
    rows: List[ExperimentRow] = []

    def row(label, streams, assignments, n_tsvs):
        """Aggregate metrics over one or two (stream, assignment) arrays."""
        power = 0.0
        worst_noise = 0.0
        worst_cap = 0.0
        for bits, assignment in zip(streams, assignments):
            routed = (
                assignment.apply_to_bits(bits)
                if assignment is not None else bits
            )
            power += circuit_power_mw(
                routed, geometry, payload_bits=PAYLOAD_BITS
            )
            stats = stream_noise_statistics(cap, routed)
            worst_noise = max(worst_noise, stats.peak)
            worst_cap = max(worst_cap, _max_effective_cap(cap, routed))
        rows.append(
            ExperimentRow(
                label,
                {
                    "TSVs": float(n_tsvs),
                    "power [mW]": power,
                    "peak noise [V]": worst_noise,
                    "max C_eff [fF]": worst_cap * 1e15,
                },
            )
        )

    row("plain 3x3", [plain_bits], [None], 9)

    optimal = optimize_for_stream(
        BitStatistics.from_stream(plain_bits), geometry,
        seed=seed, sa_steps=sa_steps,
    )
    row("assignment 3x3", [plain_bits], [optimal], 9)

    # --- LAT-CAC: two 4-bit groups on two 3x3 arrays -------------------------
    codebook = build_lat_codebook(geometry)
    low = payload & 0xF
    high = payload >> 4
    cac_streams = [
        codebook.to_bits(codebook.encode(low)),
        codebook.to_bits(codebook.encode(high)),
    ]
    row("LAT-CAC 2x(3x3)", cac_streams, [None, None], 18)

    cac_assignments = [
        optimize_for_stream(
            BitStatistics.from_stream(s), geometry, seed=seed,
            sa_steps=sa_steps,
        )
        for s in cac_streams
    ]
    row("LAT-CAC + assign.", cac_streams, cac_assignments, 18)
    return rows


def main(fast: bool = False) -> str:
    table = format_table(
        "Related work - LAT crosstalk-avoidance coding vs bit assignment "
        "(8-bit payload, 3 GHz, r=1um d=4um)",
        run(fast=fast),
        unit="raw",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
