"""Reproductions of every evaluation figure of the paper.

One module per figure (``fig2`` ... ``fig6``) plus the Sec. 3 routing
overhead analysis and the ablations called out in DESIGN.md. Each module
exposes

* ``run(fast=False, ...)`` — compute the figure's data and return it as a
  list of labelled rows;
* ``main()`` — run and pretty-print (the CLI and the benchmarks call this).

``fast=True`` shrinks stream lengths and sweep densities so the whole set
finishes in seconds (used by the benchmark harness defaults); the full
settings reproduce the paper-scale sweeps.
"""
