"""Fig. 5: optimal vs systematic assignments for MEMS sensor streams.

Sec. 5.2: magnetometer, accelerometer and gyroscope traces (3 axes, 16 b)
over a 4x4 array with r = 2 um, d = 8 um. Per sensor two formats — the
per-sample RMS of the three axes, and the x/y/z samples regularly
interleaved — plus, "for completeness", all three XYZ-interleaved sensors
multiplexed onto one array.

Expected shape:

* interleaved streams: temporally uncorrelated but (nearly) normally
  distributed — the Sawtooth mapping comes close to the optimal assignment
  (paper: optimal up to 21.1 %), Spiral does little;
* RMS streams: unsigned, non-zero-mean, spatially correlated — Spiral
  clearly beats Sawtooth, but the attainable reduction is smaller (paper:
  max 13.3 %);
* the optimal assignment always wins, helped by inversions because the
  sensor signals are not perfectly mean-free.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.datagen import mems
from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    format_table,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

SCENARIO = "walking"


def array() -> TSVArrayGeometry:
    return TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)


def run(
    fast: bool = False,
    n_samples: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    """Reduction vs the mean random assignment for every stream format."""
    if n_samples is None:
        n_samples = 1500 if fast else 8192
    geometry = array()
    rng = np.random.default_rng(seed)
    sweep = ExperimentSweep(
        "fig5", checkpoint_dir,
        fingerprint={"fast": fast, "n_samples": n_samples, "seed": seed},
    )

    # Datagen runs unconditionally (before the cached sweep points) so a
    # resumed sweep replays the same RNG sequence.
    streams = {}
    for sensor in mems.SENSORS:
        axes = mems.sensor_axes(sensor, SCENARIO, n_samples, rng)
        short = sensor[:3].capitalize()
        streams[f"{short} RMS"] = mems.rms_stream(axes)
        streams[f"{short} XYZ"] = mems.xyz_interleaved_stream(axes)
    streams["All mux."] = mems.all_sensors_mux_stream(
        SCENARIO, n_samples, rng
    )

    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for label, bits in streams.items():

            def point(bits=bits):
                stats = BitStatistics.from_stream(bits)
                study = study_assignments(
                    stats,
                    geometry,
                    methods=("optimal", "sawtooth", "spiral"),
                    mos_aware=True,
                    with_inversions=True,
                    baseline_samples=50 if fast else 200,
                    seed=seed,
                    sa_steps=6 * geometry.n_tsvs if fast else None,
                )
                return {
                    "optimal": study.reduction("optimal"),
                    "sawtooth": study.reduction("sawtooth"),
                    "spiral": study.reduction("spiral"),
                }

            rows.append(
                ExperimentRow(
                    label=label,
                    values=sweep.compute(
                        label, point,
                        fingerprint={
                            "experiment": "fig5", "stream": label,
                            "fast": fast, "n_samples": n_samples,
                            "seed": seed,
                        },
                    ),
                )
            )
    return rows


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    table = format_table(
        "Fig. 5 - P_red vs mean random assignment, MEMS sensor streams on "
        "4x4 (r=2um, d=8um)",
        run(fast=fast, checkpoint_dir=checkpoint_dir),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
