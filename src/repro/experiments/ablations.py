"""Ablations of the design choices called out in DESIGN.md.

* :func:`capacitance_models` — how the extraction model (reference FDM vs
  the two compact profiles) changes the predicted reductions;
* :func:`linear_capmodel_error` — accuracy of the Eq. 6/7 linear
  capacitance/probability model against per-probability re-extraction (the
  paper quotes < 2 % NRMSE);
* :func:`optimizers` — solution quality and cost of simulated annealing vs
  greedy descent vs exhaustive enumeration;
* :func:`inversions` — what the inversion freedom (the MOS-effect half of
  the technique) contributes on a stream with parked-at-0 stable lines.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.assignment import SignedPermutation
from repro.core.optimize import (
    exhaustive_search,
    greedy_descent,
    simulated_annealing,
)
from repro.core.power import PowerModel
from repro.core.pipeline import random_baseline_power
from repro.datagen import images
from repro.datagen.gaussian import gaussian_bit_stream
from repro.experiments.common import (
    ExperimentRow,
    cap_model_for,
    extractor_for,
    format_table,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry


def capacitance_models(
    fast: bool = False, seed: int = 2018
) -> List[ExperimentRow]:
    """Reduction predictions of the same sweep under the three extractors."""
    geometry = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
    rng = np.random.default_rng(seed)
    bits = gaussian_bit_stream(
        3000 if fast else 20000, 16, sigma=256.0, rho=0.6, rng=rng
    )
    stats = BitStatistics.from_stream(bits)
    rows = []
    for method in ("fdm", "compact", "compact3d"):
        study = study_assignments(
            stats,
            geometry,
            methods=("optimal", "sawtooth", "spiral"),
            baseline_samples=50 if fast else 200,
            seed=seed,
            sa_steps=6 * geometry.n_tsvs if fast else None,
            cap_method=method,
        )
        rows.append(
            ExperimentRow(
                method,
                {
                    "optimal": study.reduction("optimal"),
                    "sawtooth": study.reduction("sawtooth"),
                    "spiral": study.reduction("spiral"),
                },
            )
        )
    return rows


def linear_capmodel_error(
    fast: bool = False, seed: int = 2018
) -> List[ExperimentRow]:
    """NRMSE of the Eq. 6/7 linear model vs real re-extraction."""
    rng = np.random.default_rng(seed)
    rows = []
    configs = [
        ("3x3 compact3d", TSVArrayGeometry(3, 3, 4e-6, 1e-6), "compact3d"),
        ("4x4 compact3d", TSVArrayGeometry(4, 4, 8e-6, 2e-6), "compact3d"),
        ("2x2 fdm", TSVArrayGeometry(2, 2, 8e-6, 2e-6), "fdm"),
    ]
    n_checks = 3 if fast else 8
    for label, geometry, method in configs:
        extractor = extractor_for(geometry, method)
        two_point = LinearCapacitanceModel.fit(extractor)
        probes = 0 if method == "fdm" else (4 if fast else 8)
        regression = LinearCapacitanceModel.fit(extractor, n_probes=probes)
        checks = [rng.uniform(0.0, 1.0, geometry.n_tsvs)
                  for _ in range(n_checks)]
        rows.append(
            ExperimentRow(
                label,
                {
                    "2-pt NRMSE": float(np.mean(
                        [two_point.nrmse(extractor, p) for p in checks]
                    )),
                    "regr NRMSE": float(np.mean(
                        [regression.nrmse(extractor, p) for p in checks]
                    )),
                },
            )
        )
    return rows


def optimizers(fast: bool = False, seed: int = 2018) -> List[ExperimentRow]:
    """Quality (gap to exhaustive) and cost of the search algorithms."""
    geometry = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)
    rng = np.random.default_rng(seed)
    frames = images.default_frames(2, 24 if fast else 48, 24 if fast else 48,
                                   rng=rng)
    bits = images.rgb_mux_stream(frames)
    stats = BitStatistics.from_stream(bits)
    # Fixed capacitance matrix (at the stream's bit probabilities) so that
    # every solver, including the certified-exact branch and bound, answers
    # the same question.
    cap = cap_model_for(geometry).matrix(stats.probabilities)
    model = PowerModel(stats, cap)

    rows = []
    # Exhaustive without inversions is exact and feasible on 9 lines.
    t0 = time.perf_counter()
    exact = exhaustive_search(model.power, 9, with_inversions=False)
    t_exact = time.perf_counter() - t0
    rows.append(
        ExperimentRow(
            "exhaustive (no inv)",
            {"power [fF]": exact.power * 1e15, "evals": exact.evaluations,
             "time [s]": t_exact},
        )
    )
    # Branch-and-bound: certified-exact with a fraction of the nodes.
    from repro.core.exact import branch_and_bound

    t0 = time.perf_counter()
    _, bb_power, bb_nodes = branch_and_bound(stats, cap)
    rows.append(
        ExperimentRow(
            "branch & bound",
            {"power [fF]": bb_power * 1e15, "evals": bb_nodes,
             "time [s]": time.perf_counter() - t0},
        )
    )
    for label, runner in (
        (
            "sim. annealing",
            lambda: simulated_annealing(
                model.power, 9, with_inversions=False,
                rng=np.random.default_rng(seed),
                steps_per_temperature=50 if fast else None,
            ),
        ),
        (
            "greedy descent",
            lambda: greedy_descent(
                model.power, SignedPermutation.identity(9),
                with_inversions=False,
            ),
        ),
    ):
        t0 = time.perf_counter()
        result = runner()
        elapsed = time.perf_counter() - t0
        rows.append(
            ExperimentRow(
                label,
                {
                    "power [fF]": result.power * 1e15,
                    "evals": result.evaluations,
                    "time [s]": elapsed,
                    "gap": result.power / exact.power - 1.0,
                },
            )
        )
    return rows


def inversions(fast: bool = False, seed: int = 2018) -> List[ExperimentRow]:
    """Contribution of the inversion freedom on a stable-lines stream."""
    geometry = TSVArrayGeometry(rows=6, cols=6, pitch=4e-6, radius=1e-6)
    rng = np.random.default_rng(seed)
    size = 24 if fast else 64
    frames = [
        images.synthetic_rgb_scene(size, size, rng=rng)
        for _ in range(2 if fast else 4)
    ]
    bits = images.rgb_parallel_with_stable_stream(frames)
    stats = BitStatistics.from_stream(bits)
    model = PowerModel(stats, cap_model_for(geometry))
    mean_power, _ = random_baseline_power(
        model, n_samples=30 if fast else 150,
        rng=np.random.default_rng(seed),
    )
    rows = []
    for label, with_inv in (("with inversions", True),
                            ("without inversions", False)):
        result = simulated_annealing(
            model.power, 36, with_inversions=with_inv,
            rng=np.random.default_rng(seed),
            steps_per_temperature=(6 * 36) if fast else None,
        )
        rows.append(
            ExperimentRow(
                label,
                {"reduction": 1.0 - result.power / mean_power},
            )
        )
    return rows


def variation_robustness(
    fast: bool = False, seed: int = 2018
) -> List[ExperimentRow]:
    """Does the design-time assignment survive process variation?

    Monte-Carlo over geometry (radius/liner) and per-TSV mismatch; the
    optimized and the systematic assignments are frozen at their nominal
    choices and re-evaluated on every sample.
    """
    from repro.core.systematic import sawtooth_assignment
    from repro.tsv.variation import VariationModel, assignment_robustness

    geometry = TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)
    rng = np.random.default_rng(seed)
    bits = gaussian_bit_stream(
        3000 if fast else 15000, 16, sigma=256.0, rho=0.5, rng=rng
    )
    stats = BitStatistics.from_stream(bits)
    from repro.experiments.common import optimize_for_stream

    candidates = {
        "optimal (nominal)": optimize_for_stream(
            stats, geometry, seed=seed,
            sa_steps=6 * geometry.n_tsvs if fast else None,
        ),
        "sawtooth": sawtooth_assignment(geometry),
    }
    variation = VariationModel()
    rows = []
    for label, assignment in candidates.items():
        report = assignment_robustness(
            stats, geometry, assignment, variation=variation,
            n_samples=10 if fast else 40,
            baseline_samples=20 if fast else 40,
            rng=np.random.default_rng(seed),
        )
        rows.append(
            ExperimentRow(
                label,
                {
                    "nominal": report.nominal_reduction,
                    "mean": report.mean_reduction,
                    "worst": report.worst_reduction,
                    "regret": report.mean_regret,
                },
            )
        )
    return rows


def pi_segments(fast: bool = False) -> List[ExperimentRow]:
    """Why 3pi: convergence of the RLC ladder vs segment count.

    Transfer magnitude of one TSV line at the clock frequency and at two
    overtones, per segment count — 1pi diverges at high frequency, 3pi sits
    on the 5pi reference (the paper's model choice).
    """
    from repro.circuit.ac import ACSolver
    from repro.circuit.driver import DriverModel
    from repro.tsv.rlc import build_array_netlist

    geometry = TSVArrayGeometry(rows=1, cols=2, pitch=8e-6, radius=2e-6)
    cap = extractor_for(geometry, "compact").extract()
    bits = np.array([[1, 0]], dtype=np.uint8)
    driver = DriverModel()
    freqs = np.array([3e9, 30e9, 300e9])
    rows = []
    for n_segments in (1, 2, 3, 5):
        netlist = build_array_netlist(
            geometry, cap, bits, driver, 1e-9, n_segments=n_segments
        )
        result = ACSolver(netlist).sweep(freqs)
        magnitude = np.abs(result.voltage(("tsv", 0, n_segments)))
        rows.append(
            ExperimentRow(
                f"{n_segments}pi",
                {
                    "|H| 3GHz": float(magnitude[0]),
                    "|H| 30GHz": float(magnitude[1]),
                    "|H| 300GHz": float(magnitude[2]),
                },
            )
        )
    return rows


def main(fast: bool = False) -> str:
    parts = [
        format_table("Ablation - extraction model", capacitance_models(fast)),
        format_table(
            "Ablation - Eq. 6/7 linear capacitance model error "
            "(paper: < 2 %)",
            linear_capmodel_error(fast),
        ),
        format_table("Ablation - optimizers", optimizers(fast), unit="raw"),
        format_table(
            "Ablation - value of inversions (36-line image stream with "
            "4 stable lines)",
            inversions(fast),
        ),
        format_table(
            "Ablation - robustness under process variation "
            "(5 % geometry sigma, 2 % mismatch)",
            variation_robustness(fast),
        ),
        format_table(
            "Ablation - RLC ladder convergence (why the paper uses 3pi)",
            pi_segments(fast),
            unit="raw",
        ),
    ]
    output = "\n\n".join(parts)
    print(output)
    return output


if __name__ == "__main__":
    main()
