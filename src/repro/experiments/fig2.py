"""Fig. 2: optimal vs Spiral assignment on sequential data streams.

The paper sweeps the branch probability of synthetic sequential (program-
counter-like) streams — equally distributed, temporally correlated — and
plots the power reduction against a worst-case random assignment for two
arrays: a 4x4 with r = 2 um / d = 8 um and a 5x5 with r = 1 um /
d = 4.5 um. Expected shape: both assignments nearly coincide (the Spiral is
effectively optimal for this signal class), with the largest reductions at
strong correlation (low branch probability) and reductions vanishing as the
stream approaches white noise.

Because the patterns are equally distributed every bit probability is 1/2:
capacitances are assignment-independent (Eq. 11) and inversions cannot help,
so the optimal search runs without them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datagen.sequential import program_counter_bits
from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    format_table,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

FULL_BRANCH_PROBABILITIES = (0.0, 0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0)
FAST_BRANCH_PROBABILITIES = (0.0, 0.1, 0.5, 1.0)


def arrays() -> List[TSVArrayGeometry]:
    return [
        TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6),
        TSVArrayGeometry(rows=5, cols=5, pitch=4.5e-6, radius=1e-6),
    ]


def run(
    fast: bool = False,
    branch_probabilities: Optional[Sequence[float]] = None,
    n_samples: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    """Reduction (vs the worst random assignment, as in the paper) per
    branch probability, for both arrays and both assignment strategies."""
    if branch_probabilities is None:
        branch_probabilities = (
            FAST_BRANCH_PROBABILITIES if fast else FULL_BRANCH_PROBABILITIES
        )
    if n_samples is None:
        n_samples = 4000 if fast else 30000
    rng = np.random.default_rng(seed)
    sweep = ExperimentSweep(
        "fig2", checkpoint_dir,
        fingerprint={
            "fast": fast, "branch_probabilities": branch_probabilities,
            "n_samples": n_samples, "seed": seed,
        },
    )

    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for branch in branch_probabilities:
            row = ExperimentRow(label=f"branch={branch:.2f}")
            for geometry in arrays():
                tag = f"{geometry.rows}x{geometry.cols}"
                # Datagen runs unconditionally (outside the cached thunk)
                # so a resumed sweep replays the same RNG sequence.
                bits = program_counter_bits(
                    n_samples, geometry.n_tsvs, branch, rng
                )

                def point(bits=bits, geometry=geometry):
                    stats = BitStatistics.from_stream(bits)
                    study = study_assignments(
                        stats,
                        geometry,
                        methods=("optimal", "spiral"),
                        mos_aware=False,  # Eq. 11: balanced probabilities
                        with_inversions=False,
                        baseline_samples=100 if fast else 300,
                        seed=seed,
                        sa_steps=8 * geometry.n_tsvs if fast else None,
                    )
                    return {
                        "opt": study.reduction("optimal", "worst"),
                        "spiral": study.reduction("spiral", "worst"),
                    }

                values = sweep.compute(
                    f"branch={branch:.2f}/{tag}", point,
                    fingerprint={
                        "experiment": "fig2", "branch": branch,
                        "rows": geometry.rows, "cols": geometry.cols,
                        "pitch": geometry.pitch, "radius": geometry.radius,
                        "fast": fast, "n_samples": n_samples, "seed": seed,
                    },
                )
                row.values[f"opt {tag}"] = values["opt"]
                row.values[f"spiral {tag}"] = values["spiral"]
            rows.append(row)
    return rows


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    table = format_table(
        "Fig. 2 - P_red vs worst-case random assignment, sequential streams",
        run(fast=fast, checkpoint_dir=checkpoint_dir),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
