"""Network-level case study: the technique across a whole 3-D NoC.

The paper evaluates its final experiment on a single 3-D link, arguing that
"a dedicated encoding for each 3D link is too cost intensive" in a 3-D NoC.
With the :mod:`repro.noc` substrate we can check the claim at network
scale: a 3x3x2 mesh (a logic die over a memory/accelerator die), three
traffic patterns, every vertical link carrying its simulated flit trace.

Per pattern the table reports, summed over all TSV links:

* ``assigned``       — reduction from the (free) per-link bit-to-TSV
  assignment;
* ``coded``          — reduction from per-link coupling-invert coding
  (costs one extra TSV per link plus codec logic — the option the paper
  rules out);
* ``coded+assigned`` — both;
* ``TSV links`` / ``flits`` — how much vertical traffic the pattern makes.

Expected shape: the assignment alone beats the per-link code alone on
every pattern while costing nothing — the network-level version of the
paper's argument.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    GridPoint,
    PointSpec,
    format_table,
)
from repro.noc.power import optimize_vertical_links
from repro.noc.simulation import simulate_link_traces
from repro.noc.topology import MeshTopology
from repro.noc.traffic import hotspot_traffic, transpose_traffic, uniform_traffic
from repro.rng import ensure_rng

FLIT_WIDTH = 9  # 8 payload bits + parity, a 3x3 TSV array per link


#: Point name -> workload label (order matters: it is the row order).
POINT_LABELS = (
    ("uniform", "uniform"),
    ("hotspot", "hotspot (1,1,0)"),
    ("transpose", "transpose"),
)


def point_specs(
    fast: bool = False,
    n_packets: Optional[int] = None,
    seed: int = 2018,
) -> List[PointSpec]:
    """The case study's sweep points (one per workload); no datagen."""
    if n_packets is None:
        n_packets = 80 if fast else 400
    return [
        PointSpec(
            name=name,
            label=label,
            fingerprint={
                "experiment": "noc", "point": name, "fast": fast,
                "n_packets": n_packets, "seed": seed,
            },
        )
        for name, label in POINT_LABELS
    ]


def points(
    fast: bool = False,
    n_packets: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[GridPoint]:
    """The case study's runnable sweep points (datagen up front).

    ``checkpoint_dir`` is accepted for interface uniformity with the
    figure experiments but unused: :func:`optimize_vertical_links` has no
    mid-search checkpointing (each per-link search is short).
    """
    del checkpoint_dir  # no annealing-level checkpointing on this path
    topology = MeshTopology(3, 3, 2)
    if n_packets is None:
        n_packets = 80 if fast else 400
    flits_per_packet = 8 if fast else 16
    sa_steps = 40 if fast else None
    rng = ensure_rng(seed=seed)

    workloads = {
        "uniform": uniform_traffic(
            topology, n_packets, flit_width=FLIT_WIDTH,
            flits_per_packet=flits_per_packet, rng=rng,
        ),
        "hotspot": hotspot_traffic(
            topology, n_packets, hotspot=(1, 1, 0), flit_width=FLIT_WIDTH,
            flits_per_packet=flits_per_packet, rng=rng,
        ),
        "transpose": transpose_traffic(
            topology,
            packets_per_node=max(1, n_packets // topology.n_routers),
            flit_width=FLIT_WIDTH, flits_per_packet=flits_per_packet,
            rng=rng,
        ),
    }

    result: List[GridPoint] = []
    for spec in point_specs(fast=fast, n_packets=n_packets, seed=seed):

        def thunk(trace=workloads[spec.name]):
            traces = simulate_link_traces(topology, trace)
            report = optimize_vertical_links(
                traces,
                sa_steps=sa_steps,
                baseline_samples=15 if fast else 30,
                rng=ensure_rng(seed=seed),
            )
            return {
                "assigned %": 100.0 * report.reduction("assigned"),
                "coded %": 100.0 * report.reduction("coded"),
                "both %": 100.0 * report.reduction("coded_assigned"),
                "TSV links": float(report.n_links),
                "kflits": report.n_flits / 1000.0,
            }

        result.append(GridPoint(spec=spec, thunk=thunk))
    return result


def run(
    fast: bool = False,
    n_packets: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    if n_packets is None:
        n_packets = 80 if fast else 400
    sweep = ExperimentSweep(
        "noc", checkpoint_dir,
        fingerprint={"fast": fast, "n_packets": n_packets, "seed": seed},
    )
    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for point in points(fast=fast, n_packets=n_packets, seed=seed):
            rows.append(
                ExperimentRow(
                    point.spec.label,
                    sweep.compute(
                        point.spec.label, point.thunk,
                        fingerprint=point.spec.fingerprint,
                    ),
                )
            )
    return rows


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    table = format_table(
        "NoC case study - reduction of total vertical-link power vs plain "
        "wiring, 3x3x2 mesh",
        run(fast=fast, checkpoint_dir=checkpoint_dir),
        unit="raw",
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
