"""Fig. 3: optimal vs Sawtooth vs Spiral on Gaussian-distributed streams.

The paper transmits 16 b Gaussian pattern sets over a 4x4 array (r = 2 um,
d = 8 um) and sweeps the standard deviation; panel (a) is temporally
uncorrelated, panels (b)-(e) add temporal correlation rho in
{-0.6, -0.3, +0.3, +0.6}. Expected shape:

* (a) rho = 0 — the Sawtooth mapping tracks the optimal assignment over the
  whole sigma range (its optimality claim), Spiral does essentially nothing;
* rho < 0 — the anti-correlation *raises* the MSB switching while keeping
  the spatial MSB correlation, so the Sawtooth mapping stays best (the paper
  reports reductions up to ~40 % at rho = -0.6);
* rho > 0 — neither systematic mapping is optimal, but both still clearly
  beat a random assignment.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.datagen.gaussian import gaussian_bit_stream
from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    format_table,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry

WIDTH = 16
FULL_SIGMAS = (8.0, 32.0, 128.0, 512.0, 2048.0, 8192.0)
FAST_SIGMAS = (32.0, 512.0, 8192.0)
RHOS = (0.0, -0.6, -0.3, 0.3, 0.6)


def array() -> TSVArrayGeometry:
    return TSVArrayGeometry(rows=4, cols=4, pitch=8e-6, radius=2e-6)


def run(
    fast: bool = False,
    sigmas: Optional[Sequence[float]] = None,
    rhos: Sequence[float] = RHOS,
    n_samples: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    """Reduction vs the mean random assignment for every (rho, sigma)."""
    if sigmas is None:
        sigmas = FAST_SIGMAS if fast else FULL_SIGMAS
    if n_samples is None:
        n_samples = 4000 if fast else 30000
    geometry = array()
    rng = np.random.default_rng(seed)
    sweep = ExperimentSweep(
        "fig3", checkpoint_dir,
        fingerprint={
            "fast": fast, "sigmas": sigmas, "rhos": rhos,
            "n_samples": n_samples, "seed": seed,
        },
    )

    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for rho in rhos:
            for sigma in sigmas:
                # Datagen runs unconditionally (outside the cached thunk)
                # so a resumed sweep replays the same RNG sequence.
                bits = gaussian_bit_stream(
                    n_samples, WIDTH, sigma=sigma, rho=rho, rng=rng
                )
                label = f"rho={rho:+.1f} sigma=2^{np.log2(sigma):.0f}"

                def point(bits=bits):
                    stats = BitStatistics.from_stream(bits)
                    study = study_assignments(
                        stats,
                        geometry,
                        methods=("optimal", "sawtooth", "spiral"),
                        mos_aware=False,  # mean-free: balanced probabilities
                        with_inversions=False,
                        baseline_samples=100 if fast else 300,
                        seed=seed,
                        sa_steps=8 * geometry.n_tsvs if fast else None,
                    )
                    return {
                        "optimal": study.reduction("optimal"),
                        "sawtooth": study.reduction("sawtooth"),
                        "spiral": study.reduction("spiral"),
                    }

                rows.append(
                    ExperimentRow(
                        label=label,
                        values=sweep.compute(
                            label, point,
                            fingerprint={
                                "experiment": "fig3", "rho": rho,
                                "sigma": sigma, "fast": fast,
                                "n_samples": n_samples, "seed": seed,
                            },
                        ),
                    )
                )
    return rows


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    table = format_table(
        "Fig. 3 - P_red vs mean random assignment, 16 b Gaussian streams "
        "on 4x4 (r=2um, d=8um)",
        run(fast=fast, checkpoint_dir=checkpoint_dir),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
