"""Fig. 6: circuit-level TSV power (drivers + leakage) with and without the
optimal bit-to-TSV assignment, combined with classic codings.

Sec. 7 of the paper: r = 1 um / d = 4 um arrays at 3 GHz, PTM-22nm-like
strength-6 drivers, power scaled to an effective 32 b payload per cycle.
Four data streams:

* ``Sensor Seq.``  — the Fig. 5 sensors transmitted block-by-block (3900
  cycles per axis/sensor), 16 b over a 4x4 array;
* ``Sensor Mux.``  — the same patterns interleaved one-by-one (correlation
  destroyed), plain and Gray-coded; the paper: plain optimal assignment
  -18.3 %, Gray alone only -8.6 % (polarity parked at 0 hurts the MOS
  effect), Gray with the XNOR trick + optimal assignment -21.7 %;
* ``RGB Mux.``     — multiplexed Bayer colours + one redundant line over a
  3x3 array, plain and through the same-colour XOR correlator; the paper:
  optimal alone -6.8 %, correlator alone -25.2 %, correlator (XNOR) +
  optimal -41 %;
* ``Coded 7b``     — a random 7 b stream through the coupling-invert NoC
  code (+ flag line with 0.01 % set probability) over a 3x3 array; the
  paper: optimal assignment -11.2 % on top.

The Sec. 7 footnote re-runs the best case at r = 2 um / d = 8 um, where the
reduction grows further (paper: up to 48 %) — reproduced as the last rows.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.coding.businvert import coded_bit_stream, coupling_invert_encode
from repro.coding.correlator import correlate_words
from repro.coding.gray import gray_encode_words
from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.datagen import images, mems
from repro.datagen.random_stream import uniform_random_words
from repro.datagen.util import (
    append_stable_lines,
    bits_to_words,
    interleave_streams,
    words_to_bits,
)
from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    GridPoint,
    PointSpec,
    circuit_power_mw,
    format_table,
    optimize_for_stream,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry


def _sensor_axis_words(n_block: int, rng: np.random.Generator) -> List[np.ndarray]:
    """One word stream per sensor axis (9 streams, ``n_block`` samples)."""
    streams = []
    for sensor in mems.SENSORS:
        axes = mems.sensor_axes(sensor, "walking", n_block, rng)
        for axis in range(3):
            streams.append(axes[:, axis])
    return streams


def sensor_seq_bits(n_block: int, rng: np.random.Generator) -> np.ndarray:
    """'Sensor Seq.': each axis transmitted as a complete block in turn."""
    words = np.concatenate(_sensor_axis_words(n_block, rng))
    return words_to_bits(words, mems.WIDTH)


def sensor_mux_words(n_block: int, rng: np.random.Generator) -> np.ndarray:
    """'Sensor Mux.': the same patterns interleaved one-by-one."""
    return interleave_streams(_sensor_axis_words(n_block, rng))


def random_mean_power_mw(
    bits: np.ndarray,
    geometry: TSVArrayGeometry,
    payload_bits: int,
    n_samples: int = 20,
    seed: int = 99,
) -> float:
    """Mean circuit power over random (non-inverting) assignments [mW].

    This is the "if not [applied]" reference of Fig. 6: a designer wiring
    the bits in an arbitrary order.
    """
    rng = np.random.default_rng(seed)
    total = 0.0
    for _ in range(n_samples):
        assignment = SignedPermutation.random(bits.shape[1], rng)
        total += circuit_power_mw(
            bits, geometry, assignment=assignment, payload_bits=payload_bits
        )
    return total / n_samples


def _study(
    bits: np.ndarray,
    geometry: TSVArrayGeometry,
    payload_bits: int,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    seed: int = 2018,
    sa_steps: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> Dict[str, float]:
    """Power [mW] of the random-mean baseline and the optimal assignment."""
    stats = BitStatistics.from_stream(bits)
    optimal = optimize_for_stream(
        stats, geometry, constraints=constraints, seed=seed,
        sa_steps=sa_steps, checkpoint_dir=checkpoint_dir,
    )
    return {
        "plain": random_mean_power_mw(bits, geometry, payload_bits),
        "optimal": circuit_power_mw(
            bits, geometry, assignment=optimal, payload_bits=payload_bits
        ),
    }


#: Point name -> figure row label (order matters: it is the row order).
POINT_LABELS = (
    ("sensor-seq", "Sensor Seq. (16b, 4x4)"),
    ("sensor-mux", "Sensor Mux. (16b, 4x4)"),
    ("rgb-mux", "RGB Mux.+1R (8b, 3x3)"),
    ("coded-7b", "Coded 7b+flag (3x3)"),
    ("footnote", "RGB r=2um d=8um (foot.)"),
)


def _subdir(checkpoint_dir: Optional[str], name: str) -> Optional[str]:
    """A per-search annealing checkpoint dir (multi-anneal thunks)."""
    if checkpoint_dir is None:
        return None
    return os.path.join(checkpoint_dir, name)


def point_specs(
    fast: bool = False,
    n_block: Optional[int] = None,
    seed: int = 2018,
) -> List[PointSpec]:
    """The figure's sweep points (names, labels, fingerprints); no datagen."""
    if n_block is None:
        n_block = 600 if fast else 3900
    sa_steps = None if not fast else 100
    return [
        PointSpec(
            name=name,
            label=label,
            fingerprint={
                "experiment": "fig6", "point": name, "fast": fast,
                "n_block": n_block, "seed": seed, "sa_steps": sa_steps,
            },
        )
        for name, label in POINT_LABELS
    ]


def points(
    fast: bool = False,
    n_block: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[GridPoint]:
    """The figure's runnable sweep points.

    All datagen runs here, up front, from one seeded generator — the
    full RNG sequence replays identically whether one thunk runs (a grid
    job) or all of them (the serial figure), so the values are
    bit-identical by construction. ``checkpoint_dir`` threads into the
    annealing searches' observational checkpointing only.
    """
    if n_block is None:
        n_block = 600 if fast else 3900
    sa_steps = None if not fast else 100
    rng = np.random.default_rng(seed)
    specs = {
        spec.name: spec
        for spec in point_specs(fast=fast, n_block=n_block, seed=seed)
    }

    a44 = TSVArrayGeometry(rows=4, cols=4, pitch=4e-6, radius=1e-6)
    a33 = TSVArrayGeometry(rows=3, cols=3, pitch=4e-6, radius=1e-6)
    a33_large = TSVArrayGeometry(rows=3, cols=3, pitch=8e-6, radius=2e-6)

    # --- datagen (strictly in the historical order; consumes `rng`) ------------
    seq_bits = sensor_seq_bits(n_block, rng)

    mux_words = sensor_mux_words(n_block, rng)
    unsigned = np.where(mux_words < 0, mux_words + (1 << 16), mux_words)
    mux_bits = words_to_bits(unsigned, 16)
    gray_bits = words_to_bits(gray_encode_words(unsigned, 16), 16)
    # XNOR Gray (negated code words) + optimal assignment of the coded bits.
    gray_neg_bits = words_to_bits(
        gray_encode_words(unsigned, 16, negated=True), 16
    )

    frames = images.default_frames(
        3, 32 if fast else 64, 32 if fast else 64, rng=rng
    )
    cells = images._bayer_words(frames)
    rgb_words = cells.reshape(-1)
    rgb_bits = append_stable_lines(words_to_bits(rgb_words, 8), [0])
    corr_words = correlate_words(rgb_words, 8, n_channels=4)
    corr_bits = append_stable_lines(words_to_bits(corr_words, 8), [0])
    # XNOR correlator + inverted redundant line + optimal assignment.
    corr_neg_words = correlate_words(rgb_words, 8, n_channels=4, negated=True)
    corr_neg_bits = append_stable_lines(words_to_bits(corr_neg_words, 8), [0])

    data = uniform_random_words(9 * n_block, 7, rng)
    coded, flags = coupling_invert_encode(data, 7)
    link_bits = coded_bit_stream(coded, flags, 7)
    packet_flag = (rng.random(len(link_bits)) < 1e-4).astype(np.uint8)
    coded_link = np.concatenate([link_bits, packet_flag[:, None]], axis=1)

    # --- the thunks ------------------------------------------------------------
    def sensor_seq_point() -> Dict[str, float]:
        return _study(seq_bits, a44, payload_bits=16, seed=seed,
                      sa_steps=sa_steps, checkpoint_dir=checkpoint_dir)

    def sensor_mux_point() -> Dict[str, float]:
        values = _study(mux_bits, a44, payload_bits=16, seed=seed,
                        sa_steps=sa_steps, checkpoint_dir=checkpoint_dir)
        values["gray"] = random_mean_power_mw(gray_bits, a44, payload_bits=16)
        gray_opt = optimize_for_stream(
            BitStatistics.from_stream(gray_neg_bits), a44, seed=seed,
            sa_steps=sa_steps,
            checkpoint_dir=_subdir(checkpoint_dir, "gray-opt"),
        )
        values["gray+opt"] = circuit_power_mw(
            gray_neg_bits, a44, assignment=gray_opt, payload_bits=16
        )
        return values

    def rgb_mux_point() -> Dict[str, float]:
        values = _study(rgb_bits, a33, payload_bits=8, seed=seed,
                        sa_steps=sa_steps, checkpoint_dir=checkpoint_dir)
        values["corr"] = random_mean_power_mw(corr_bits, a33, payload_bits=8)
        corr_opt = optimize_for_stream(
            BitStatistics.from_stream(corr_neg_bits), a33, seed=seed,
            sa_steps=sa_steps,
            checkpoint_dir=_subdir(checkpoint_dir, "corr-opt"),
        )
        values["corr+opt"] = circuit_power_mw(
            corr_neg_bits, a33, assignment=corr_opt, payload_bits=8
        )
        return values

    def coded_point() -> Dict[str, float]:
        return _study(coded_link, a33, payload_bits=7, seed=seed,
                      sa_steps=sa_steps, checkpoint_dir=checkpoint_dir)

    def footnote_point() -> Dict[str, float]:
        values = {
            "plain": random_mean_power_mw(rgb_bits, a33_large, payload_bits=8),
            "corr": random_mean_power_mw(corr_bits, a33_large, payload_bits=8),
        }
        corr_opt_large = optimize_for_stream(
            BitStatistics.from_stream(corr_neg_bits), a33_large,
            seed=seed, sa_steps=sa_steps, checkpoint_dir=checkpoint_dir,
        )
        values["corr+opt"] = circuit_power_mw(
            corr_neg_bits, a33_large, assignment=corr_opt_large,
            payload_bits=8,
        )
        return values

    thunks = {
        "sensor-seq": sensor_seq_point,
        "sensor-mux": sensor_mux_point,
        "rgb-mux": rgb_mux_point,
        "coded-7b": coded_point,
        "footnote": footnote_point,
    }
    return [
        GridPoint(spec=specs[name], thunk=thunks[name])
        for name, _ in POINT_LABELS
    ]


def run(
    fast: bool = False,
    n_block: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    """Power [mW, scaled to 32 b/cycle] per stream and coding variant."""
    if n_block is None:
        n_block = 600 if fast else 3900
    sweep = ExperimentSweep(
        "fig6", checkpoint_dir,
        fingerprint={"fast": fast, "n_block": n_block, "seed": seed},
    )
    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for point in points(fast=fast, n_block=n_block, seed=seed):
            rows.append(
                ExperimentRow(
                    point.spec.label,
                    sweep.compute(
                        point.spec.name, point.thunk,
                        fingerprint=point.spec.fingerprint,
                    ),
                )
            )
    return rows


def reductions(rows: List[ExperimentRow]) -> List[ExperimentRow]:
    """Per-row percentage reduction of every variant against 'plain'."""
    result = []
    for row in rows:
        base = row.values["plain"]
        result.append(
            ExperimentRow(
                row.label,
                {
                    key: 1.0 - value / base
                    for key, value in row.values.items()
                    if key != "plain"
                },
            )
        )
    return result


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    rows = run(fast=fast, checkpoint_dir=checkpoint_dir)
    power_table = format_table(
        "Fig. 6 - TSV power incl. drivers and leakage [mW], scaled to "
        "32 b/cycle (r=1um, d=4um, 3 GHz)",
        rows,
        unit="mW",
    )
    reduction_table = format_table(
        "Fig. 6 - reduction vs the plain (unencoded, identity) transmission",
        reductions(rows),
    )
    output = power_table + "\n\n" + reduction_table
    print(output)
    return output


if __name__ == "__main__":
    main()
