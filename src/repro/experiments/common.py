"""Shared infrastructure for the figure reproductions."""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.circuit.driver import DriverModel
from repro.circuit.energy import EnergyModel
from repro.core.assignment import AssignmentConstraints, SignedPermutation
from repro.core.fastpower import CompiledPowerModel
from repro.core.optimize import simulated_annealing
from repro.core.power import PowerModel
from repro.core.systematic import sawtooth_assignment, spiral_assignment_for_stats
from repro.core.pipeline import random_baseline_power
from repro.runtime.artifacts import CheckpointStore, jsonify
from repro.runtime.faults import fault_point
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel
from repro.tsv.extractor import CapacitanceExtractor
from repro.tsv.geometry import TSVArrayGeometry

logger = logging.getLogger("repro.experiments")

#: Extraction method used by the experiment suite: the compact model with
#: the 3-D-corrected environment profile (see
#: :data:`repro.tsv.arraycap.STRONG_EDGE_PARAMETERS`) — the sharing
#: structure is calibrated against the 2-D FDM reference solver, the
#: environment sink against the 3-D geometry argument. Switch to "fdm" to
#: run the sweeps directly on the (disk-cached) field solver.
CAP_METHOD = "compact3d"

_EXTRACTORS: Dict[tuple, CapacitanceExtractor] = {}
_CAP_MODELS: Dict[tuple, LinearCapacitanceModel] = {}


def extractor_for(
    geometry: TSVArrayGeometry, method: str = CAP_METHOD
) -> CapacitanceExtractor:
    """Shared (memoized) extractor per geometry."""
    key = (geometry.cache_key(), method)
    if key not in _EXTRACTORS:
        _EXTRACTORS[key] = CapacitanceExtractor(geometry, method=method)
    return _EXTRACTORS[key]


def cap_model_for(
    geometry: TSVArrayGeometry, method: str = CAP_METHOD
) -> LinearCapacitanceModel:
    """Shared fitted Eq. 6/7 linear capacitance model per geometry.

    Compact extractors are cheap enough for the multi-probe regression fit
    (NRMSE ~1 %, matching the paper's claim); the FDM path uses the exact
    two-point fit to keep the solve count down.
    """
    key = (geometry.cache_key(), method)
    if key not in _CAP_MODELS:
        n_probes = 8 if method.startswith("compact") else 0
        _CAP_MODELS[key] = LinearCapacitanceModel.fit(
            extractor_for(geometry, method), n_probes=n_probes
        )
    return _CAP_MODELS[key]


@dataclass
class ExperimentRow:
    """One printed row of a figure reproduction."""

    label: str
    values: Dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class PointSpec:
    """The identity of one sweep point, cheap to enumerate.

    ``name`` is the stable machine identifier a grid job refers to,
    ``label`` the human-facing row label of the figure, ``fingerprint``
    the jsonified parameter payload that makes the point's cached values
    trustworthy — it must cover everything the computation depends on
    (scenario parameters, geometry, seed, fast/full mode), so editing a
    sweep invalidates stale checkpoint rows instead of serving them.
    """

    name: str
    label: str
    fingerprint: Dict[str, object]


@dataclass(frozen=True)
class GridPoint:
    """One runnable sweep point: its spec plus the value-producing thunk.

    The thunk closes over input data generated *outside* it (by the
    experiment's ``points()`` constructor, which replays the full datagen
    RNG sequence from the seed), so executing any subset of points — one
    per grid job, or all of them serially — yields bit-identical values.
    """

    spec: PointSpec
    thunk: Callable[[], Dict[str, float]]


def format_table(
    title: str, rows: Sequence[ExperimentRow], unit: str = "%"
) -> str:
    """Fixed-width text table of experiment rows."""
    if not rows:
        return f"{title}\n  (no data)"
    columns: List[str] = []
    for row in rows:
        for key in row.values:
            if key not in columns:
                columns.append(key)
    label_width = max(len(r.label) for r in rows)
    label_width = max(label_width, 8)
    col_width = max([len(c) for c in columns] + [9])
    header = " " * (label_width + 2) + "  ".join(
        c.rjust(col_width) for c in columns
    )
    lines = [title, header]
    for row in rows:
        cells = []
        for c in columns:
            value = row.values.get(c)
            if value is None:
                cells.append("-".rjust(col_width))
            elif unit == "%":
                cells.append(f"{100.0 * value:8.2f}%".rjust(col_width))
            else:
                cells.append(f"{value:10.4g}".rjust(col_width))
        lines.append(row.label.ljust(label_width + 2) + "  ".join(cells))
    return "\n".join(lines)


class ExperimentSweep:
    """Checkpointed figure sweep: completed points survive interrupts.

    Each sweep point is one expensive, *seed-determined* computation (an
    annealing study, a NoC link optimization). The sweep runner

    * generates the point's input data *outside* :meth:`compute`, so a
      resumed run replays the exact datagen RNG sequence of an
      uninterrupted one (skipping cached points never desyncs later ones);
    * wraps the expensive call in ``compute(label, thunk, fingerprint)``
      — finished points are served from the checkpoint instead of
      recomputed, but only when the stored per-point fingerprint matches
      the caller's (so an edited sweep parameter invalidates the stale
      row instead of silently serving it);
    * wraps the point loop in ``with sweep.interruptible():`` so a
      Ctrl-C (or the ``interrupt_at`` fault point, fired at every point
      boundary) ends the sweep cleanly with the rows finished so far and
      a resumable checkpoint on disk.

    Without a ``checkpoint_dir`` the sweep runs exactly as before: no
    files, no resume, interrupts still exit cleanly.
    """

    def __init__(
        self,
        kind: str,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        fingerprint: Optional[Dict[str, object]] = None,
    ) -> None:
        self.kind = kind
        self.interrupted = False
        self._points: Dict[str, Dict[str, object]] = {}
        self._store: Optional[CheckpointStore] = None
        self._n_points = 0
        if checkpoint_dir is not None:
            self._store = CheckpointStore(
                Path(checkpoint_dir), kind=f"sweep-{kind}",
                fingerprint=fingerprint or {},
            )
            checkpoint = self._store.load(self.kind)
            if checkpoint is not None:
                points = checkpoint.payload.get("points", {})
                if isinstance(points, dict):
                    self._points = {
                        str(label): entry
                        for label, entry in points.items()
                        if isinstance(entry, dict)
                    }
                if self._points:
                    logger.info(
                        "resuming %s sweep: %d points already done",
                        self.kind, len(self._points),
                    )

    def compute(
        self,
        label: str,
        thunk: Callable[[], Dict[str, float]],
        fingerprint: Optional[Dict[str, object]] = None,
    ) -> Dict[str, float]:
        """The values of sweep point ``label``, computed or restored.

        A cached entry is served only when its stored per-point
        ``fingerprint`` equals the caller's — a label alone is not an
        identity (the same row label with edited parameters must
        recompute, not resurrect the stale values). Entries written by
        older checkpoints (no fingerprint envelope) are recomputed.
        """
        fault_point("interrupt_at", sweep=self.kind, point=label)
        self._n_points += 1
        expected = jsonify(fingerprint) if fingerprint is not None else None
        entry = self._points.get(label)
        if isinstance(entry, dict) and set(entry) == {"fingerprint", "values"}:
            values = entry.get("values")
            if entry.get("fingerprint") == expected and isinstance(
                values, dict
            ):
                return {str(k): float(v) for k, v in values.items()}
            logger.warning(
                "checkpointed point %r was computed with different "
                "parameters; recomputing", label,
            )
        values = {str(k): float(v) for k, v in thunk().items()}
        self._points[label] = {"fingerprint": expected, "values": values}
        self._save()
        return dict(values)

    def _save(self) -> None:
        if self._store is not None:
            self._store.save(
                self.kind, {"points": self._points},
                step=len(self._points),
            )

    class _Interruptible:
        def __init__(self, sweep: "ExperimentSweep") -> None:
            self._sweep = sweep

        def __enter__(self) -> "ExperimentSweep":
            return self._sweep

        def __exit__(self, exc_type, exc, tb) -> bool:
            if exc_type is not None and issubclass(
                exc_type, KeyboardInterrupt
            ):
                self._sweep.interrupted = True
                self._sweep._save()
                logger.warning(
                    "%s sweep interrupted after %d points; partial rows "
                    "returned, checkpoint saved", self._sweep.kind,
                    len(self._sweep._points),
                )
                return True
            return False

    def interruptible(self) -> "ExperimentSweep._Interruptible":
        """Context manager converting Ctrl-C into a clean partial return."""
        return self._Interruptible(self)


@dataclass
class AssignmentStudy:
    """Powers and reductions of a set of assignments for one stream."""

    powers: Dict[str, float]
    random_mean: float
    random_worst: float

    def reduction(self, name: str, against: str = "mean") -> float:
        base = self.random_mean if against == "mean" else self.random_worst
        return 1.0 - self.powers[name] / base


def study_assignments(
    stats: BitStatistics,
    geometry: TSVArrayGeometry,
    methods: Sequence[str] = ("optimal", "spiral", "sawtooth"),
    mos_aware: bool = True,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    baseline_samples: int = 200,
    seed: int = 2018,
    sa_steps: Optional[int] = None,
    cap_method: str = CAP_METHOD,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> AssignmentStudy:
    """Evaluate the requested assignment strategies on one stream.

    Returns the normalized powers plus the random-assignment baselines; a
    shared capacitance model keeps repeated calls cheap. All evaluations
    run on the compiled fast-path kernels, and the search and baseline use
    independent spawned RNG streams so the baselines depend only on the
    seed, not on which methods ran.

    ``checkpoint_dir`` threads straight into the annealing search's
    observational checkpointing (grid workers pass their per-job
    directory), so an interrupted point resumes mid-search bit-identically
    instead of restarting its chain.
    """
    if mos_aware:
        capacitance = cap_model_for(geometry, cap_method)
        model = PowerModel(stats, capacitance)
    else:
        model = PowerModel(stats, extractor_for(geometry, cap_method).extract())
    compiled = CompiledPowerModel.compile(model)
    search_rng, baseline_rng = np.random.default_rng(seed).spawn(2)

    powers: Dict[str, float] = {}
    for method in methods:
        if method == "optimal":
            result = simulated_annealing(
                compiled,
                model.n_lines,
                with_inversions=with_inversions,
                constraints=constraints,
                rng=search_rng,
                steps_per_temperature=sa_steps,
                checkpoint_dir=checkpoint_dir,
            )
            if not result.completed:
                # A best-so-far power would be silently cached as a sweep
                # point; bubble up so the sweep drops the half-done point
                # and exits cleanly instead.
                raise KeyboardInterrupt("assignment search interrupted")
            powers[method] = result.power
        elif method == "spiral":
            assignment = spiral_assignment_for_stats(
                geometry, stats,
                cap_matrix=extractor_for(geometry, cap_method).extract(),
            )
            powers[method] = compiled.power(assignment)
        elif method == "sawtooth":
            assignment = sawtooth_assignment(geometry)
            powers[method] = compiled.power(assignment)
        elif method == "identity":
            powers[method] = compiled.power()
        else:
            raise ValueError(f"unknown study method {method!r}")
    mean, worst = random_baseline_power(
        compiled, n_samples=baseline_samples, rng=baseline_rng,
        constraints=constraints,
    )
    return AssignmentStudy(powers=powers, random_mean=mean, random_worst=worst)


def optimize_for_stream(
    stats: BitStatistics,
    geometry: TSVArrayGeometry,
    with_inversions: bool = True,
    constraints: AssignmentConstraints = AssignmentConstraints(),
    seed: int = 2018,
    sa_steps: Optional[int] = None,
    cap_method: str = CAP_METHOD,
    checkpoint_dir: Optional[Union[str, Path]] = None,
) -> SignedPermutation:
    """The Eq. 10 optimal assignment for one stream (MOS-aware)."""
    model = PowerModel(stats, cap_model_for(geometry, cap_method))
    result = simulated_annealing(
        model,
        model.n_lines,
        with_inversions=with_inversions,
        constraints=constraints,
        rng=np.random.default_rng(seed),
        steps_per_temperature=sa_steps,
        checkpoint_dir=checkpoint_dir,
    )
    if not result.completed:
        raise KeyboardInterrupt("assignment search interrupted")
    return result.assignment


def circuit_power_mw(
    bits: np.ndarray,
    geometry: TSVArrayGeometry,
    assignment: Optional[SignedPermutation] = None,
    payload_bits: Optional[int] = None,
    frequency: float = constants.F_CLOCK,
    driver: Optional[DriverModel] = None,
    cap_method: str = CAP_METHOD,
) -> float:
    """Total supply power [mW] of a stream, scaled to 32 b per cycle.

    Reproduces the Fig. 6 reporting: the physical stream (after routing and
    driver inversions) drives the probability-matched capacitance matrix of
    the array; driver gate energy and leakage are added; the result is
    scaled so that different array sizes compare at an effective 32-bit
    payload per clock cycle.
    """
    if driver is None:
        driver = DriverModel()
    if assignment is None:
        assignment = SignedPermutation.identity(bits.shape[1])
    routed = assignment.apply_to_bits(bits)
    probabilities = routed.mean(axis=0)
    cap = cap_model_for(geometry, cap_method).matrix(probabilities)
    energy = EnergyModel(cap, driver=driver, vdd=driver.vdd)
    power = energy.mean_power(routed, frequency)
    if payload_bits is None:
        payload_bits = bits.shape[1]
    return 1.0e3 * power * 32.0 / payload_bits
