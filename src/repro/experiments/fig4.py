"""Fig. 4: optimal vs Spiral assignment for image-sensor (VSoC) streams.

Four transmission formats of Sec. 5.1, at the ITRS-2018 minimum geometry
(r = 1 um, d = 4 um), plus the two formats that the paper re-evaluates at
the larger r = 2 um / d = 8 um geometry:

* ``RGB par. 4x8``   — all four Bayer colours in parallel, 32 b;
* ``RGB+4S 6x6``     — the same plus 4 stable lines (enable, redundant,
  power, ground; "+4S" in the paper's labels);
* ``RGB mux. 3x3``   — colours time-multiplexed, 8 b + enable;
* ``Gray px. 3x3``   — grayscale pixels, 8 b + enable.

Expected shape: Spiral nearly optimal without stable lines (11-13 %
reduction; only ~5 % for the multiplexed colours, whose pixel correlation is
destroyed); with stable lines the optimal assignment gains a few extra
percentage points because it may invert the parked-at-0 lines (MOS effect)
and place them by their coupling properties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from repro.core.assignment import AssignmentConstraints
from repro.datagen import images
from repro.experiments.common import (
    ExperimentRow,
    ExperimentSweep,
    GridPoint,
    PointSpec,
    format_table,
    study_assignments,
)
from repro.stats.switching import BitStatistics
from repro.tsv.geometry import TSVArrayGeometry


@dataclass(frozen=True)
class Scenario:
    label: str
    rows: int
    cols: int
    stream: Callable[[List[np.ndarray]], np.ndarray]
    rgb: bool = True
    constraints: AssignmentConstraints = AssignmentConstraints()
    both_geometries: bool = False


def scenarios() -> List[Scenario]:
    return [
        Scenario("RGB par. 4x8", 4, 8, images.rgb_parallel_stream),
        Scenario(
            "RGB+4S 6x6", 6, 6, images.rgb_parallel_with_stable_stream,
            constraints=AssignmentConstraints(
                no_invert=frozenset(
                    {images.STABLE_POWER, images.STABLE_GROUND}
                )
            ),
            both_geometries=True,
        ),
        Scenario("RGB mux. 3x3", 3, 3, images.rgb_mux_stream,
                 both_geometries=True),
        Scenario("Gray px. 3x3", 3, 3, images.grayscale_stream, rgb=False),
    ]


def geometries(scenario: Scenario) -> List[TSVArrayGeometry]:
    result = [
        TSVArrayGeometry(rows=scenario.rows, cols=scenario.cols,
                         pitch=4e-6, radius=1e-6)
    ]
    if scenario.both_geometries:
        result.append(
            TSVArrayGeometry(rows=scenario.rows, cols=scenario.cols,
                             pitch=8e-6, radius=2e-6)
        )
    return result


def _resolve(
    fast: bool, n_frames: Optional[int], frame_size: Optional[int]
) -> tuple:
    if n_frames is None:
        n_frames = 2 if fast else 4
    if frame_size is None:
        frame_size = 24 if fast else 64
    return n_frames, frame_size


def _slug(label: str) -> str:
    """Machine-safe point name derived from a row label."""
    out = "".join(c if c.isalnum() else "-" for c in label.lower())
    while "--" in out:
        out = out.replace("--", "-")
    return out.strip("-")


def point_specs(
    fast: bool = False,
    n_frames: Optional[int] = None,
    frame_size: Optional[int] = None,
    seed: int = 2018,
) -> List[PointSpec]:
    """The figure's sweep points (names, labels, fingerprints); no datagen."""
    n_frames, frame_size = _resolve(fast, n_frames, frame_size)
    specs: List[PointSpec] = []
    for scenario in scenarios():
        for geometry in geometries(scenario):
            label = f"{scenario.label} r={geometry.radius * 1e6:.0f}um"
            specs.append(PointSpec(
                name=_slug(label),
                label=label,
                fingerprint={
                    "experiment": "fig4",
                    "scenario": scenario.label,
                    "rows": geometry.rows, "cols": geometry.cols,
                    "pitch": geometry.pitch, "radius": geometry.radius,
                    "fast": fast, "n_frames": n_frames,
                    "frame_size": frame_size, "seed": seed,
                },
            ))
    return specs


def points(
    fast: bool = False,
    n_frames: Optional[int] = None,
    frame_size: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[GridPoint]:
    """The figure's runnable sweep points.

    Datagen for *all* points runs here, up front, replaying the full RNG
    sequence from the seed — so any subset of the returned thunks
    (one per grid job, or all of them serially) computes bit-identical
    values. ``checkpoint_dir`` threads into the annealing searches'
    observational checkpointing (grid workers pass their per-job
    directory); it never changes the values.
    """
    n_frames, frame_size = _resolve(fast, n_frames, frame_size)
    rng = np.random.default_rng(seed)
    specs = iter(point_specs(
        fast=fast, n_frames=n_frames, frame_size=frame_size, seed=seed
    ))
    result: List[GridPoint] = []
    for scenario in scenarios():
        frames = [
            (images.synthetic_rgb_scene if scenario.rgb
             else images.synthetic_scene)(frame_size, frame_size, rng=rng)
            for _ in range(n_frames)
        ]
        bits = scenario.stream(frames)
        stats = BitStatistics.from_stream(bits)
        for geometry in geometries(scenario):
            spec = next(specs)

            def thunk(stats=stats, geometry=geometry, scenario=scenario):
                study = study_assignments(
                    stats,
                    geometry,
                    methods=("optimal", "spiral"),
                    mos_aware=True,
                    with_inversions=True,
                    constraints=scenario.constraints,
                    baseline_samples=50 if fast else 200,
                    seed=seed,
                    sa_steps=6 * geometry.n_tsvs if fast else None,
                    checkpoint_dir=checkpoint_dir,
                )
                return {
                    "optimal": study.reduction("optimal"),
                    "spiral": study.reduction("spiral"),
                }

            result.append(GridPoint(spec=spec, thunk=thunk))
    return result


def run(
    fast: bool = False,
    n_frames: Optional[int] = None,
    frame_size: Optional[int] = None,
    seed: int = 2018,
    checkpoint_dir: Optional[str] = None,
) -> List[ExperimentRow]:
    """Reduction vs the mean random assignment per scenario and geometry."""
    n_frames, frame_size = _resolve(fast, n_frames, frame_size)
    sweep = ExperimentSweep(
        "fig4", checkpoint_dir,
        fingerprint={
            "fast": fast, "n_frames": n_frames,
            "frame_size": frame_size, "seed": seed,
        },
    )
    rows: List[ExperimentRow] = []
    with sweep.interruptible():
        for point in points(
            fast=fast, n_frames=n_frames, frame_size=frame_size, seed=seed
        ):
            rows.append(
                ExperimentRow(
                    label=point.spec.label,
                    values=sweep.compute(
                        point.spec.label, point.thunk,
                        fingerprint=point.spec.fingerprint,
                    ),
                )
            )
    return rows


def main(fast: bool = False, checkpoint_dir: Optional[str] = None) -> str:
    table = format_table(
        "Fig. 4 - P_red vs mean random assignment, image-sensor streams",
        run(fast=fast, checkpoint_dir=checkpoint_dir),
    )
    print(table)
    return table


if __name__ == "__main__":
    main()
