"""Deterministic random-number policy for the whole library.

Every stochastic routine in the library takes an ``rng`` parameter. When the
caller passes nothing, the routine must still be *reproducible* — two runs of
the same experiment have to produce the same tables — so the fallback is a
generator seeded with :data:`DEFAULT_SEED` (the paper's publication year),
never the OS-entropy default of ``np.random.default_rng()``.

:func:`ensure_rng` implements the policy in one place. It accepts

* an existing :class:`numpy.random.Generator` (returned as-is, so generator
  state keeps flowing through a pipeline),
* an integer seed (wrapped in a fresh generator), or
* ``None`` (a fresh generator seeded with ``seed`` or :data:`DEFAULT_SEED`).

The ``REP001`` rule of :mod:`repro.analysis.linter` flags any direct
unseeded ``np.random.default_rng()`` call so new code cannot regress.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

#: Seed of last resort — the paper's publication year, also used by the CLI.
DEFAULT_SEED = 2018

#: What stochastic APIs accept: a generator, a plain seed, or nothing.
RngLike = Union[np.random.Generator, int, None]


def ensure_rng(
    rng: RngLike = None, seed: Optional[int] = None
) -> np.random.Generator:
    """Canonicalize an ``rng`` argument into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    rng:
        A generator (returned unchanged), an integer seed, or ``None``.
    seed:
        Fallback seed used only when ``rng`` is ``None``; defaults to
        :data:`DEFAULT_SEED`.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is not None:
        if not isinstance(rng, (int, np.integer)):
            raise TypeError(
                f"rng must be a numpy Generator, an int seed or None, "
                f"got {type(rng).__name__}"
            )
        return np.random.default_rng(int(rng))
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
