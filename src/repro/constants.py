"""Physical constants and technology presets used throughout the library.

All values are SI unless a suffix says otherwise. The TSV geometry presets
follow the dimensions the paper takes from the ITRS 2018 projection.
"""

from __future__ import annotations

import math

# ---------------------------------------------------------------------------
# Fundamental constants
# ---------------------------------------------------------------------------

#: Elementary charge [C].
Q_ELEMENTARY = 1.602176634e-19

#: Vacuum permittivity [F/m].
EPS_0 = 8.8541878128e-12

#: Boltzmann constant [J/K].
K_BOLTZMANN = 1.380649e-23

#: Default operating temperature [K].
TEMPERATURE = 300.0

#: Thermal voltage kT/q at the default temperature [V].
V_THERMAL = K_BOLTZMANN * TEMPERATURE / Q_ELEMENTARY

# ---------------------------------------------------------------------------
# Material parameters
# ---------------------------------------------------------------------------

#: Relative permittivity of silicon.
EPS_R_SI = 11.9

#: Relative permittivity of silicon dioxide (the TSV liner).
EPS_R_SIO2 = 3.9

#: Substrate conductivity used by the paper's Q3D model [S/m].
SIGMA_SI = 10.0

#: Hole mobility in lightly doped p-type silicon [m^2/(V*s)].
MU_P_SI = 0.045

#: Intrinsic carrier concentration of silicon at 300 K [1/m^3].
N_INTRINSIC_SI = 1.0e16

#: Silicon band gap at 300 K [eV] (for the n_i temperature model).
E_GAP_SI_300K = 1.12


def thermal_voltage(temperature: float = TEMPERATURE) -> float:
    """Thermal voltage kT/q at a given temperature [V]."""
    if temperature <= 0.0:
        raise ValueError("temperature must be positive (kelvin)")
    return K_BOLTZMANN * temperature / Q_ELEMENTARY


def intrinsic_carrier_density(temperature: float = TEMPERATURE) -> float:
    """Intrinsic carrier density of silicon at a given temperature [1/m^3].

    Standard ``n_i(T) = n_i(300) (T/300)^{3/2} exp(-Eg/2k (1/T - 1/300))``
    scaling; doubles roughly every 8 K around room temperature, which is
    what moves the Fermi potential (and with it the pinned-mode depletion
    widths) across the industrial temperature range.
    """
    if temperature <= 0.0:
        raise ValueError("temperature must be positive (kelvin)")
    exponent = (
        -E_GAP_SI_300K
        * Q_ELEMENTARY
        / (2.0 * K_BOLTZMANN)
        * (1.0 / temperature - 1.0 / 300.0)
    )
    return N_INTRINSIC_SI * (temperature / 300.0) ** 1.5 * math.exp(exponent)

#: Copper resistivity [Ohm*m] (TSV fill metal).
RHO_COPPER = 1.68e-8

#: Vacuum permeability [H/m].
MU_0 = 4.0e-7 * math.pi


def acceptor_density_from_conductivity(sigma: float = SIGMA_SI) -> float:
    """Acceptor doping density [1/m^3] of a p-substrate with conductivity ``sigma``.

    The paper specifies the substrate only through its conductivity
    (10 S/m); the depletion model needs the doping level, which follows from
    ``sigma = q * mu_p * N_A`` for a p-type substrate where hole conduction
    dominates.
    """
    if sigma <= 0.0:
        raise ValueError(f"conductivity must be positive, got {sigma}")
    return sigma / (Q_ELEMENTARY * MU_P_SI)


#: Acceptor doping corresponding to the paper's 10 S/m substrate [1/m^3].
N_ACCEPTOR_DEFAULT = acceptor_density_from_conductivity()

# ---------------------------------------------------------------------------
# Electrical operating point (Sec. 2 and Sec. 7 of the paper)
# ---------------------------------------------------------------------------

#: Supply voltage [V].
V_DD = 1.0

#: Clock frequency used for the circuit-level experiments [Hz].
F_CLOCK = 3.0e9

#: Flat-band voltage of the Cu / SiO2 / p-Si MOS junction [V].
#: Work-function difference between copper (~4.65 eV) and the lightly doped
#: p-substrate (~4.9 eV); oxide charge is neglected.
V_FLATBAND = -0.25

# ---------------------------------------------------------------------------
# Geometry presets (Sec. 2, Sec. 5 and Sec. 7)
# ---------------------------------------------------------------------------

#: TSV length = substrate thickness [m].
TSV_LENGTH = 50.0e-6

#: ITRS-2018 minimum global TSV radius [m].
RADIUS_MIN_2018 = 1.0e-6

#: ITRS-2018 minimum global TSV pitch [m].
PITCH_MIN_2018 = 4.0e-6

#: The larger geometry the paper sweeps to (Figs. 2, 4; Sec. 7 footnote) [m].
RADIUS_LARGE = 2.0e-6
PITCH_LARGE = 8.0e-6


def oxide_thickness(radius: float) -> float:
    """Liner thickness for a TSV of the given radius (paper: ``r / 5``)."""
    if radius <= 0.0:
        raise ValueError(f"radius must be positive, got {radius}")
    return radius / 5.0
