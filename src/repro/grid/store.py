"""SQLite results database: provenance-carrying, insert-or-verify.

One grid's results live in one SQLite file (``results.sqlite`` under the
grid root). Every finished job inserts one row keyed by the job's
content-addressed fingerprint, carrying

* the full job spec (experiment, params, point) that produced it,
* the result payload as canonical JSON plus its SHA-256,
* provenance: git revision, host, worker id, attempt count, elapsed
  wall time and a recorded-at stamp.

The store is safe for many concurrent writers: connections run in WAL
mode with a generous busy timeout, each ``record()`` is one transaction,
and rows are immutable once written.

**Insert-or-verify.** Grid execution is at-least-once (a reclaimed job
may race its not-quite-dead previous owner), so the store must tolerate
duplicate completions — and it turns them into an asset: a second
``record()`` of an existing fingerprint *verifies* the new values against
the stored canonical JSON byte for byte. A match is a no-op; a mismatch
is logged into the ``violations`` table and raised as
:class:`DeterminismViolation`, because two executions of the same
fingerprint disagreeing means the experiment is not the pure function of
its spec that the whole reproduction contract assumes.

Provenance columns (host, timings, recorded_at) are deliberately *not*
part of the verified bytes — only ``values_json`` is — so re-running on a
different machine verifies cleanly when the science agrees.
"""

from __future__ import annotations

import json
import logging
import socket
import sqlite3
import subprocess
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Union

from repro.runtime.artifacts import (
    canonical_payload_bytes,
    jsonify,
    payload_digest,
)

logger = logging.getLogger("repro.grid")

#: Schema version stamped into the database (``PRAGMA user_version``).
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint   TEXT PRIMARY KEY,
    experiment    TEXT NOT NULL,
    point         TEXT NOT NULL,
    label         TEXT NOT NULL,
    params_json   TEXT NOT NULL,
    values_json   TEXT NOT NULL,
    values_sha256 TEXT NOT NULL,
    git_revision  TEXT,
    host          TEXT,
    worker        TEXT,
    attempts      INTEGER NOT NULL DEFAULT 0,
    elapsed_s     REAL,
    recorded_at   REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_experiment
    ON results (experiment, point);
CREATE TABLE IF NOT EXISTS violations (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint   TEXT NOT NULL,
    stored_sha256 TEXT NOT NULL,
    new_sha256    TEXT NOT NULL,
    new_values    TEXT NOT NULL,
    host          TEXT,
    worker        TEXT,
    observed_at   REAL NOT NULL
);
"""


class DeterminismViolation(RuntimeError):
    """A re-run of an existing fingerprint produced different values."""

    def __init__(
        self, fingerprint: str, stored_sha256: str, new_sha256: str
    ) -> None:
        super().__init__(
            f"determinism violation on {fingerprint}: stored values "
            f"sha256 {stored_sha256[:12]}... != re-run {new_sha256[:12]}..."
        )
        self.fingerprint = fingerprint
        self.stored_sha256 = stored_sha256
        self.new_sha256 = new_sha256


@dataclass(frozen=True)
class ResultRecord:
    """One recorded grid result, as read back from the store."""

    fingerprint: str
    experiment: str
    point: str
    label: str
    params: Dict[str, Any]
    values: Dict[str, Any]
    values_sha256: str
    git_revision: Optional[str]
    host: Optional[str]
    worker: Optional[str]
    attempts: int
    elapsed_s: Optional[float]
    recorded_at: float


def git_revision(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current git HEAD hash, or None outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd else None,
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return out.stdout.strip() or None if out.returncode == 0 else None


class ResultStore:
    """The grid's results database at ``path`` (created on first use).

    Connections are per-thread (sqlite3 objects must not cross threads);
    every connection runs WAL mode with a busy timeout so many worker
    processes can record concurrently without ``database is locked``
    failures.
    """

    def __init__(self, path: Union[str, Path], busy_timeout_s: float = 30.0):
        self.path = Path(path)
        self.busy_timeout_s = busy_timeout_s
        self._local = threading.local()
        self._connect()  # create the schema eagerly

    def _connect(self) -> sqlite3.Connection:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            return connection
        self.path.parent.mkdir(parents=True, exist_ok=True)
        connection = sqlite3.connect(str(self.path), timeout=self.busy_timeout_s)
        connection.execute("PRAGMA journal_mode=WAL")
        connection.execute(
            f"PRAGMA busy_timeout={int(self.busy_timeout_s * 1000)}"
        )
        connection.execute("PRAGMA synchronous=NORMAL")
        with connection:
            connection.executescript(_SCHEMA)
            connection.execute(f"PRAGMA user_version={SCHEMA_VERSION}")
        connection.row_factory = sqlite3.Row
        self._local.connection = connection
        return connection

    def close(self) -> None:
        connection = getattr(self._local, "connection", None)
        if connection is not None:
            connection.close()
            self._local.connection = None

    # -- writing ---------------------------------------------------------------

    def record(
        self,
        fingerprint: str,
        spec: Mapping[str, Any],
        label: str,
        values: Mapping[str, Any],
        *,
        worker: Optional[str] = None,
        attempts: int = 0,
        elapsed_s: Optional[float] = None,
        revision: Optional[str] = None,
    ) -> bool:
        """Insert a result, or verify it against the already-stored one.

        Returns True when the row was inserted, False when an identical
        row already existed (the duplicate-completion no-op). Raises
        :class:`DeterminismViolation` — after logging the divergent
        values into the ``violations`` table — when the stored and new
        canonical values differ.

        ``values_json`` keeps the *insertion* order of the values dict
        (so queried figure rows serialize byte-identically to the serial
        run, whose row dicts are insertion-ordered); equality is judged
        on the canonical (key-sorted) digest, recomputed from the stored
        JSON so a tampered row can never verify.
        """
        values_json = json.dumps(
            jsonify(dict(values)), separators=(",", ":"), allow_nan=True
        )
        values_sha = payload_digest(jsonify(dict(values)))
        params_json = canonical_payload_bytes(
            jsonify(dict(spec.get("params", {})))
        ).decode()
        connection = self._connect()
        host = socket.gethostname()
        with connection:
            # One transaction: the INSERT either wins (row committed) or
            # hits the primary key, in which case we verify instead.
            try:
                connection.execute(
                    "INSERT INTO results (fingerprint, experiment, point,"
                    " label, params_json, values_json, values_sha256,"
                    " git_revision, host, worker, attempts, elapsed_s,"
                    " recorded_at)"
                    " VALUES (?,?,?,?,?,?,?,?,?,?,?,?,?)",
                    (
                        fingerprint,
                        str(spec.get("experiment", "")),
                        str(spec.get("point", "")),
                        label,
                        params_json,
                        values_json,
                        values_sha,
                        revision,
                        host,
                        worker,
                        int(attempts),
                        elapsed_s,
                        time.time(),
                    ),
                )
                return True
            except sqlite3.IntegrityError:
                pass
            row = connection.execute(
                "SELECT values_json, values_sha256 FROM results"
                " WHERE fingerprint=?",
                (fingerprint,),
            ).fetchone()
            if row is None:  # pragma: no cover - PK hit implies a row
                raise
            # Recompute the canonical digest from the stored JSON rather
            # than trusting the stored sha256 column — a row whose values
            # were edited on disk must fail verification, not pass it.
            try:
                stored_digest = payload_digest(
                    jsonify(json.loads(row["values_json"]))
                )
            except ValueError:
                stored_digest = "<unparseable>"
            if stored_digest == values_sha:
                logger.info(
                    "duplicate completion of %s verified bit-identical",
                    fingerprint[:12],
                )
                return False
            connection.execute(
                "INSERT INTO violations (fingerprint, stored_sha256,"
                " new_sha256, new_values, host, worker, observed_at)"
                " VALUES (?,?,?,?,?,?,?)",
                (
                    fingerprint, stored_digest, values_sha,
                    values_json, host, worker, time.time(),
                ),
            )
        raise DeterminismViolation(fingerprint, stored_digest, values_sha)

    # -- reading ---------------------------------------------------------------

    def _row_to_record(self, row: sqlite3.Row) -> ResultRecord:
        return ResultRecord(
            fingerprint=row["fingerprint"],
            experiment=row["experiment"],
            point=row["point"],
            label=row["label"],
            params=json.loads(row["params_json"]),
            values=json.loads(row["values_json"]),
            values_sha256=row["values_sha256"],
            git_revision=row["git_revision"],
            host=row["host"],
            worker=row["worker"],
            attempts=int(row["attempts"]),
            elapsed_s=row["elapsed_s"],
            recorded_at=float(row["recorded_at"]),
        )

    def fetch(self, fingerprint: str) -> Optional[ResultRecord]:
        """The result recorded for one fingerprint, or None."""
        row = self._connect().execute(
            "SELECT * FROM results WHERE fingerprint=?", (fingerprint,)
        ).fetchone()
        return self._row_to_record(row) if row else None

    def records(
        self, experiment: Optional[str] = None
    ) -> Iterator[ResultRecord]:
        """All results (optionally one experiment's), fingerprint order."""
        sql = "SELECT * FROM results"
        args: tuple = ()
        if experiment is not None:
            sql += " WHERE experiment=?"
            args = (experiment,)
        sql += " ORDER BY fingerprint"
        for row in self._connect().execute(sql, args):
            yield self._row_to_record(row)

    def violations(self) -> List[Dict[str, Any]]:
        """All recorded determinism violations (hopefully empty)."""
        rows = self._connect().execute(
            "SELECT * FROM violations ORDER BY id"
        ).fetchall()
        return [dict(row) for row in rows]

    def count(self) -> int:
        row = self._connect().execute(
            "SELECT COUNT(*) AS n FROM results"
        ).fetchone()
        return int(row["n"])


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "ResultStore": {"path": "any", "busy_timeout_s": "scalar second"},
    "ResultStore.record": {
        "fingerprint": "any", "spec": "any", "label": "any",
        "values": "any", "worker": "any",
        "attempts": "scalar dimensionless", "elapsed_s": "scalar second",
        "revision": "any", "return": "any",
    },
    "ResultStore.fetch": {
        "fingerprint": "any", "return": "ResultRecord | any",
    },
    "ResultRecord.attempts": "scalar dimensionless",
    "ResultRecord.elapsed_s": "scalar second",
    "ResultRecord.recorded_at": "scalar second",
    "git_revision": {"cwd": "any", "return": "any"},
    # Exactness discipline (REP3xx): the verified bytes are exactly the
    # canonical values JSON — float-exact, key-sorted — never provenance.
    "@deterministic": ["ResultStore.record values_json"],
}
