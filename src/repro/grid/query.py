"""Query and aggregate a grid's result store.

The store rows are flat (fingerprint -> spec + values); this module turns
them back into science:

* :func:`select` — filter records by experiment, point and axis values;
* :func:`figure_rows` — reassemble a figure's
  :class:`~repro.experiments.common.ExperimentRow` list, in the figure's
  own row order, from grid results (the CI bit-identity check feeds these
  through the same :mod:`repro.reporting` serializers as the serial run);
* :func:`pivot` — one metric over two axes as a dense array;
* :func:`percentiles` — robustness percentiles of a metric across a
  seed/variation axis, grouped by everything else.

Value comparisons and grouping keys go through the canonical JSON bytes
(:func:`repro.runtime.artifacts.canonical_payload_bytes`) rather than
float ``==``, matching the exactness discipline used everywhere else in
the repo: two values are "the same" iff they serialize identically.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.experiments.common import ExperimentRow
from repro.grid.space import job_fingerprint
from repro.grid.store import ResultRecord, ResultStore
from repro.runtime.artifacts import canonical_payload_bytes, jsonify


class QueryError(ValueError):
    """A query asked for something the store cannot answer."""


def _canon(value: Any) -> bytes:
    return canonical_payload_bytes(jsonify(value))


def _same(a: Any, b: Any) -> bool:
    """Exact value equality via the canonical serialization."""
    return _canon(a) == _canon(b)


def _matches(record: ResultRecord, where: Mapping[str, Any]) -> bool:
    for key, accepted in where.items():
        if key == "experiment":
            actual: Any = record.experiment
        elif key == "point":
            actual = record.point
        else:
            actual = record.params.get(key)
        if isinstance(accepted, (list, tuple, set, frozenset)):
            if not any(_same(actual, option) for option in accepted):
                return False
        elif not _same(actual, accepted):
            return False
    return True


def select(
    store: ResultStore,
    experiment: Optional[str] = None,
    where: Optional[Mapping[str, Any]] = None,
) -> List[ResultRecord]:
    """All records matching the filter, in fingerprint order.

    ``where`` maps axis names (or ``"point"``/``"experiment"``) to an
    accepted value or a list of accepted values.
    """
    records = store.records(experiment)
    if where:
        return [r for r in records if _matches(r, where)]
    return list(records)


def figure_rows(
    store: ResultStore,
    experiment: str,
    params: Mapping[str, Any],
    missing: str = "error",
) -> List[ExperimentRow]:
    """One parameter set's results as the figure's row list.

    Rows come back in the experiment's declared point order (via its
    ``point_specs``), labelled with the figure's row labels — so
    ``rows_to_json(figure_rows(...))`` is byte-comparable against the
    serial ``run()`` output. ``missing`` is ``"error"`` (raise
    :class:`QueryError` listing absent points) or ``"skip"``.
    """
    from repro.grid.runners import experiment_for

    if missing not in ("error", "skip"):
        raise QueryError(f"missing must be 'error' or 'skip', got {missing!r}")
    specs = experiment_for(experiment).point_specs(**dict(params))
    rows: List[ExperimentRow] = []
    absent: List[str] = []
    for spec in specs:
        fingerprint = job_fingerprint(experiment, dict(params), spec.name)
        record = store.fetch(fingerprint)
        if record is None:
            absent.append(spec.name)
            continue
        rows.append(ExperimentRow(
            label=spec.label,
            values={str(k): float(v) for k, v in record.values.items()},
        ))
    if absent and missing == "error":
        raise QueryError(
            f"no stored results for {experiment} points {absent} under "
            f"params {dict(params)!r} (grid not finished?)"
        )
    return rows


def _axis_value(record: ResultRecord, axis: str) -> Any:
    if axis == "point":
        return record.point
    if axis == "experiment":
        return record.experiment
    return record.params.get(axis)


def _sorted_unique(values: Sequence[Any]) -> List[Any]:
    unique: Dict[bytes, Any] = {}
    for value in values:
        unique.setdefault(_canon(value), value)
    return [unique[key] for key in sorted(unique)]


def pivot(
    records: Sequence[ResultRecord],
    index: str,
    columns: str,
    value: str,
) -> Dict[str, Any]:
    """One result metric over two axes as a dense table.

    Returns ``{"index": [...], "columns": [...], "values": 2-D list}``
    with ``None`` holes where no record exists; more than one record per
    cell is a :class:`QueryError` (under-constrained filter).
    """
    index_values = _sorted_unique([_axis_value(r, index) for r in records])
    column_values = _sorted_unique([_axis_value(r, columns) for r in records])
    position = {
        (_canon(iv), _canon(cv)): (i, j)
        for i, iv in enumerate(index_values)
        for j, cv in enumerate(column_values)
    }
    table: List[List[Optional[float]]] = [
        [None] * len(column_values) for _ in index_values
    ]
    for record in records:
        if value not in record.values:
            continue
        i, j = position[
            (_canon(_axis_value(record, index)),
             _canon(_axis_value(record, columns)))
        ]
        if table[i][j] is not None:
            raise QueryError(
                f"pivot cell ({index}={index_values[i]!r}, "
                f"{columns}={column_values[j]!r}) is ambiguous: multiple "
                f"records; constrain the selection further"
            )
        table[i][j] = float(record.values[value])
    return {"index": index_values, "columns": column_values, "values": table}


def percentiles(
    records: Sequence[ResultRecord],
    value: str,
    over: str = "seed",
    qs: Sequence[float] = (5.0, 50.0, 95.0),
) -> List[Dict[str, Any]]:
    """Robustness percentiles of one metric across a variation axis.

    Records are grouped by everything *except* ``over`` (their point name
    plus all other parameters); each group reports ``n`` samples and the
    requested percentiles (linear interpolation, the NumPy default). This
    is the seed-robustness view: plan a grid with a ``seed`` axis, then
    ask how stable each figure point is across it.
    """
    groups: Dict[bytes, Dict[str, Any]] = {}
    for record in records:
        if value not in record.values:
            continue
        rest = {k: v for k, v in record.params.items() if k != over}
        key_doc = {"experiment": record.experiment, "point": record.point,
                   "params": rest}
        key = _canon(key_doc)
        group = groups.setdefault(key, {
            "experiment": record.experiment,
            "point": record.point,
            "params": rest,
            "samples": [],
        })
        group["samples"].append(float(record.values[value]))
    result: List[Dict[str, Any]] = []
    for key in sorted(groups):
        group = groups[key]
        samples = np.asarray(sorted(group["samples"]), dtype=float)
        entry = {
            "experiment": group["experiment"],
            "point": group["point"],
            "params": group["params"],
            "metric": value,
            "n": int(samples.size),
        }
        for q in qs:
            entry[f"p{q:g}"] = float(np.percentile(samples, q))
        result.append(entry)
    return result


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "select": {
        "store": "ResultStore | any", "experiment": "any", "where": "any",
        "return": "any",
    },
    "figure_rows": {
        "store": "ResultStore | any", "experiment": "any", "params": "any",
        "missing": "any", "return": "any",
    },
    "pivot": {
        "records": "any", "index": "any", "columns": "any", "value": "any",
        "return": "any",
    },
    "percentiles": {
        "records": "any", "value": "any", "over": "any", "qs": "any",
        "return": "any",
    },
    # Exactness discipline (REP3xx): query output feeds the CI
    # bit-identity comparison against the serial figure run.
    "@deterministic": ["figure_rows", "pivot", "percentiles", "select"],
}
