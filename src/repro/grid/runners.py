"""The grid's experiment registry: what a job's ``experiment`` refers to.

Each entry binds a name to the experiment module's two constructors:

* ``point_specs(**params)`` — cheap point enumeration (names, labels,
  per-point fingerprints), used at planning time by
  :func:`repro.grid.space.expand` and at query time for row ordering;
* ``points(checkpoint_dir=..., **params)`` — the runnable sweep points.
  Datagen for *all* points runs inside it, replaying the full RNG
  sequence from the seed, so executing any single thunk (a grid job)
  yields values bit-identical to the serial figure run by construction.

:func:`execute_job` is the worker's entry: it re-expands the experiment's
points from the job's parameters and runs exactly the requested one under
a per-job :class:`~repro.experiments.common.ExperimentSweep` checkpoint —
covering both the computed-but-not-yet-recorded window (the sweep
checkpoint caches the finished values) and the mid-search window (the
annealing checkpoints under ``<job>/anneal`` resume an interrupted chain
bit-identically).

The ``selftest`` experiment is a microsecond-cheap stand-in for the chaos
tests and the claim-throughput benchmark: seed-determined values, an
optional per-point delay (to widen kill windows) and optional designated
failing points (to exercise the bounded-retry path).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.experiments import fig4, fig6, noc_case_study
from repro.experiments.common import ExperimentSweep, GridPoint, PointSpec
from repro.grid.space import JOB_FORMAT, JOB_VERSION, SpaceError, job_fingerprint


class UnknownPointError(ValueError):
    """A job names a point its experiment does not declare."""


@dataclass(frozen=True)
class GridExperiment:
    """One runnable experiment: cheap spec enumeration + point thunks."""

    name: str
    point_specs: Callable[..., List[PointSpec]]
    points: Callable[..., List[GridPoint]]


# -- the selftest experiment ---------------------------------------------------


def _selftest_specs(
    n_points: int = 3,
    seed: int = 2018,
    delay_s: float = 0.0,
    fail_points: Tuple[str, ...] = (),
) -> List[PointSpec]:
    return [
        PointSpec(
            name=f"p{index}",
            label=f"selftest p{index}",
            fingerprint={
                "experiment": "selftest", "index": index,
                "n_points": n_points, "seed": seed,
            },
        )
        for index in range(int(n_points))
    ]


def _selftest_points(
    n_points: int = 3,
    seed: int = 2018,
    delay_s: float = 0.0,
    fail_points: Tuple[str, ...] = (),
    checkpoint_dir: Optional[str] = None,
) -> List[GridPoint]:
    del checkpoint_dir  # nothing to checkpoint below the sweep level
    result: List[GridPoint] = []
    for index, spec in enumerate(_selftest_specs(
        n_points=n_points, seed=seed, delay_s=delay_s,
        fail_points=fail_points,
    )):

        def thunk(index=index, name=spec.name):
            if name in tuple(fail_points):
                raise RuntimeError(f"selftest point {name} set to fail")
            if delay_s:
                time.sleep(float(delay_s))
            rng = np.random.default_rng([int(seed), index])
            return {"value": float(rng.random()), "index": float(index)}

        result.append(GridPoint(spec=spec, thunk=thunk))
    return result


#: Everything a grid job's ``experiment`` field may name.
EXPERIMENTS: Dict[str, GridExperiment] = {
    "fig4": GridExperiment("fig4", fig4.point_specs, fig4.points),
    "fig6": GridExperiment("fig6", fig6.point_specs, fig6.points),
    "noc": GridExperiment(
        "noc", noc_case_study.point_specs, noc_case_study.points
    ),
    "selftest": GridExperiment("selftest", _selftest_specs, _selftest_points),
}


def experiment_for(name: str) -> GridExperiment:
    if name not in EXPERIMENTS:
        raise SpaceError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[name]


def point_names_for(experiment: str, params: Mapping[str, Any]) -> List[str]:
    """The point names ``experiment`` declares under one parameter set."""
    try:
        specs = experiment_for(experiment).point_specs(**dict(params))
    except TypeError as exc:
        raise SpaceError(
            f"experiment {experiment!r} rejected params "
            f"{dict(params)!r}: {exc}"
        ) from exc
    return [spec.name for spec in specs]


def execute_job(
    spec: Mapping[str, Any],
    checkpoint_dir: Optional[str] = None,
) -> Tuple[str, Dict[str, float]]:
    """Run one queued job spec; returns ``(row label, values)``.

    With a ``checkpoint_dir`` (the worker's per-job directory) the point
    runs under a job-level sweep checkpoint plus annealing checkpoints in
    an ``anneal/`` subdirectory, so a reclaimed job resumes instead of
    recomputing — bit-identically, because both layers are observational.
    """
    if spec.get("format") != JOB_FORMAT or spec.get("version") != JOB_VERSION:
        raise SpaceError(
            f"not a version-{JOB_VERSION} {JOB_FORMAT} spec: "
            f"format={spec.get('format')!r} version={spec.get('version')!r}"
        )
    experiment = experiment_for(str(spec.get("experiment", "")))
    params = dict(spec.get("params", {}))
    point_name = str(spec.get("point", ""))

    anneal_dir = None
    if checkpoint_dir is not None:
        anneal_dir = str(Path(checkpoint_dir) / "anneal")
    try:
        points = experiment.points(checkpoint_dir=anneal_dir, **params)
    except TypeError as exc:
        raise SpaceError(
            f"experiment {experiment.name!r} rejected params "
            f"{params!r}: {exc}"
        ) from exc
    match = next((p for p in points if p.spec.name == point_name), None)
    if match is None:
        raise UnknownPointError(
            f"experiment {experiment.name!r} has no point {point_name!r}; "
            f"available: {[p.spec.name for p in points]}"
        )
    sweep = ExperimentSweep(
        f"grid-{experiment.name}",
        checkpoint_dir=checkpoint_dir,
        fingerprint={
            "job": job_fingerprint(experiment.name, params, point_name)
        },
    )
    values = sweep.compute(
        match.spec.name, match.thunk, fingerprint=match.spec.fingerprint
    )
    return match.spec.label, values


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "GridExperiment": {
        "name": "any", "point_specs": "any", "points": "any",
    },
    "point_names_for": {
        "experiment": "any", "params": "any", "return": "any",
    },
    "execute_job": {
        "spec": "any", "checkpoint_dir": "any", "return": "any",
    },
    # Exactness discipline (REP3xx): a job must compute the same values
    # on every worker that ever claims it.
    "@deterministic": ["point_names_for", "execute_job"],
}
