"""File-backed job queue: atomic-rename claims, leases, heartbeat expiry.

One grid lives in one directory tree::

    <root>/jobs/pending/<fingerprint>.json    submitted, unclaimed
    <root>/jobs/running/<fingerprint>.json    claimed by a worker
    <root>/jobs/done/<fingerprint>.json       recorded in the result store
    <root>/jobs/failed/<fingerprint>.json     attempts exhausted
    <root>/jobs/leases/<fingerprint>.json     owner + heartbeat of a claim
    <root>/jobs/meta/<fingerprint>.json       attempt counter, last error

Job files are immutable JSON specs (see :meth:`repro.grid.space.Job.spec`);
every state transition is a single :func:`os.rename` between the state
directories, which the filesystem serializes — when two workers race one
claim, exactly one rename succeeds and the loser sees ``FileNotFoundError``
and moves on. Mutable bookkeeping (attempt counts, lease heartbeats) lives
in sidecar files written atomically, *outside* the commit path, so a crash
can at worst over-count an attempt or leave a stale lease — never lose or
duplicate a job state.

Only the claim winner writes the claim's lease (just after its winning
rename), and the worker's heartbeat thread refreshes it.
:meth:`JobQueue.reclaim_expired` returns jobs whose lease went silent
(dead worker) to ``pending`` — granting lease-less running jobs a grace
period from the claim rename's ctime, and bumping the attempt counter so
a job that kills its workers lands in ``failed`` after ``max_attempts``
instead of crash-looping the fleet.
Because a reclaimed job may race its not-quite-dead previous owner, grid
execution is *at-least-once*; the result store's insert-or-verify
semantics (:mod:`repro.grid.store`) make duplicate completions safe and
turn any divergence into a flagged determinism violation.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.grid.space import JOB_FORMAT, JOB_VERSION, Job
from repro.runtime.artifacts import atomic_write_bytes

logger = logging.getLogger("repro.grid")


def _atomic_write_json(path: Path, document: Dict[str, Any]) -> None:
    """Atomic JSON write; safe for concurrent writers of one sidecar.

    :func:`repro.runtime.artifacts.atomic_write_bytes` uses a
    writer-unique temp name, so racing workers refreshing the same lease
    or meta file never replace each other's temp file mid-flight.
    """
    atomic_write_bytes(
        path, json.dumps(document, sort_keys=True, indent=1).encode("utf-8")
    )


class JobState:
    """The queue's state-directory names (the job lifecycle)."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"

    ALL = (PENDING, RUNNING, DONE, FAILED)


class QueueError(RuntimeError):
    """A queue operation hit an inconsistent on-disk state."""


@dataclass(frozen=True)
class QueuedJob:
    """One job as read back from the queue."""

    fingerprint: str
    spec: Dict[str, Any]
    state: str
    attempts: int = 0
    error: Optional[str] = None

    @property
    def experiment(self) -> str:
        return str(self.spec.get("experiment", ""))

    @property
    def point(self) -> str:
        return str(self.spec.get("point", ""))

    @property
    def params(self) -> Dict[str, Any]:
        return dict(self.spec.get("params", {}))


@dataclass(frozen=True)
class Claim:
    """A successfully claimed job, owned by one worker until released."""

    job: QueuedJob
    owner: str


def default_owner(index: int = 0) -> str:
    """A lease owner id unique across hosts, processes and worker slots."""
    return f"{socket.gethostname()}:{os.getpid()}:w{index}"


class JobQueue:
    """One grid's job queue rooted at ``<root>/jobs``.

    Thread-safe within a process (the in-memory set of held leases that
    the heartbeat thread refreshes is guarded by ``_lock``) and safe
    across processes and hosts sharing the directory (every state
    transition is one atomic rename).
    """

    def __init__(
        self,
        root: Union[str, Path],
        max_attempts: int = 3,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.root = Path(root)
        self.max_attempts = max_attempts
        self._jobs = self.root / "jobs"
        self._lock = threading.Lock()
        self._held: Dict[str, str] = {}  # fingerprint -> owner (this process)
        for state in JobState.ALL:
            (self._jobs / state).mkdir(parents=True, exist_ok=True)
        (self._jobs / "leases").mkdir(exist_ok=True)
        (self._jobs / "meta").mkdir(exist_ok=True)

    # -- paths -----------------------------------------------------------------

    def _job_path(self, state: str, fingerprint: str) -> Path:
        return self._jobs / state / f"{fingerprint}.json"

    def _lease_path(self, fingerprint: str) -> Path:
        return self._jobs / "leases" / f"{fingerprint}.json"

    def _meta_path(self, fingerprint: str) -> Path:
        return self._jobs / "meta" / f"{fingerprint}.json"

    # -- sidecar bookkeeping ---------------------------------------------------

    def _read_json(self, path: Path) -> Optional[Dict[str, Any]]:
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return document if isinstance(document, dict) else None

    def _meta(self, fingerprint: str) -> Dict[str, Any]:
        return self._read_json(self._meta_path(fingerprint)) or {}

    def attempts(self, fingerprint: str) -> int:
        return int(self._meta(fingerprint).get("attempts", 0))

    def _write_meta(self, fingerprint: str, **updates: Any) -> Dict[str, Any]:
        meta = self._meta(fingerprint)
        meta.update(updates)
        _atomic_write_json(self._meta_path(fingerprint), meta)
        return meta

    def _write_lease(self, fingerprint: str, owner: str, attempts: int) -> None:
        _atomic_write_json(self._lease_path(fingerprint), {
            "owner": owner,
            "host": socket.gethostname(),
            "pid": os.getpid(),
            "attempts": attempts,
            "heartbeat_at": time.time(),
        })

    def _drop_lease(
        self, fingerprint: str, owner: Optional[str] = None
    ) -> None:
        """Withdraw a lease; with ``owner``, only if it is still ours.

        A job reclaimed while its not-quite-dead owner still ran may be
        claimed again — the stale owner's eventual ``complete``/
        ``fail_attempt`` must not unlink the *new* owner's live lease.
        Owner-checked drops keep that window to the unavoidable
        read-then-unlink sliver, which the at-least-once execution
        contract already covers.
        """
        if owner is not None:
            lease = self._read_json(self._lease_path(fingerprint))
            if lease is not None and lease.get("owner") != owner:
                with self._lock:
                    self._held.pop(fingerprint, None)
                return
        try:
            self._lease_path(fingerprint).unlink()
        except OSError:
            pass
        with self._lock:
            self._held.pop(fingerprint, None)

    # -- submission ------------------------------------------------------------

    def submit(self, job: Job) -> bool:
        """Queue one expanded job; returns False when it already exists.

        A job present in *any* state directory is "already planned" —
        re-planning a space over a partially run grid only adds the
        genuinely new points.
        """
        fingerprint = job.fingerprint
        for state in JobState.ALL:
            if self._job_path(state, fingerprint).exists():
                return False
        _atomic_write_json(
            self._job_path(JobState.PENDING, fingerprint), job.spec()
        )
        return True

    # -- claiming --------------------------------------------------------------

    def _load_job(
        self, state: str, fingerprint: str
    ) -> Optional[QueuedJob]:
        spec = self._read_json(self._job_path(state, fingerprint))
        if spec is None:
            return None
        if spec.get("format") != JOB_FORMAT or spec.get("version") != JOB_VERSION:
            return None
        meta = self._meta(fingerprint)
        return QueuedJob(
            fingerprint=fingerprint,
            spec=spec,
            state=state,
            attempts=int(meta.get("attempts", 0)),
            error=meta.get("error"),
        )

    def claim(self, owner: str) -> Optional[Claim]:
        """Claim the first available pending job, or None.

        The claiming rename is the whole race: exactly one claimer's
        rename succeeds, and only the winner ever writes the lease — so
        racing claimers never touch each other's lease files. The window
        between the rename and the lease write (where a crash leaves a
        running job lease-less) is covered by
        :meth:`reclaim_expired`'s grace period, which falls back to the
        claim rename's ctime as the last sign of life.
        """
        pending = self._jobs / JobState.PENDING
        for path in sorted(pending.glob("*.json")):
            fingerprint = path.stem
            try:
                os.rename(path, self._job_path(JobState.RUNNING, fingerprint))
            except FileNotFoundError:
                continue  # another worker won this job; try the next
            self._write_lease(fingerprint, owner, self.attempts(fingerprint))
            job = self._load_job(JobState.RUNNING, fingerprint)
            if job is None:
                # Unreadable spec: park it in failed/ instead of crash-looping.
                self._write_meta(fingerprint, error="unreadable job spec")
                self._move(JobState.RUNNING, JobState.FAILED, fingerprint)
                self._drop_lease(fingerprint, owner)
                continue
            with self._lock:
                self._held[fingerprint] = owner
            return Claim(job=job, owner=owner)
        return None

    # -- heartbeats ------------------------------------------------------------

    def heartbeat(self, fingerprint: str, owner: str) -> None:
        """Refresh the lease of one held claim."""
        self._write_lease(fingerprint, owner, self.attempts(fingerprint))

    def heartbeat_held(self) -> None:
        """Refresh every lease held by this process (heartbeat thread)."""
        with self._lock:
            held = dict(self._held)
        for fingerprint, owner in sorted(held.items()):
            self.heartbeat(fingerprint, owner)

    # -- state transitions -----------------------------------------------------

    def _move(self, src: str, dst: str, fingerprint: str) -> bool:
        try:
            os.rename(
                self._job_path(src, fingerprint),
                self._job_path(dst, fingerprint),
            )
        except FileNotFoundError:
            return False
        return True

    def complete(self, fingerprint: str, owner: str) -> None:
        """Mark a claimed job done (after its result is safely recorded)."""
        if not self._move(JobState.RUNNING, JobState.DONE, fingerprint):
            self._drop_lease(fingerprint, owner)
            raise QueueError(
                f"cannot complete {fingerprint}: not running (reclaimed?)"
            )
        self._drop_lease(fingerprint, owner)

    def release(self, fingerprint: str, owner: str) -> None:
        """Return a claimed job to pending unchanged (graceful drain).

        The attempt counter is *not* bumped: a drained worker did nothing
        wrong, and the job's partial checkpoints stay on disk for the
        next claimant.
        """
        self._move(JobState.RUNNING, JobState.PENDING, fingerprint)
        self._drop_lease(fingerprint, owner)

    def fail_attempt(
        self, fingerprint: str, owner: str, error: str
    ) -> str:
        """Record a failed execution attempt; requeue or park in failed.

        Returns the state the job landed in (``pending`` or ``failed``).
        """
        attempts = self.attempts(fingerprint) + 1
        self._write_meta(fingerprint, attempts=attempts, error=error)
        if attempts >= self.max_attempts:
            self._move(JobState.RUNNING, JobState.FAILED, fingerprint)
            self._drop_lease(fingerprint, owner)
            logger.warning(
                "job %s failed %d/%d attempts, parking in failed/: %s",
                fingerprint[:12], attempts, self.max_attempts, error,
            )
            return JobState.FAILED
        self._move(JobState.RUNNING, JobState.PENDING, fingerprint)
        self._drop_lease(fingerprint, owner)
        return JobState.PENDING

    # -- lease expiry ----------------------------------------------------------

    def reclaim_expired(self, lease_timeout_s: float) -> List[str]:
        """Return jobs with silent leases to pending; returns fingerprints.

        A running job whose lease heartbeat is older than
        ``lease_timeout_s`` (or unreadable) belongs to a dead or wedged
        worker. The attempt counter is bumped *before* the commit rename,
        so racing reclaimers can at worst over-count an attempt — they
        cannot both requeue the job.
        """
        reclaimed: List[str] = []
        now = time.time()
        running = self._jobs / JobState.RUNNING
        for path in sorted(running.glob("*.json")):
            fingerprint = path.stem
            with self._lock:
                if fingerprint in self._held:
                    continue  # our own live claim
            lease = self._read_json(self._lease_path(fingerprint))
            if lease is not None:
                beat = float(lease.get("heartbeat_at", 0.0))
            else:
                # No lease: either a crash between rename and lease write,
                # or a racing claimer transiently unlinked the winner's
                # lease. Grant the claim rename's ctime as the last sign
                # of life so a live worker has a full heartbeat interval
                # to restore its lease before we declare it dead.
                try:
                    beat = path.stat().st_ctime
                except OSError:
                    continue  # job moved on while we were looking
            if now - beat < lease_timeout_s:
                continue
            # Re-read the lease just before acting: the silence decision
            # above may be stale — another sweeper can have reclaimed the
            # job and a new owner re-claimed it (writing a fresh lease)
            # while we deliberated. Stealing a *live* owner's job here
            # would fork its execution; the re-check shrinks that window
            # from the whole deliberation to one read-to-rename sliver
            # (which the at-least-once contract still covers).
            current = self._read_json(self._lease_path(fingerprint))
            if current != lease:
                continue
            attempts = self.attempts(fingerprint) + 1
            self._write_meta(
                fingerprint, attempts=attempts,
                error=f"lease expired after {lease_timeout_s:g}s",
            )
            dst = (
                JobState.FAILED
                if attempts >= self.max_attempts
                else JobState.PENDING
            )
            if self._move(JobState.RUNNING, dst, fingerprint):
                self._drop_lease(fingerprint)
                logger.warning(
                    "reclaimed job %s from a silent worker (%s) -> %s",
                    fingerprint[:12],
                    (lease or {}).get("owner", "unknown lease"), dst,
                )
                reclaimed.append(fingerprint)
        return reclaimed

    # -- resubmission & inspection ---------------------------------------------

    def resubmit(
        self, fingerprint: str, from_states: Optional[List[str]] = None
    ) -> bool:
        """Move a done/failed job back to pending with a reset counter."""
        for state in from_states or [JobState.FAILED, JobState.DONE]:
            if self._move(state, JobState.PENDING, fingerprint):
                self._write_meta(fingerprint, attempts=0, error=None)
                return True
        return False

    def jobs(self, state: str) -> List[QueuedJob]:
        """All jobs currently in ``state``, sorted by fingerprint."""
        if state not in JobState.ALL:
            raise ValueError(f"unknown job state {state!r}")
        result = []
        for path in sorted((self._jobs / state).glob("*.json")):
            job = self._load_job(state, path.stem)
            if job is not None:
                result.append(job)
        return result

    def counts(self) -> Dict[str, int]:
        """Job counts per state directory."""
        return {
            state: sum(
                1 for _ in (self._jobs / state).glob("*.json")
            )
            for state in JobState.ALL
        }

    def drained(self) -> bool:
        """True when nothing is pending or running."""
        counts = self.counts()
        return counts[JobState.PENDING] == 0 and counts[JobState.RUNNING] == 0


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "JobQueue": {"root": "any", "max_attempts": "scalar dimensionless"},
    "JobQueue.claim": {"owner": "any", "return": "Claim | any"},
    "JobQueue.reclaim_expired": {
        "lease_timeout_s": "scalar second", "return": "any",
    },
    "QueuedJob.attempts": "scalar dimensionless",
    "default_owner": {"index": "scalar dimensionless", "return": "any"},
    # Concurrency discipline (REP2xx): the set of leases this process
    # holds is read by the worker's heartbeat thread while the main
    # thread claims and completes jobs.
    "@guards": ["JobQueue._held guarded_by _lock"],
    "@threads": ["JobQueue.heartbeat_held"],
}
