"""The grid worker: claim a job, run it, record it — survivably.

``python -m repro.grid.worker <grid-root>`` runs one worker process
against a grid directory (see :mod:`repro.grid.queue`). Arbitrarily many
workers — threads, processes, hosts on a shared filesystem — can serve
one grid concurrently; the queue's atomic-rename claims keep them from
colliding and the store's insert-or-verify keeps duplicate completions
honest.

Failure semantics, from gentle to violent:

* **Graceful drain** (SIGTERM, Ctrl-C): the in-flight annealing search
  returns its best-so-far (already checkpointed), the claim is released
  back to ``pending`` *without* bumping the attempt counter, and the
  partial per-job checkpoints stay on disk — the next claimant resumes
  mid-search bit-identically instead of restarting.
* **Job failure** (the thunk raises): the attempt counter is bumped and
  the job requeues, landing in ``failed`` after ``max_attempts``.
* **Hard death** (SIGKILL, power loss, the ``worker_crash`` fault
  point): nothing runs — the lease simply goes silent and any worker's
  next :meth:`~repro.grid.queue.JobQueue.reclaim_expired` sweep returns
  the job to ``pending``. This is the chaos-tested path.
* **Determinism violation** (the store refuses the result): the job is
  parked in ``failed`` and the worker dies loudly — this is a bug in the
  experiment, not in the grid, and must never be retried into silence.
"""

from __future__ import annotations

import argparse
import logging
import shutil
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Dict, Optional, Union

from repro.grid.queue import JobQueue, QueueError, default_owner
from repro.grid.runners import execute_job
from repro.grid.store import DeterminismViolation, ResultStore, git_revision
from repro.runtime.faults import fault_point

logger = logging.getLogger("repro.grid")

#: Default lease timeout; a worker silent this long loses its jobs.
DEFAULT_LEASE_TIMEOUT_S = 30.0


class GridWorker:
    """One claim-and-run loop over a grid directory.

    Parameters
    ----------
    root:
        The grid directory (jobs tree + ``results.sqlite``).
    index:
        Worker slot number; feeds the lease owner id and the
        ``worker_crash`` fault point.
    lease_timeout_s:
        Silence threshold after which *other* workers' leases are
        reclaimed; this worker heartbeats at a quarter of it.
    wait:
        When False (default) the worker exits once the queue is drained;
        when True it keeps polling for new submissions until drained via
        :meth:`request_drain`.
    generation:
        Incarnation number forwarded to the ``worker_crash`` fault point
        (``once``-gated faults only fire in generation 0).
    """

    def __init__(
        self,
        root: Union[str, Path],
        index: int = 0,
        max_attempts: int = 3,
        lease_timeout_s: float = DEFAULT_LEASE_TIMEOUT_S,
        poll_s: float = 0.2,
        wait: bool = False,
        max_jobs: Optional[int] = None,
        generation: int = 0,
    ) -> None:
        self.root = Path(root)
        self.index = index
        self.generation = generation
        self.owner = default_owner(index)
        self.queue = JobQueue(self.root, max_attempts=max_attempts)
        self.store = ResultStore(self.root / "results.sqlite")
        self.lease_timeout_s = lease_timeout_s
        self.poll_s = poll_s
        self.wait = wait
        self.max_jobs = max_jobs
        self._stop = threading.Event()

    def request_drain(self) -> None:
        """Ask the loop to stop after (or instead of) the current job."""
        self._stop.set()

    def _checkpoint_dir(self, fingerprint: str) -> Path:
        return self.root / "checkpoints" / fingerprint

    def _heartbeat_loop(self) -> None:
        interval = max(0.05, self.lease_timeout_s / 4.0)
        while not self._stop.wait(interval):
            try:
                self.queue.heartbeat_held()
            except OSError:  # pragma: no cover - disk hiccup; retry next beat
                logger.exception("heartbeat failed; retrying")

    def run(self) -> Dict[str, int]:
        """Serve the queue until drained (or stopped); returns counters."""
        stats = {
            "completed": 0, "verified": 0, "failed": 0,
            "released": 0, "reclaimed": 0,
        }
        revision = git_revision(self.root)
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"grid-heartbeat-{self.index}",
            daemon=True,
        )
        heartbeat.start()
        try:
            while not self._stop.is_set():
                if self.max_jobs is not None and (
                    stats["completed"] + stats["verified"] >= self.max_jobs
                ):
                    break
                stats["reclaimed"] += len(
                    self.queue.reclaim_expired(self.lease_timeout_s)
                )
                claim = self.queue.claim(self.owner)
                if claim is None:
                    if self.queue.drained() and not self.wait:
                        break
                    time.sleep(self.poll_s)
                    continue
                self._run_claim(claim, revision, stats)
        except KeyboardInterrupt:
            logger.warning("worker %s interrupted while idle", self.owner)
        finally:
            self._stop.set()
            heartbeat.join(timeout=2.0)
        return stats

    def _run_claim(self, claim, revision, stats) -> None:
        job = claim.job
        fingerprint = job.fingerprint
        checkpoint_dir = self._checkpoint_dir(fingerprint)
        # A hard worker death strikes here, with the claim held: the lease
        # goes silent and reclaim_expired() must recover the job.
        fault_point(
            "worker_crash", worker=self.index, generation=self.generation
        )
        started = time.monotonic()
        try:
            label, values = execute_job(
                job.spec, checkpoint_dir=str(checkpoint_dir)
            )
        except KeyboardInterrupt:
            # Graceful drain: no attempt burned, checkpoints kept.
            self.queue.release(fingerprint, self.owner)
            stats["released"] += 1  # repro: noqa[REP005] - run()'s counters
            logger.warning(
                "worker %s drained; released %s with partial checkpoints",
                self.owner, fingerprint[:12],
            )
            self._stop.set()
            return
        except Exception as exc:
            state = self.queue.fail_attempt(
                fingerprint, self.owner, f"{type(exc).__name__}: {exc}"
            )
            stats["failed"] += 1  # repro: noqa[REP005] - run()'s counters
            logger.warning(
                "job %s attempt failed (%s) -> %s",
                fingerprint[:12], exc, state,
            )
            return
        elapsed = time.monotonic() - started
        try:
            inserted = self.store.record(
                fingerprint, job.spec, label, values,
                worker=self.owner,
                attempts=self.queue.attempts(fingerprint),
                elapsed_s=elapsed,
                revision=revision,
            )
        except DeterminismViolation as violation:
            # Not a grid failure — the experiment reproduced differently.
            # Park the job and die loudly; retrying would only hide it.
            self.queue.fail_attempt(
                fingerprint, self.owner, str(violation)
            )
            raise
        stats[  # repro: noqa[REP005] - run()'s counters, mutated by design
            "completed" if inserted else "verified"
        ] += 1
        try:
            self.queue.complete(fingerprint, self.owner)
        except QueueError:
            # The job was reclaimed while we ran (we looked dead). The
            # result is recorded and verified, so this race is benign.
            logger.warning(
                "job %s finished after being reclaimed; result stands",
                fingerprint[:12],
            )
        shutil.rmtree(checkpoint_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.grid.worker",
        description="Serve one grid directory: claim, run and record jobs.",
    )
    parser.add_argument("root", help="grid directory (jobs + results.sqlite)")
    parser.add_argument("--index", type=int, default=0,
                        help="worker slot number (default 0)")
    parser.add_argument("--generation", type=int, default=0,
                        help="incarnation number for fault gating")
    parser.add_argument("--max-attempts", type=int, default=3)
    parser.add_argument("--lease-timeout", type=float,
                        default=DEFAULT_LEASE_TIMEOUT_S,
                        help="seconds of lease silence before reclaim")
    parser.add_argument("--poll", type=float, default=0.2,
                        help="idle poll interval in seconds")
    parser.add_argument("--max-jobs", type=int, default=None)
    parser.add_argument("--wait", action="store_true",
                        help="keep polling after the queue drains")
    args = parser.parse_args(argv)

    logging.basicConfig(
        level=logging.INFO,
        format=f"[grid-worker {args.index}] %(levelname)s %(message)s",
    )
    worker = GridWorker(
        args.root,
        index=args.index,
        max_attempts=args.max_attempts,
        lease_timeout_s=args.lease_timeout,
        poll_s=args.poll,
        wait=args.wait,
        max_jobs=args.max_jobs,
        generation=args.generation,
    )

    def _drain(signum, frame):
        worker.request_drain()
        raise KeyboardInterrupt(f"signal {signum}")

    signal.signal(signal.SIGTERM, _drain)
    try:
        stats = worker.run()
    except KeyboardInterrupt:
        stats = {"interrupted": 1}
    logger.info("worker %s done: %s", worker.owner, stats)
    print(
        " ".join(f"{key}={value}" for key, value in sorted(stats.items()))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "GridWorker": {
        "root": "any", "index": "scalar dimensionless",
        "max_attempts": "scalar dimensionless",
        "lease_timeout_s": "scalar second", "poll_s": "scalar second",
        "wait": "any", "max_jobs": "any",
        "generation": "scalar dimensionless",
    },
    "GridWorker.run": {"return": "any"},
    # Concurrency discipline (REP2xx): the heartbeat thread only touches
    # the queue's lock-guarded held-lease set; the stop event is the sole
    # cross-thread signal.
    "@threads": ["GridWorker._heartbeat_loop"],
    "@blocking": ["GridWorker.run"],
}
