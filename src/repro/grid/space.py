"""Declarative design spaces that expand deterministically into grid jobs.

A :class:`DesignSpace` describes one factorial sweep over an experiment's
parameters: a ``base`` parameter set, named ``axes`` (cartesian product),
explicit ``include`` points, an optional ``filter`` expression pruning
parameter combinations, and the set of sweep ``points`` to run per
combination. Expansion is a pure function of the space's *content*:

* axes are combined in sorted-name order, so the insertion order of the
  ``axes`` mapping never changes the result;
* every job is keyed by a content-addressed **fingerprint** — the SHA-256
  of the canonical JSON of ``{"experiment", "params", "point"}`` (the
  same canonical serialization the checkpoint layer checksums, see
  :func:`repro.runtime.artifacts.canonical_payload_bytes`) — so two
  processes, hosts or planning orders agree on every job identity;
* the expanded job list is sorted by fingerprint, making the expansion
  order-independent end to end (property-tested in
  ``tests/grid/test_space.py``).

Spec files are plain JSON::

    {
      "experiment": "fig4",
      "base": {"fast": true},
      "axes": {"seed": [2018, 2019, 2020]},
      "include": [{"seed": 99, "frame_size": 32}],
      "filter": "seed != 2019",
      "points": "all"
    }

``points`` is either ``"all"`` (every point the experiment declares for
the parameter set, see :data:`repro.grid.runners.EXPERIMENTS`) or an
explicit list of point names validated at expansion time.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.runtime.artifacts import jsonify, payload_digest

#: Envelope marker and schema version of queued job files.
JOB_FORMAT = "repro-grid-job"
JOB_VERSION = 1


class SpaceError(ValueError):
    """A design-space spec is malformed or inconsistent."""


def job_fingerprint(experiment: str, params: Mapping[str, Any], point: str) -> str:
    """Content-addressed identity of one grid job.

    The fingerprint covers exactly what determines the computation — the
    experiment name, its (jsonified) parameters and the point name — and
    nothing about *how* it is run (queue root, worker, attempt count), so
    a re-run anywhere must reproduce the same values bit for bit.
    """
    return payload_digest(jsonify({
        "experiment": experiment,
        "params": dict(params),
        "point": point,
    }))


@dataclass(frozen=True)
class Job:
    """One expanded sweep point: experiment + parameter set + point name."""

    experiment: str
    params: Tuple[Tuple[str, Any], ...]
    point: str

    @property
    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def fingerprint(self) -> str:
        return job_fingerprint(self.experiment, self.param_dict, self.point)

    def spec(self) -> Dict[str, Any]:
        """The JSON document queued for this job (see ``queue.py``)."""
        return {
            "format": JOB_FORMAT,
            "version": JOB_VERSION,
            "experiment": self.experiment,
            "params": jsonify(self.param_dict),
            "point": self.point,
        }


@dataclass(frozen=True)
class DesignSpace:
    """A declarative sweep spec; see the module docstring for the schema."""

    experiment: str
    base: Mapping[str, Any] = field(default_factory=dict)
    axes: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    include: Sequence[Mapping[str, Any]] = ()
    filter: Optional[str] = None
    points: Union[str, Sequence[str]] = "all"
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.experiment or not isinstance(self.experiment, str):
            raise SpaceError("design space needs an 'experiment' name")
        for axis, values in self.axes.items():
            if isinstance(values, (str, bytes)) or not isinstance(
                values, (list, tuple)
            ):
                raise SpaceError(
                    f"axis {axis!r} must list its values, got {values!r}"
                )
            if len(values) == 0:
                raise SpaceError(f"axis {axis!r} has no values")
        if isinstance(self.points, str) and self.points != "all":
            raise SpaceError(
                f"points must be 'all' or a list of names, got {self.points!r}"
            )


def load_space(path: Union[str, Path]) -> DesignSpace:
    """Parse a JSON design-space spec file into a :class:`DesignSpace`."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SpaceError(f"cannot read design space {path}: {exc}") from exc
    return space_from_dict(document, name=path.stem)


def space_from_dict(
    document: Mapping[str, Any], name: Optional[str] = None
) -> DesignSpace:
    """Build a :class:`DesignSpace` from a parsed spec document."""
    if not isinstance(document, Mapping):
        raise SpaceError("design space spec must be a JSON object")
    known = {"experiment", "base", "axes", "include", "filter", "points", "name"}
    unknown = sorted(set(document) - known)
    if unknown:
        raise SpaceError(f"unknown design-space keys {unknown}")
    return DesignSpace(
        experiment=document.get("experiment", ""),
        base=dict(document.get("base", {})),
        axes=dict(document.get("axes", {})),
        include=tuple(dict(entry) for entry in document.get("include", ())),
        filter=document.get("filter"),
        points=document.get("points", "all"),
        name=document.get("name", name),
    )


def _passes_filter(expression: Optional[str], params: Mapping[str, Any]) -> bool:
    """Evaluate a filter expression with the parameters as its namespace.

    The expression sees the parameter names as variables and nothing else
    (no builtins); an expression that raises is a spec error, not a
    silently dropped combination.
    """
    if not expression:
        return True
    try:
        return bool(eval(  # noqa: S307 - local spec files, empty builtins
            expression, {"__builtins__": {}}, dict(params)
        ))
    except Exception as exc:
        raise SpaceError(
            f"filter {expression!r} failed on params {dict(params)!r}: {exc}"
        ) from exc


def _param_sets(space: DesignSpace) -> List[Dict[str, Any]]:
    """Base x axes cartesian product plus the explicit include list."""
    names = sorted(space.axes)
    combos: List[Dict[str, Any]] = []
    for values in itertools.product(*(space.axes[name] for name in names)):
        params = dict(space.base)
        params.update(dict(zip(names, values)))
        combos.append(params)
    for entry in space.include:
        params = dict(space.base)
        params.update(entry)
        combos.append(params)
    return [p for p in combos if _passes_filter(space.filter, p)]


def expand(space: DesignSpace) -> List[Job]:
    """Expand a design space into its (deduplicated, sorted) job list.

    Point names are resolved through the experiment registry
    (:data:`repro.grid.runners.EXPERIMENTS`): ``points: "all"`` asks the
    experiment for its point list under each parameter set, an explicit
    list is validated against it. The result is sorted by fingerprint, so
    any two plans of equivalent specs agree on the job sequence.
    """
    from repro.grid.runners import point_names_for

    jobs: Dict[str, Job] = {}
    for params in _param_sets(space):
        available = point_names_for(space.experiment, params)
        if isinstance(space.points, str):  # "all" (validated in __post_init__)
            selected = available
        else:
            unknown = sorted(set(space.points) - set(available))
            if unknown:
                raise SpaceError(
                    f"unknown points {unknown} for experiment "
                    f"{space.experiment!r}; available: {available}"
                )
            selected = [name for name in available if name in set(space.points)]
        frozen = tuple(sorted(jsonify(params).items()))
        for point in selected:
            job = Job(experiment=space.experiment, params=frozen, point=point)
            jobs[job.fingerprint] = job
    return [jobs[fp] for fp in sorted(jobs)]


#: Signatures for the deep-lint passes (see ``docs/static_analysis.md``).
REPRO_SIGNATURES = {
    "job_fingerprint": {
        "experiment": "any", "params": "any", "point": "any", "return": "any",
    },
    "DesignSpace": {
        "experiment": "any", "base": "any", "axes": "any",
        "include": "any", "filter": "any", "points": "any", "name": "any",
    },
    "expand": {"space": "DesignSpace | any", "return": "any"},
    "load_space": {"path": "any", "return": "DesignSpace | any"},
    # Exactness discipline (REP3xx): planning is replayed on every host
    # that ever resubmits or verifies a grid — expansion and fingerprints
    # must not depend on set/dict order, wall clock or float tie-breaks.
    "@deterministic": [
        "job_fingerprint",
        "expand",
        "Job.fingerprint",
        "Job.spec",
    ],
}
