"""Distributed sweep grid: design spaces, a file-backed job queue, workers
and a queryable, provenance-carrying results database.

The paper's headline results are point sweeps over geometry x data
statistics x coder x assignment method. :mod:`repro.grid` turns those
sweeps into *grids*: a declarative :class:`~repro.grid.space.DesignSpace`
expands deterministically into jobs keyed by a content-addressed
fingerprint, arbitrarily many workers claim and run them through a
file-backed :class:`~repro.grid.queue.JobQueue`, and finished points land
in a SQLite :class:`~repro.grid.store.ResultStore` with insert-or-verify
semantics — a re-run of an existing fingerprint must reproduce the stored
values bit for bit or the store flags a determinism violation.

See ``docs/grid.md`` for the architecture and a CLI walkthrough.
"""

from repro.grid.query import QueryError, figure_rows, percentiles, pivot, select
from repro.grid.queue import JobQueue, JobState, QueueError, QueuedJob
from repro.grid.runners import EXPERIMENTS, UnknownPointError, execute_job
from repro.grid.space import (
    DesignSpace, Job, SpaceError, expand, job_fingerprint, load_space,
)
from repro.grid.store import DeterminismViolation, ResultRecord, ResultStore


def __getattr__(name: str):
    # Lazy so `python -m repro.grid.worker` does not import the worker
    # module twice (runpy warns when the -m target is already in
    # sys.modules from the package import).
    if name == "GridWorker":
        from repro.grid.worker import GridWorker

        return GridWorker
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DesignSpace",
    "DeterminismViolation",
    "EXPERIMENTS",
    "GridWorker",
    "Job",
    "JobQueue",
    "JobState",
    "QueryError",
    "QueueError",
    "QueuedJob",
    "ResultRecord",
    "ResultStore",
    "SpaceError",
    "UnknownPointError",
    "execute_job",
    "expand",
    "figure_rows",
    "job_fingerprint",
    "load_space",
    "percentiles",
    "pivot",
    "select",
]
