"""Fault injection: prove the fault-tolerant layer actually tolerates faults.

The runtime layer (checkpoints, chain supervision, the self-healing
extraction cache) is only trustworthy if its failure paths are exercised
routinely, so the library carries its own chaos harness. Production code
calls :func:`fault_point` at the places where real faults strike; the
call is a no-op unless a *fault plan* is active, in which case the plan
decides whether this particular firing crashes, sleeps or interrupts.

Activation
----------

* ``REPRO_FAULTS="<spec>"`` in the environment (how CI's chaos job runs
  the whole test suite under fault pressure), or
* ``with inject_faults("<spec>"):`` around a block (how individual tests
  target one fault at one point). The context manager takes precedence
  over the environment while active.

Spec mini-language
------------------

A spec is a ``;``-separated list of fault entries, each
``point(arg, ...)``::

    chain_crash(0,2)        chains 0 and 2 raise InjectedFault at start,
                            on every attempt (retries exhausted -> the
                            supervisor degrades gracefully)
    chain_crash(1,once)     chain 1 crashes on its first attempt only
                            (the retry must reproduce the clean result)
    cache_corrupt(2)        truncate the next 2 extraction-cache files
                            right after they are written
    slow_solve(0.05)        sleep 50 ms at each field solve
    interrupt_at(3)         raise KeyboardInterrupt at the 3rd firing of
                            the interrupt_at point (annealing temperature
                            levels / sweep point boundaries), once
    worker_crash(1)         fleet worker 1 dies (hard process exit) at its
                            next data-plane request, every incarnation
    worker_crash(1,once)    ... only in the worker's first incarnation
                            (generation 0), so the restarted worker
                            serves cleanly — the failover exactness test
    worker_crash(0,at=40)   ... at worker 0's 40th data request, placing
                            the kill mid-stream deterministically
                            (generation 0 only — restarted workers have
                            fresh counters and must not re-crash)
    worker_hang(1.5)        sleep 1.5 s on the worker's data plane (the
                            event loop stalls, heartbeats go unanswered,
                            the front declares the worker dead)
    snapshot_corrupt(2)     truncate the next 2 fleet snapshot checkpoint
                            files right after they are written (restore
                            must fall back, never resume from junk)

Unknown points or malformed entries raise :class:`ValueError` immediately
at parse time — a typo in a chaos spec must not silently disable the
fault it meant to inject.

The worker points are *per-process*: a fleet worker inherits
``REPRO_FAULTS`` through its environment and fires them from its own
plan, while ``snapshot_corrupt`` fires in the front process where the
checkpoints are written. ``worker_crash(i,once)`` is therefore gated on
the worker's *generation* (passed down by the front at spawn), not on a
counter in the plan — a restarted worker is a fresh process with a fresh
plan, and only generation 0 may crash.
"""

from __future__ import annotations

import logging
import os
import re
import threading
import time
from typing import Any, Dict, Optional

logger = logging.getLogger("repro.runtime")

#: Environment variable holding the process-wide fault spec.
FAULTS_ENV_VAR = "REPRO_FAULTS"

#: The injection points production code declares. Keeping the set closed
#: makes a misspelled spec an error instead of a silent no-op.
KNOWN_POINTS = (
    "chain_crash", "cache_corrupt", "slow_solve", "interrupt_at",
    "worker_crash", "worker_hang", "snapshot_corrupt",
)

#: Upper bound on one injected sleep, so a fat-fingered spec cannot hang CI.
_MAX_SLEEP_S = 5.0

_ENTRY_RE = re.compile(r"^\s*(?P<name>[a-z_]+)\s*(?:\((?P<args>[^)]*)\))?\s*$")


class InjectedFault(RuntimeError):
    """Raised by a firing ``chain_crash`` fault point."""


class FaultPlan:
    """A parsed fault spec plus its (thread-safe) firing counters."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._crash_chains: Dict[int, bool] = {}  # index -> crash every time
        self._crash_once = False
        self._corrupt_remaining = 0
        self._slow_s = 0.0
        self._interrupt_at = 0
        self._interrupt_count = 0
        self._interrupt_done = False
        self._worker_crash: Dict[int, bool] = {}  # index -> every generation
        self._worker_crash_at = 0
        self._worker_fire_count = 0
        self._hang_s = 0.0
        self._snapshot_corrupt_remaining = 0
        self._points: Dict[str, bool] = {}
        for entry in spec.split(";"):
            if entry.strip():
                self._parse_entry(entry)

    def _parse_entry(self, entry: str) -> None:
        match = _ENTRY_RE.match(entry)
        if match is None:
            raise ValueError(f"malformed fault entry {entry.strip()!r}")
        name = match.group("name")
        if name not in KNOWN_POINTS:
            raise ValueError(
                f"unknown fault point {name!r}; known: {KNOWN_POINTS}"
            )
        raw_args = [
            token.strip()
            for token in (match.group("args") or "").split(",")
            if token.strip()
        ]
        if name == "chain_crash":
            once = "once" in raw_args
            indices = [int(token) for token in raw_args if token != "once"]
            if not indices:
                raise ValueError("chain_crash needs at least one chain index")
            self._crash_once = once
            for index in indices:
                self._crash_chains[index] = not once
        elif name == "cache_corrupt":
            self._corrupt_remaining = int(raw_args[0]) if raw_args else 1
        elif name == "slow_solve":
            if not raw_args:
                raise ValueError("slow_solve needs a duration in seconds")
            self._slow_s = float(raw_args[0])
        elif name == "interrupt_at":
            if not raw_args:
                raise ValueError("interrupt_at needs a firing count")
            self._interrupt_at = int(raw_args[0])
            if self._interrupt_at < 1:
                raise ValueError(
                    f"interrupt_at count must be >= 1, got {self._interrupt_at}"
                )
        elif name == "worker_crash":
            once = "once" in raw_args
            indices = []
            for token in raw_args:
                if token == "once":
                    continue
                if token.startswith("at="):
                    self._worker_crash_at = int(token[3:])
                    if self._worker_crash_at < 1:
                        raise ValueError(
                            f"worker_crash at= must be >= 1, "
                            f"got {self._worker_crash_at}"
                        )
                    continue
                indices.append(int(token))
            if not indices:
                raise ValueError(
                    "worker_crash needs at least one worker index"
                )
            for index in indices:
                self._worker_crash[index] = not once
        elif name == "worker_hang":
            if not raw_args:
                raise ValueError("worker_hang needs a duration in seconds")
            self._hang_s = float(raw_args[0])
            if self._hang_s < 0.0:
                raise ValueError(
                    f"worker_hang duration must be >= 0, got {self._hang_s}"
                )
        elif name == "snapshot_corrupt":
            self._snapshot_corrupt_remaining = (
                int(raw_args[0]) if raw_args else 1
            )
        self._points[name] = True

    def active(self, name: str) -> bool:
        return name in self._points

    # -- firing ----------------------------------------------------------------

    def fire(self, name: str, **context: Any) -> None:
        """Apply the configured fault at one firing of ``name``."""
        if name == "chain_crash":
            chain = int(context.get("chain", -1))
            attempt = int(context.get("attempt", 0))
            with self._lock:
                crash = self._crash_chains.get(chain)
                should = crash is not None and (crash or attempt == 0)
            if should:
                logger.warning(
                    "fault injection: crashing chain %d (attempt %d)",
                    chain, attempt,
                )
                raise InjectedFault(
                    f"injected chain_crash (chain={chain}, attempt={attempt})"
                )
        elif name == "cache_corrupt":
            path = context.get("path")
            with self._lock:
                if self._corrupt_remaining <= 0 or path is None:
                    return
                self._corrupt_remaining -= 1
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
            logger.warning("fault injection: truncated cache entry %s", path)
        elif name == "slow_solve":
            time.sleep(min(self._slow_s, _MAX_SLEEP_S))
        elif name == "interrupt_at":
            with self._lock:
                if self._interrupt_done or self._interrupt_at < 1:
                    return
                self._interrupt_count += 1
                if self._interrupt_count < self._interrupt_at:
                    return
                # Fire exactly once, so a resumed run (same process, same
                # plan) is not re-interrupted at the same boundary.
                self._interrupt_done = True
            logger.warning(
                "fault injection: interrupting at boundary %d (%s)",
                self._interrupt_at,
                ", ".join(f"{k}={v}" for k, v in sorted(context.items())),
            )
            raise KeyboardInterrupt(
                f"injected interrupt at boundary {self._interrupt_at}"
            )
        elif name == "worker_crash":
            worker = int(context.get("worker", -1))
            generation = int(context.get("generation", 0))
            with self._lock:
                crash = self._worker_crash.get(worker)
                should = crash is not None and (crash or generation == 0)
                if should and self._worker_crash_at:
                    # at=N: let N-1 requests through, die on the Nth —
                    # in the first incarnation only. A restarted worker
                    # is a fresh process with a fresh counter; without
                    # the generation gate it would re-crash at its own
                    # Nth request, forever.
                    should = generation == 0
                    if should:
                        self._worker_fire_count += 1
                        should = (
                            self._worker_fire_count >= self._worker_crash_at
                        )
            if should:
                logger.warning(
                    "fault injection: crashing worker %d (generation %d)",
                    worker, generation,
                )
                raise InjectedFault(
                    f"injected worker_crash "
                    f"(worker={worker}, generation={generation})"
                )
        elif name == "worker_hang":
            time.sleep(min(self._hang_s, _MAX_SLEEP_S))
        elif name == "snapshot_corrupt":
            path = context.get("path")
            with self._lock:
                if self._snapshot_corrupt_remaining <= 0 or path is None:
                    return
                self._snapshot_corrupt_remaining -= 1
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
            logger.warning(
                "fault injection: truncated snapshot checkpoint %s", path
            )


# A context-manager plan overrides the environment plan; both are process
# wide (worker threads must see the same plan as the chain that armed it).
_local_plan: Optional[FaultPlan] = None
_env_plan: Optional[FaultPlan] = None
_plan_lock = threading.Lock()


def active_plan() -> Optional[FaultPlan]:
    """The fault plan in effect, if any."""
    plan = _local_plan  # repro: noqa[REP202] lock-free fast path: a stale
    # read only delays a plan swap by one fault_point, never tears it
    # (rebinding a reference is atomic under the GIL).
    if plan is not None:
        return plan
    spec = os.environ.get(FAULTS_ENV_VAR, "")
    if not spec.strip():
        return None
    env_plan = _env_plan  # repro: noqa[REP202] double-checked fast path;
    # _install_env_plan re-checks under _plan_lock before installing.
    if env_plan is not None and env_plan.spec == spec:
        return env_plan
    return _install_env_plan(spec)


def _install_env_plan(spec: str) -> FaultPlan:
    """Install (or reuse) the environment-derived plan, exactly once."""
    global _env_plan
    with _plan_lock:
        if _env_plan is None or _env_plan.spec != spec:
            _env_plan = FaultPlan(spec)
        return _env_plan


def fault_point(name: str, **context: Any) -> None:
    """Declare an injection point; no-op unless a plan targets ``name``.

    ``context`` gives the plan what it needs to decide (chain index,
    attempt number, cache path, ...).
    """
    plan = active_plan()
    if plan is not None and plan.active(name):
        plan.fire(name, **context)


class inject_faults:
    """Context manager activating a fault spec for the enclosed block.

    Re-entrant in the stack sense (the previous plan is restored on exit);
    the active plan is process-global so faults also fire in worker
    threads spawned inside the block.
    """

    def __init__(self, spec: str) -> None:
        self.plan = FaultPlan(spec)
        self._previous: Optional[FaultPlan] = None

    def __enter__(self) -> FaultPlan:
        global _local_plan
        with _plan_lock:
            self._previous = _local_plan
            _local_plan = self.plan
        return self.plan

    def __exit__(self, *exc_info: Any) -> None:
        global _local_plan
        with _plan_lock:
            _local_plan = self._previous


#: Shape/unit signatures for the deep-lint flow pass.
REPRO_SIGNATURES = {
    "FaultPlan": {"spec": "any"},
    "fault_point": {"name": "any"},
    "active_plan": {"return": "FaultPlan | any"},
    # Concurrency discipline: the active plan is process-global and read
    # from every worker thread; fault_point may sleep (slow_solve), so it
    # must never be reached while the caller holds a lock.
    "@guards": [
        "_local_plan guarded_by _plan_lock",
        "_env_plan guarded_by _plan_lock",
    ],
    "@blocking": ["fault_point"],
}
