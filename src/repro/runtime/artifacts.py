"""Checkpoint artifacts: versioned, checksummed, atomically written.

Every long computation in the library (the Eq. 10 annealing chains, the
figure sweeps) periodically emits a *checkpoint* through this module so a
crashed worker, an expired deadline or a Ctrl-C loses at most one
checkpoint interval of work. The design constraints, in order:

1. **Never poison a run.** A checkpoint is only ever consumed after its
   envelope (format marker, version, kind), its fingerprint (the run
   parameters that produced it) and its payload checksum all verify. A
   truncated, corrupted or stale file is logged, evicted and ignored —
   the computation restarts from scratch rather than resuming from junk.
2. **Never tear a file.** Writes go to a sibling temp file, are flushed
   and fsynced, then moved into place with :func:`os.replace` — readers
   see either the old complete checkpoint or the new complete one.
3. **Bit-identical resume.** Payloads are JSON: Python round-trips every
   finite float exactly through ``json`` (shortest-repr encoding), and the
   ``bit_generator.state`` dicts of NumPy generators are plain integers,
   so a resumed chain replays the exact draw sequence of the original.

The payload schema is owned by the caller; this module owns the envelope::

    {
      "format": "repro-checkpoint",
      "version": 1,
      "kind": "<producer, e.g. simulated-annealing>",
      "fingerprint": {...run parameters...},
      "step": <int progress marker>,
      "sha256": "<hex digest of the canonical payload JSON>",
      "payload": {...}
    }
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

logger = logging.getLogger("repro.runtime")

#: Envelope marker and schema version of the checkpoint files.
CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: File suffix of every checkpoint written by :class:`CheckpointStore`.
CHECKPOINT_SUFFIX = ".ckpt.json"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or decoded."""


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (temp file + rename).

    The parent directory is created if needed. A crash mid-write leaves
    either the previous file or a stray ``*.tmp`` sibling — never a
    half-written target.

    The temp name carries the writer's pid and thread id: concurrent
    writers of one target (two grid workers racing the same at-least-once
    job, two processes refreshing one queue sidecar) must not replace
    each other's temp file mid-flight — with private temp files, the
    final rename serializes and last-writer-wins on identical content.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}-{threading.get_ident()}.tmp"
    )
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def jsonify(value: Any) -> Any:
    """Recursively convert a payload to plain JSON-serializable types.

    NumPy scalars become Python scalars, arrays become (nested) lists,
    tuples become lists, paths become strings. Floats are left alone —
    ``json`` round-trips them exactly.
    """
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [jsonify(item) for item in value.tolist()]
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonify(item) for item in items]
    raise CheckpointError(
        f"cannot serialize {type(value).__name__} into a checkpoint payload"
    )


def canonical_payload_bytes(payload: Any) -> bytes:
    """The canonical byte serialization the payload checksum is taken over."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=True
    ).encode("utf-8")


def payload_digest(payload: Any) -> str:
    """Hex SHA-256 of the canonical payload serialization."""
    return hashlib.sha256(canonical_payload_bytes(payload)).hexdigest()


# -- RNG state round-trip ------------------------------------------------------


def encode_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """JSON-serializable snapshot of a generator's bit-generator state.

    For the PCG64 family (everything ``np.random.default_rng`` produces)
    the state dict is plain integers; other bit generators are converted
    element-wise and restored best-effort.
    """
    return jsonify(rng.bit_generator.state)


def restore_rng_state(
    rng: np.random.Generator, state: Mapping[str, Any]
) -> None:
    """Restore a snapshot from :func:`encode_rng_state` into ``rng``.

    Raises :class:`CheckpointError` when the snapshot does not fit the
    generator (different bit-generator type, malformed state).
    """
    try:
        rng.bit_generator.state = dict(state)
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"cannot restore RNG state: {exc}") from exc


def generator_from_state(state: Mapping[str, Any]) -> np.random.Generator:
    """Build a fresh generator positioned at an encoded state."""
    name = state.get("bit_generator") if isinstance(state, Mapping) else None
    bit_generator_cls = getattr(np.random, str(name), None)
    if bit_generator_cls is None:
        raise CheckpointError(f"unknown bit generator {name!r} in checkpoint")
    rng = np.random.Generator(bit_generator_cls())
    restore_rng_state(rng, state)
    return rng


# -- the store -----------------------------------------------------------------


@dataclass(frozen=True)
class Checkpoint:
    """One successfully verified checkpoint."""

    step: int
    payload: Any


class CheckpointStore:
    """Named checkpoints of one computation inside one directory.

    Parameters
    ----------
    directory:
        Where the ``<name>.ckpt.json`` files live (created on first save).
    kind:
        Producer tag, e.g. ``"simulated-annealing"``; a file of a
        different kind is never loaded.
    fingerprint:
        The run parameters that make a checkpoint resumable. A checkpoint
        whose fingerprint differs from the store's is *stale* (the run
        configuration changed) and is ignored with a warning instead of
        being resumed into a now-meaningless state.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        kind: str,
        fingerprint: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.kind = kind
        self.fingerprint = jsonify(dict(fingerprint or {}))

    def path_for(self, name: str) -> Path:
        return self.directory / f"{name}{CHECKPOINT_SUFFIX}"

    # -- writing ---------------------------------------------------------------

    def save(self, name: str, payload: Any, step: int = 0) -> Path:
        """Atomically write checkpoint ``name``; returns its path."""
        payload = jsonify(payload)
        document = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "step": int(step),
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        path = self.path_for(name)
        atomic_write_bytes(
            path, json.dumps(document, indent=1).encode("utf-8")
        )
        return path

    # -- reading ---------------------------------------------------------------

    def _evict(self, path: Path, reason: str) -> None:
        logger.warning("evicting unusable checkpoint %s: %s", path, reason)
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing eviction is fine
            pass

    def load(self, name: str) -> Optional[Checkpoint]:
        """The verified checkpoint ``name``, or None.

        Corrupted files (unparseable, checksum mismatch) are evicted so
        the slot is clean for the next save; stale files (other kind,
        version or fingerprint) are left alone but not used.
        """
        path = self.path_for(name)
        if not path.exists():
            return None
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            self._evict(path, f"unreadable ({exc})")
            return None
        if not isinstance(document, dict) or (
            document.get("format") != CHECKPOINT_FORMAT
        ):
            self._evict(path, "not a repro checkpoint")
            return None
        if document.get("version") != CHECKPOINT_VERSION:
            logger.warning(
                "ignoring checkpoint %s: version %r != %d",
                path, document.get("version"), CHECKPOINT_VERSION,
            )
            return None
        if document.get("kind") != self.kind:
            logger.warning(
                "ignoring checkpoint %s: kind %r != %r",
                path, document.get("kind"), self.kind,
            )
            return None
        if document.get("fingerprint") != self.fingerprint:
            logger.warning(
                "ignoring stale checkpoint %s: run parameters changed", path
            )
            return None
        payload = document.get("payload")
        if document.get("sha256") != payload_digest(payload):
            self._evict(path, "payload checksum mismatch")
            return None
        return Checkpoint(step=int(document.get("step", 0)), payload=payload)

    def load_all(self) -> Dict[str, Checkpoint]:
        """All verified checkpoints in the directory, keyed by name."""
        result: Dict[str, Checkpoint] = {}
        if not self.directory.is_dir():
            return result
        for path in sorted(self.directory.glob(f"*{CHECKPOINT_SUFFIX}")):
            name = path.name[: -len(CHECKPOINT_SUFFIX)]
            checkpoint = self.load(name)
            if checkpoint is not None:
                result[name] = checkpoint
        return result

    def discard(self, name: str) -> None:
        """Remove checkpoint ``name`` if present."""
        try:
            self.path_for(name).unlink()
        except OSError:
            pass


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md`` and ``docs/robustness.md``).
REPRO_SIGNATURES = {
    "CheckpointStore": {
        "directory": "any",
        "kind": "any",
        "fingerprint": "any",
    },
    "CheckpointStore.save": {
        "name": "any",
        "payload": "any",
        "step": "scalar dimensionless",
    },
    "CheckpointStore.load": {
        "name": "any",
        "return": "Checkpoint | any",
    },
    "Checkpoint.step": "scalar dimensionless",
    "payload_digest": {"payload": "any", "return": "any"},
    "encode_rng_state": {"rng": "any", "return": "any"},
    # Exactness discipline (REP3xx): checkpoint payloads and the run
    # fingerprint are replayed byte-for-byte on resume — a wall-clock
    # stamp or set-ordered field would defeat bit-identical restarts.
    "@deterministic": [
        "CheckpointStore.save payload",
        "CheckpointStore fingerprint",
        "encode_rng_state",
        "jsonify",
        "payload_digest",
    ],
}
