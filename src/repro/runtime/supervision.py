"""Supervised execution of parallel chains: retries, deadlines, interrupts.

:class:`ChainSupervisor` owns the fan-out of ``n`` independent chains
(annealing restarts today; shards and remote workers tomorrow) and the
three failure modes every long computation has:

* a **crashed chain** is retried a bounded number of times, each attempt
  with a *freshly rebuilt* generator from the chain's own spawned seed
  sequence — so a chain that crashed and was retried produces bit for bit
  the result it would have produced had it never crashed, and a run with
  ``k`` unlucky chains is indistinguishable from a lucky one;
* an exhausted chain (all retries failed) is **dropped with a warning**
  and the run degrades to the surviving chains instead of dying;
* a **deadline** or **Ctrl-C** flips the shared :class:`RunControl`, which
  chains poll at their checkpoint boundaries to return best-so-far.

The supervisor knows nothing about annealing: chains are arbitrary
callables ``(index, rng, control, attempt) -> result``.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

import numpy as np

logger = logging.getLogger("repro.runtime")

#: What the supervisor runs: ``(chain_index, rng, control, attempt)``.
ChainFunction = Callable[
    [int, np.random.Generator, "RunControl", int], Any
]


class Deadline:
    """A wall-clock budget measured from construction time."""

    def __init__(self, budget_s: float) -> None:
        if budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = float(budget_s)
        self._started = time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._started

    def remaining(self) -> float:
        return self.budget_s - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0


class RunControl:
    """Shared cancellation state of one supervised run.

    Chains poll :meth:`should_stop` at cheap boundaries (temperature
    levels, sweep points) and return their best-so-far when it flips.
    ``interrupted`` records *why*: a Ctrl-C/SIGINT-style interrupt (so
    callers can distinguish it from a deadline expiry).
    """

    def __init__(self, deadline: Optional[Deadline] = None) -> None:
        self.deadline = deadline
        self._stop = threading.Event()
        self._interrupted = threading.Event()

    @property
    def interrupted(self) -> bool:
        return self._interrupted.is_set()

    def request_stop(self, interrupted: bool = False) -> None:
        if interrupted:
            self._interrupted.set()
        self._stop.set()

    def should_stop(self) -> bool:
        if self._stop.is_set():
            return True
        if self.deadline is not None and self.deadline.expired():
            self._stop.set()
            return True
        return False


@dataclass
class ChainOutcome:
    """What happened to one chain across all its attempts."""

    index: int
    result: Any = None
    attempts: int = 0
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.result is None


@dataclass
class SupervisionReport:
    """Aggregate outcome of a supervised run."""

    outcomes: List[ChainOutcome] = field(default_factory=list)
    interrupted: bool = False

    def results(self) -> List[Any]:
        """Successful chain results, in chain-index order."""
        return [
            outcome.result
            for outcome in sorted(self.outcomes, key=lambda o: o.index)
            if not outcome.failed
        ]

    @property
    def n_failed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.failed)

    @property
    def n_retried(self) -> int:
        return sum(max(0, outcome.attempts - 1) for outcome in self.outcomes)


def spawn_seed_sequences(
    rng: np.random.Generator, n: int
) -> List[np.random.SeedSequence]:
    """The next ``n`` child seed sequences of ``rng``'s bit generator.

    Identical to what ``rng.spawn(n)`` consumes, so supervised multi-chain
    runs draw the same per-chain streams as the plain ``Generator.spawn``
    path — but keeping the *sequences* lets a retry rebuild chain ``i``'s
    generator from scratch instead of resuming a half-consumed one.
    """
    bit_generator = rng.bit_generator
    seed_seq = getattr(bit_generator, "seed_seq", None)
    if not isinstance(seed_seq, np.random.SeedSequence):
        raise ValueError(
            "supervised chains need a Generator carrying a SeedSequence "
            "(anything np.random.default_rng produces); got a bare "
            f"{type(bit_generator).__name__} state"
        )
    return list(seed_seq.spawn(n))


class ChainSupervisor:
    """Run ``n_chains`` chain functions with retries under one control.

    Parameters
    ----------
    rng:
        Parent generator; each chain attempt gets a fresh generator built
        from the chain's spawned :class:`~numpy.random.SeedSequence`.
    n_chains / n_jobs:
        Fan-out and thread-pool width (``n_jobs=1`` runs inline).
    max_retries:
        Extra attempts per chain after its first failure.
    control:
        Shared :class:`RunControl`; a fresh one is made if not given.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_chains: int,
        n_jobs: int = 1,
        max_retries: int = 2,
        control: Optional[RunControl] = None,
        name: str = "chain",
    ) -> None:
        if n_chains < 1:
            raise ValueError(f"n_chains must be >= 1, got {n_chains}")
        if n_jobs < 1:
            raise ValueError(f"n_jobs must be >= 1, got {n_jobs}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.n_chains = n_chains
        self.n_jobs = n_jobs
        self.max_retries = max_retries
        self.control = control if control is not None else RunControl()
        self.name = name
        self._seed_sequences = spawn_seed_sequences(rng, n_chains)
        self._bit_generator_cls = type(rng.bit_generator)

    def generator_for(self, index: int) -> np.random.Generator:
        """A fresh, attempt-independent generator for chain ``index``."""
        return np.random.Generator(
            self._bit_generator_cls(self._seed_sequences[index])
        )

    # -- execution -------------------------------------------------------------

    def _attempt(
        self, chain_fn: ChainFunction, outcome: ChainOutcome
    ) -> Any:
        attempt = outcome.attempts
        outcome.attempts += 1
        return chain_fn(
            outcome.index, self.generator_for(outcome.index),
            self.control, attempt,
        )

    def _note_failure(
        self, outcome: ChainOutcome, error: BaseException
    ) -> bool:
        """Record a failed attempt; True when the chain may retry."""
        outcome.error = f"{type(error).__name__}: {error}"
        retry = (
            outcome.attempts <= self.max_retries
            and not self.control.should_stop()
        )
        logger.warning(
            "%s %d failed (attempt %d/%d): %s%s",
            self.name, outcome.index, outcome.attempts,
            self.max_retries + 1, outcome.error,
            " — retrying" if retry else " — giving up",
        )
        return retry

    def run(self, chain_fn: ChainFunction) -> SupervisionReport:
        """Run every chain to completion, retry budget or stop signal."""
        outcomes = [ChainOutcome(index=i) for i in range(self.n_chains)]
        report = SupervisionReport(outcomes=outcomes)
        if self.n_jobs == 1:
            self._run_serial(chain_fn, outcomes, report)
        else:
            self._run_parallel(chain_fn, outcomes, report)
        report.interrupted = report.interrupted or self.control.interrupted
        if report.n_failed:
            logger.warning(
                "degraded run: %d of %d %ss produced no result",
                report.n_failed, self.n_chains, self.name,
            )
        return report

    def _run_serial(
        self,
        chain_fn: ChainFunction,
        outcomes: List[ChainOutcome],
        report: SupervisionReport,
    ) -> None:
        for outcome in outcomes:
            while True:
                try:
                    outcome.result = self._attempt(chain_fn, outcome)
                    outcome.error = None
                    break
                except KeyboardInterrupt:
                    # A chain that re-raises the interrupt instead of
                    # returning best-so-far: stop the whole run cleanly.
                    self.control.request_stop(interrupted=True)
                    report.interrupted = True
                    return
                except Exception as error:
                    if not self._note_failure(outcome, error):
                        break
            # After a stop request the remaining chains still run once
            # each: they observe the flag at their first boundary and
            # return their cheap best-so-far, keeping the result
            # well-formed.

    def _run_parallel(
        self,
        chain_fn: ChainFunction,
        outcomes: List[ChainOutcome],
        report: SupervisionReport,
    ) -> None:
        with ThreadPoolExecutor(
            max_workers=min(self.n_jobs, self.n_chains)
        ) as executor:
            pending: Dict[Any, ChainOutcome] = {
                executor.submit(self._attempt, chain_fn, outcome): outcome
                for outcome in outcomes
            }
            try:
                while pending:
                    done, _ = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        outcome = pending.pop(future)
                        try:
                            outcome.result = future.result()
                            outcome.error = None
                        except KeyboardInterrupt:
                            self.control.request_stop(interrupted=True)
                            report.interrupted = True
                        except Exception as error:
                            if self._note_failure(outcome, error):
                                pending[
                                    executor.submit(
                                        self._attempt, chain_fn, outcome
                                    )
                                ] = outcome
            except KeyboardInterrupt:
                # Ctrl-C in the supervising thread: tell the chains to
                # wind down and collect what they return.
                self.control.request_stop(interrupted=True)
                report.interrupted = True
                for future, outcome in list(pending.items()):
                    try:
                        outcome.result = future.result()
                        outcome.error = None
                    except KeyboardInterrupt:
                        pass
                    except Exception as error:
                        self._note_failure(outcome, error)


#: Shape/unit signatures for the deep-lint flow pass.
REPRO_SIGNATURES = {
    "Deadline": {"budget_s": "scalar second"},
    "Deadline.remaining": {"return": "scalar second"},
    "Deadline.elapsed": {"return": "scalar second"},
    "Deadline.budget_s": "scalar second",
    "ChainSupervisor": {
        "rng": "any",
        "n_chains": "scalar dimensionless",
        "n_jobs": "scalar dimensionless",
        "max_retries": "scalar dimensionless",
    },
    "ChainSupervisor.run": {"chain_fn": "any", "return": "SupervisionReport"},
    # Concurrency discipline: attempts run on the executor; the stop and
    # interrupt flags are threading.Events, which synchronize themselves.
    "@threads": ["ChainSupervisor._attempt"],
}
