"""Fault-tolerant execution layer: checkpoints, supervision, fault injection.

Every long-running computation in the library goes through this package:

* :mod:`repro.runtime.artifacts` — versioned, checksummed, atomically
  written checkpoints (and RNG-state round-trips) so runs are resumable;
* :mod:`repro.runtime.supervision` — deadlines, bounded chain retries and
  clean SIGINT semantics around parallel work;
* :mod:`repro.runtime.faults` — the fault-injection harness that the
  ``tests/runtime`` chaos suite (and CI's chaos job) uses to prove the
  recovery invariants hold.

See ``docs/robustness.md`` for the checkpoint format, the fault-spec
mini-language and the determinism-under-retry argument.
"""

from repro.runtime.artifacts import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_SUFFIX,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
    atomic_write_bytes,
    canonical_payload_bytes,
    encode_rng_state,
    generator_from_state,
    jsonify,
    payload_digest,
    restore_rng_state,
)
from repro.runtime.faults import (
    FAULTS_ENV_VAR,
    FaultPlan,
    InjectedFault,
    active_plan,
    fault_point,
    inject_faults,
)
from repro.runtime.supervision import (
    ChainOutcome,
    ChainSupervisor,
    Deadline,
    RunControl,
    SupervisionReport,
    spawn_seed_sequences,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_SUFFIX",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "atomic_write_bytes",
    "canonical_payload_bytes",
    "encode_rng_state",
    "generator_from_state",
    "jsonify",
    "payload_digest",
    "restore_rng_state",
    "FAULTS_ENV_VAR",
    "FaultPlan",
    "InjectedFault",
    "active_plan",
    "fault_point",
    "inject_faults",
    "ChainOutcome",
    "ChainSupervisor",
    "Deadline",
    "RunControl",
    "SupervisionReport",
    "spawn_seed_sequences",
]
