"""Modified nodal analysis (MNA) assembly.

Builds the descriptor system

``E dx/dt + A x = s(t)``

for a :class:`~repro.circuit.netlist.Netlist`. The unknown vector ``x``
stacks the non-ground node voltages, then one branch current per voltage
source, then one branch current per inductor. ``A`` carries the resistive
stamps and the source/inductor incidence rows, ``E`` the capacitor and
inductor dynamics, and ``s(t)`` the source excitations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

import numpy as np

from repro.analysis.contracts import check_enabled, check_mna_system
from repro.circuit.netlist import (
    GROUND,
    Capacitor,
    CurrentSource,
    Inductor,
    Netlist,
    Node,
    Resistor,
    VoltageSource,
    evaluate_waveform,
)


@dataclass
class MNASystem:
    """Assembled descriptor system for one netlist."""

    a_matrix: np.ndarray
    e_matrix: np.ndarray
    source: Callable[[float], np.ndarray]
    node_index: Dict[Node, int]
    vsource_index: Dict[int, int]  # netlist component position -> x index
    n_nodes: int

    @property
    def size(self) -> int:
        return self.a_matrix.shape[0]

    def voltage_index(self, node: Node) -> int:
        """Index of a node voltage in the unknown vector."""
        if node == GROUND:
            raise ValueError("ground voltage is not an unknown (it is 0)")
        return self.node_index[node]


def assemble(netlist: Netlist) -> MNASystem:
    """Build the MNA descriptor system of a validated netlist."""
    netlist.validate()
    nodes = netlist.nodes()
    node_index = {node: k for k, node in enumerate(nodes)}
    n_nodes = len(nodes)

    vsources: List[tuple] = []  # (component position, VoltageSource)
    inductors: List[tuple] = []
    for pos, comp in enumerate(netlist.components):
        if isinstance(comp, VoltageSource):
            vsources.append((pos, comp))
        elif isinstance(comp, Inductor):
            inductors.append((pos, comp))
    n = n_nodes + len(vsources) + len(inductors)

    a = np.zeros((n, n))
    e = np.zeros((n, n))

    def idx(node: Node) -> int:
        return -1 if node == GROUND else node_index[node]

    def stamp_pair(matrix: np.ndarray, na: int, nb: int, value: float) -> None:
        # Stamping writes into A/E by design; the matrices are owned here.
        if na >= 0:
            matrix[na, na] += value  # repro: noqa[REP005] in-place stamp
        if nb >= 0:
            matrix[nb, nb] += value  # repro: noqa[REP005] in-place stamp
        if na >= 0 and nb >= 0:
            matrix[na, nb] -= value  # repro: noqa[REP005] in-place stamp
            matrix[nb, na] -= value  # repro: noqa[REP005] in-place stamp

    for comp in netlist.components:
        if isinstance(comp, Resistor):
            stamp_pair(a, idx(comp.node_a), idx(comp.node_b),
                       1.0 / comp.resistance)
        elif isinstance(comp, Capacitor):
            stamp_pair(e, idx(comp.node_a), idx(comp.node_b), comp.capacitance)

    vsource_index: Dict[int, int] = {}
    for k, (pos, src) in enumerate(vsources):
        row = n_nodes + k
        vsource_index[pos] = row
        plus, minus = idx(src.node_plus), idx(src.node_minus)
        if plus >= 0:
            a[plus, row] += 1.0
            a[row, plus] += 1.0
        if minus >= 0:
            a[minus, row] -= 1.0
            a[row, minus] -= 1.0

    for k, (pos, ind) in enumerate(inductors):
        row = n_nodes + len(vsources) + k
        plus, minus = idx(ind.node_a), idx(ind.node_b)
        if plus >= 0:
            a[plus, row] += 1.0
            a[row, plus] += 1.0
        if minus >= 0:
            a[minus, row] -= 1.0
            a[row, minus] -= 1.0
        e[row, row] -= ind.inductance

    current_sources = [
        c for c in netlist.components if isinstance(c, CurrentSource)
    ]

    def source(t: float) -> np.ndarray:
        s = np.zeros(n)
        for c in current_sources:
            value = evaluate_waveform(c.waveform, t)
            plus, minus = idx(c.node_plus), idx(c.node_minus)
            if plus >= 0:
                s[plus] += value
            if minus >= 0:
                s[minus] -= value
        for k, (pos, src) in enumerate(vsources):
            s[n_nodes + k] = evaluate_waveform(src.waveform, t)
        return s

    system = MNASystem(
        a_matrix=a,
        e_matrix=e,
        source=source,
        node_index=node_index,
        vsource_index=vsource_index,
        n_nodes=n_nodes,
    )
    check_enabled(check_mna_system, system)
    return system


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``M`` is the MNA system size (nodes plus
#: source/inductor branch currents), distinct from the ``N`` line count.
REPRO_SIGNATURES = {
    "assemble": {"netlist": "Netlist", "return": "MNASystem"},
    "MNASystem.a_matrix": "(M, M) any",
    "MNASystem.e_matrix": "(M, M) any",
    "MNASystem.size": "scalar dimensionless",
    "MNASystem.n_nodes": "scalar dimensionless",
}
