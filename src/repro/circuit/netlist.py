"""Linear circuit description (netlist) for the transient engine.

Nodes are arbitrary hashable names; ``0`` (the integer) is ground. Voltage
sources take either a constant value or a waveform callable ``v(t)``; the
same holds for current sources. Time-varying *resistors* are deliberately
not supported — the driver model represents switching CMOS stages as
waveform voltage sources behind a fixed on-resistance, which keeps the MNA
system matrix constant and lets the integrator factorize it once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Union

Node = Hashable
Waveform = Union[float, Callable[[float], float]]

GROUND: Node = 0


def evaluate_waveform(waveform: Waveform, t: float) -> float:
    """Value of a constant-or-callable waveform at time ``t``."""
    if callable(waveform):
        return float(waveform(t))
    return float(waveform)


@dataclass(frozen=True)
class Resistor:
    node_a: Node
    node_b: Node
    resistance: float

    def __post_init__(self) -> None:
        if self.resistance <= 0.0:
            raise ValueError(f"resistance must be positive, got {self.resistance}")


@dataclass(frozen=True)
class Capacitor:
    node_a: Node
    node_b: Node
    capacitance: float

    def __post_init__(self) -> None:
        if self.capacitance <= 0.0:
            raise ValueError(f"capacitance must be positive, got {self.capacitance}")


@dataclass(frozen=True)
class Inductor:
    node_a: Node
    node_b: Node
    inductance: float

    def __post_init__(self) -> None:
        if self.inductance <= 0.0:
            raise ValueError(f"inductance must be positive, got {self.inductance}")


@dataclass(frozen=True)
class VoltageSource:
    """Ideal voltage source from ``node_minus`` to ``node_plus``.

    ``name`` identifies the source in the result traces (e.g. for supply
    energy accounting).
    """

    node_plus: Node
    node_minus: Node
    waveform: Waveform
    name: str = ""


@dataclass(frozen=True)
class CurrentSource:
    """Current injected into ``node_plus`` and drawn from ``node_minus``."""

    node_plus: Node
    node_minus: Node
    waveform: Waveform
    name: str = ""


Component = Union[Resistor, Capacitor, Inductor, VoltageSource, CurrentSource]


@dataclass
class Netlist:
    """A flat collection of components plus node bookkeeping."""

    components: List[Component] = field(default_factory=list)

    def add(self, component: Component) -> Component:
        self.components.append(component)
        return component

    # -- convenience builders -------------------------------------------------

    def resistor(self, a: Node, b: Node, value: float) -> Resistor:
        return self.add(Resistor(a, b, value))

    def capacitor(self, a: Node, b: Node, value: float) -> Capacitor:
        return self.add(Capacitor(a, b, value))

    def inductor(self, a: Node, b: Node, value: float) -> Inductor:
        return self.add(Inductor(a, b, value))

    def voltage_source(
        self, plus: Node, minus: Node, waveform: Waveform, name: str = ""
    ) -> VoltageSource:
        return self.add(VoltageSource(plus, minus, waveform, name))

    def current_source(
        self, plus: Node, minus: Node, waveform: Waveform, name: str = ""
    ) -> CurrentSource:
        return self.add(CurrentSource(plus, minus, waveform, name))

    # -- inspection -------------------------------------------------------------

    def nodes(self) -> List[Node]:
        """All non-ground nodes, in first-appearance order."""
        seen: Dict[Node, None] = {}
        for comp in self.components:
            if isinstance(comp, (VoltageSource, CurrentSource)):
                pair = (comp.node_plus, comp.node_minus)
            else:
                pair = (comp.node_a, comp.node_b)
            for node in pair:
                if node != GROUND and node not in seen:
                    seen[node] = None
        return list(seen)

    def voltage_sources(self) -> List[VoltageSource]:
        return [c for c in self.components if isinstance(c, VoltageSource)]

    def source_by_name(self, name: str) -> Optional[VoltageSource]:
        for source in self.voltage_sources():
            if source.name == name:
                return source
        return None

    def validate(self) -> None:
        """Basic sanity: at least one component and one ground reference."""
        if not self.components:
            raise ValueError("empty netlist")
        grounded = False
        for comp in self.components:
            if isinstance(comp, (VoltageSource, CurrentSource)):
                pair = (comp.node_plus, comp.node_minus)
            else:
                pair = (comp.node_a, comp.node_b)
            if GROUND in pair:
                grounded = True
        if not grounded:
            raise ValueError("netlist has no ground reference (node 0)")
