"""Trapezoidal transient integration of MNA systems.

Solves ``E dx/dt + A x = s(t)`` with the trapezoidal rule

``(E / (h/2) + A) x_{k+1} = (E / (h/2) - A) x_k + s_k + s_{k+1}``,

factorizing the constant left-hand side once. A small ``gmin`` conductance
to ground on every node keeps the DC operating-point solve well posed for
nodes that connect only through capacitors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from repro.circuit.mna import MNASystem, assemble
from repro.circuit.netlist import Netlist, Node, VoltageSource, evaluate_waveform


@dataclass
class TransientResult:
    """Time axis, node voltages and voltage-source currents of one run."""

    time: np.ndarray
    states: np.ndarray  # (n_steps, n_unknowns)
    system: MNASystem
    netlist: Netlist

    def voltage(self, node: Node) -> np.ndarray:
        """Voltage trace of a node [V]."""
        return self.states[:, self.system.voltage_index(node)]

    def source_current(self, name: str) -> np.ndarray:
        """Current through the named voltage source.

        Positive current flows *into* the plus terminal (i.e. a supply
        delivering power shows a negative value here).
        """
        for pos, comp in enumerate(self.netlist.components):
            if isinstance(comp, VoltageSource) and comp.name == name:
                return self.states[:, self.system.vsource_index[pos]]
        raise KeyError(f"no voltage source named {name!r}")

    def source_energy(self, name: str) -> float:
        """Energy delivered by the named source over the run [J].

        ``integral of v(t) * i_out(t) dt`` with ``i_out`` the current
        flowing out of the plus terminal into the circuit.
        """
        current_in = self.source_current(name)
        for comp in self.netlist.components:
            if isinstance(comp, VoltageSource) and comp.name == name:
                voltage = np.array(
                    [evaluate_waveform(comp.waveform, t) for t in self.time]
                )
                break
        else:  # pragma: no cover - source_current already raised
            raise KeyError(name)
        power = voltage * (-current_in)
        return float(np.trapezoid(power, self.time))

    def total_supply_energy(self, prefix: str = "vdd") -> float:
        """Summed delivered energy of every source whose name starts with
        ``prefix``."""
        total = 0.0
        for comp in self.netlist.components:
            if isinstance(comp, VoltageSource) and comp.name.startswith(prefix):
                total += self.source_energy(comp.name)
        return total


class TransientSolver:
    """Fixed-step trapezoidal integrator for a netlist.

    Parameters
    ----------
    netlist:
        The circuit.
    timestep:
        Integration step [s]. Should resolve the fastest RC/LC constants
        and the source transition times.
    gmin:
        Stabilizing conductance to ground on every node [S].
    """

    def __init__(
        self,
        netlist: Netlist,
        timestep: float,
        gmin: float = 1e-12,
    ) -> None:
        if timestep <= 0.0:
            raise ValueError("timestep must be positive")
        self.netlist = netlist
        self.timestep = timestep
        self.system = assemble(netlist)
        a = self.system.a_matrix.copy()
        a[: self.system.n_nodes, : self.system.n_nodes] += gmin * np.eye(
            self.system.n_nodes
        )
        self._a = a
        self._e = self.system.e_matrix
        h2 = timestep / 2.0
        self._lhs_lu = lu_factor(self._e / h2 + a)
        self._rhs_matrix = self._e / h2 - a
        self._dc_lu = lu_factor(a)

    def dc_operating_point(self, t: float = 0.0) -> np.ndarray:
        """Steady-state solution with sources frozen at time ``t``."""
        return lu_solve(self._dc_lu, self.system.source(t))

    def run(
        self,
        duration: float,
        initial_state: Optional[np.ndarray] = None,
    ) -> TransientResult:
        """Integrate from 0 to ``duration``.

        ``initial_state`` defaults to the DC operating point at t = 0.
        """
        if duration <= 0.0:
            raise ValueError("duration must be positive")
        n_steps = int(np.ceil(duration / self.timestep)) + 1
        time = np.arange(n_steps) * self.timestep
        states = np.empty((n_steps, self.system.size))
        if initial_state is None:
            states[0] = self.dc_operating_point(0.0)
        else:
            if initial_state.shape != (self.system.size,):
                raise ValueError("initial state has the wrong size")
            states[0] = initial_state

        s_prev = self.system.source(float(time[0]))
        for k in range(1, n_steps):
            s_next = self.system.source(float(time[k]))
            rhs = self._rhs_matrix @ states[k - 1] + s_prev + s_next
            states[k] = lu_solve(self._lhs_lu, rhs)
            s_prev = s_next
        return TransientResult(
            time=time, states=states, system=self.system, netlist=self.netlist
        )
