"""Circuit-level substrate for the Sec. 7 validation experiments.

The paper validates its power model with Spectre transient simulations of
full 3pi-RLC TSV networks driven by PTM 22 nm drivers. This package replaces
that flow:

``netlist``
    Linear(ized) circuit description: R, L, C, sources.
``mna``
    Modified nodal analysis assembly (stamps).
``transient``
    Trapezoidal transient integrator with supply-energy probes.
``driver``
    A switch-level CMOS driver model (on-resistance, input capacitance,
    leakage) with PTM-22nm-like defaults.
``energy``
    Fast event-based supply-energy model over whole bit streams, consistent
    with ``P_n = <T, C>`` and cross-checked against the transient engine in
    the tests.
``ac``
    Frequency-domain (phasor) solves of the same MNA system: transfer
    functions, input impedance, bandwidth — and the pi-ladder convergence
    ablation.
"""

from repro.circuit.ac import ACResult, ACSolver
from repro.circuit.netlist import (
    Capacitor,
    CurrentSource,
    Inductor,
    Netlist,
    Resistor,
    VoltageSource,
)
from repro.circuit.transient import TransientResult, TransientSolver
from repro.circuit.driver import DriverModel
from repro.circuit.energy import EnergyModel

__all__ = [
    "ACResult",
    "ACSolver",
    "Capacitor",
    "CurrentSource",
    "Inductor",
    "Netlist",
    "Resistor",
    "VoltageSource",
    "TransientResult",
    "TransientSolver",
    "DriverModel",
    "EnergyModel",
]
