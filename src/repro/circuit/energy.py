"""Event-based supply-energy model over whole bit streams.

For rail-to-rail switching, the energy a supply delivers during one cycle is
fixed by the capacitance network alone (the driver resistance only decides
*where* it is dissipated): with Maxwell capacitance matrix ``C_M`` and node
voltage vectors ``v`` (in volts), the charge a driver must hold on line *i*
is ``Q_i = sum_j C_M[i, j] v_j``, and only drivers ending the cycle at the
high rail exchange energy with the supply,

``E_cycle = Vdd * sum_{i: v_next[i] = Vdd} (Q_i(v_next) - Q_i(v_prev))``.

Negative contributions are physical (charge returned into the rail). The
stream average of this quantity equals the dissipated power and therefore
the paper's model ``P = Vdd^2 f / 2 * <T, C>`` up to a vanishing stored-
energy boundary term — a property the test suite asserts, and which the
trapezoidal transient engine confirms including driver resistances.

On top of the wire energy the model accounts for the two driver terms the
paper includes in Sec. 7: input (gate) capacitance switching and static
leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.circuit.driver import DriverModel
from repro.stats.switching import validate_bit_stream
from repro.tsv.matrices import spice_to_maxwell


@dataclass
class EnergyModel:
    """Per-cycle and mean supply energy of a bit stream on a TSV array.

    Parameters
    ----------
    cap_matrix:
        SPICE-form capacitance matrix of the lines [F].
    driver:
        Driver model supplying input-capacitance and leakage terms; pass
        None to account for the wire network only.
    vdd:
        Supply voltage [V].
    """

    cap_matrix: np.ndarray
    driver: Optional[DriverModel] = None
    vdd: float = 1.0

    def __post_init__(self) -> None:
        self.cap_matrix = np.asarray(self.cap_matrix, dtype=float)
        n = self.cap_matrix.shape[0]
        if self.cap_matrix.shape != (n, n):
            raise ValueError("capacitance matrix must be square")
        self._maxwell = spice_to_maxwell(self.cap_matrix)

    @property
    def n_lines(self) -> int:
        return self.cap_matrix.shape[0]

    # -- wire energy ------------------------------------------------------------

    def cycle_energies(self, bits: np.ndarray) -> np.ndarray:
        """Supply energy of every cycle transition, shape ``(samples - 1,)``.

        ``bits`` is the *physical* line stream (after any assignment
        routing/inversions), shape ``(samples, n_lines)``.
        """
        bits = validate_bit_stream(bits)
        if bits.shape[1] != self.n_lines:
            raise ValueError(
                f"stream has {bits.shape[1]} lines, matrix {self.n_lines}"
            )
        volts = bits.astype(float) * self.vdd
        delta_q = np.diff(volts, axis=0) @ self._maxwell.T
        high_next = volts[1:] > 0.5 * self.vdd
        wire = self.vdd * np.sum(np.where(high_next, delta_q, 0.0), axis=1)

        if self.driver is not None:
            # Gate-capacitance energy: the previous stage charges each
            # driver input once per rising input edge.
            rising = (np.diff(bits.astype(np.int8), axis=0) > 0).sum(axis=1)
            gate = rising * self.driver.input_capacitance * self.vdd**2
            wire = wire + gate
        return wire

    def mean_cycle_energy(self, bits: np.ndarray) -> float:
        """Average supply energy per cycle [J] (dynamic terms only)."""
        return float(self.cycle_energies(bits).mean())

    # -- power ------------------------------------------------------------------

    def leakage_power(self) -> float:
        """Static power of all drivers [W]."""
        if self.driver is None:
            return 0.0
        return self.n_lines * self.driver.leakage_current * self.vdd

    def mean_power(self, bits: np.ndarray, frequency: float) -> float:
        """Total mean supply power (dynamic + leakage) [W]."""
        if frequency <= 0.0:
            raise ValueError("frequency must be positive")
        return self.mean_cycle_energy(bits) * frequency + self.leakage_power()

    def normalized_power(self, bits: np.ndarray) -> float:
        """``P_n = 2 <E_cycle> / Vdd^2`` [F] — comparable to ``<T, C>``."""
        return 2.0 * self.mean_cycle_energy(bits) / self.vdd**2
