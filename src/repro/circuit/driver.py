"""Switch-level CMOS driver model (PTM-22nm-like, strength 6).

The paper drives its TSVs with "22 nm Predictive Technology Model drivers of
strength six" in Spectre. For a linear transient engine we model each driver
stage as a ramped rail-to-rail voltage source behind its effective on-
resistance — the standard switch-level abstraction: the output resistance
sets the (dis)charge time constant with the TSV load, the input capacitance
loads the previous stage, and a constant leakage current adds static power.

Defaults approximate a 6x-strength 22 nm inverter: a minimum inverter's
effective drive resistance of roughly 9 kOhm scaled down by the strength,
~0.1 fF of input capacitance per unit strength, and sub-uA leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.circuit.netlist import Netlist, Node


@dataclass(frozen=True)
class DriverModel:
    """Electrical abstraction of one TSV driver stage.

    Attributes
    ----------
    strength:
        Drive-strength multiple of a minimum inverter.
    unit_resistance:
        Effective on-resistance of the minimum inverter [Ohm].
    unit_input_capacitance:
        Gate input capacitance of the minimum inverter [F].
    unit_leakage:
        Static leakage current of the minimum inverter [A].
    rise_time:
        Output ramp time of the switch-level source [s].
    vdd:
        Supply voltage [V].
    inverting:
        When True the driver output is the complement of its data bit —
        this is how the paper realizes the assignment's bit inversions
        ("inverting buffers instead of non-inverting ones").
    """

    strength: float = 6.0
    unit_resistance: float = 9.0e3
    unit_input_capacitance: float = 0.1e-15
    unit_leakage: float = 30.0e-9
    rise_time: float = 20.0e-12
    vdd: float = 1.0
    inverting: bool = False

    def __post_init__(self) -> None:
        if self.strength <= 0.0:
            raise ValueError("strength must be positive")
        if self.rise_time <= 0.0:
            raise ValueError("rise_time must be positive")

    @property
    def on_resistance(self) -> float:
        """Effective output resistance [Ohm]."""
        return self.unit_resistance / self.strength

    @property
    def input_capacitance(self) -> float:
        """Gate capacitance presented to the previous stage [F]."""
        return self.unit_input_capacitance * self.strength

    @property
    def leakage_current(self) -> float:
        """Static supply current [A]."""
        return self.unit_leakage * self.strength

    def output_levels(self, bits: np.ndarray) -> np.ndarray:
        """Rail levels the driver imposes for a 0/1 bit sequence [V]."""
        bits = np.asarray(bits)
        levels = np.where(bits > 0, self.vdd, 0.0)
        if self.inverting:
            levels = self.vdd - levels
        return levels

    def waveform(
        self, bits: np.ndarray, cycle_time: float
    ) -> Callable[[float], float]:
        """Piecewise-linear output waveform for one bit per cycle.

        Each cycle the output ramps from the previous rail level to the new
        one over ``rise_time`` and then holds.
        """
        if cycle_time <= self.rise_time:
            raise ValueError("cycle_time must exceed the rise time")
        levels = self.output_levels(bits).astype(float)

        def value(t: float) -> float:
            k = int(t // cycle_time)
            if k >= len(levels):
                return float(levels[-1])
            target = levels[k]
            previous = levels[k - 1] if k > 0 else levels[0]
            phase = t - k * cycle_time
            if phase >= self.rise_time or target == previous:
                return float(target)
            frac = phase / self.rise_time
            return float(previous + (target - previous) * frac)

        return value

    def attach(
        self,
        netlist: Netlist,
        output_node: Node,
        bits: np.ndarray,
        cycle_time: float,
        name: str,
    ) -> None:
        """Add this driver to a netlist as source + series resistance.

        Creates an internal node ``(name, "drv")`` between the ramped source
        (named ``vdd_<name>`` so supply-energy accounting picks it up) and
        the on-resistance into ``output_node``.
        """
        internal: Node = (name, "drv")
        netlist.voltage_source(
            internal, 0, self.waveform(bits, cycle_time), name=f"vdd_{name}"
        )
        netlist.resistor(internal, output_node, self.on_resistance)
