"""AC small-signal analysis of MNA systems.

Complements the transient engine with frequency-domain solves of the same
descriptor system: at angular frequency ``w`` the phasor unknowns satisfy

``(A + j w E) X = S``

with the matrices of :mod:`repro.circuit.mna`. Used to characterize TSV
channels (transfer function, input impedance, bandwidth) and to justify the
paper's 3pi ladder: the segment-count ablation shows where a single lumped
pi stops being accurate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.circuit.mna import MNASystem, assemble
from repro.circuit.netlist import Netlist, Node, VoltageSource, evaluate_waveform


@dataclass
class ACResult:
    """Phasor solution over a frequency grid."""

    frequencies: np.ndarray
    states: np.ndarray  # (n_freqs, n_unknowns), complex
    system: MNASystem
    netlist: Netlist

    def voltage(self, node: Node) -> np.ndarray:
        """Complex node voltage phasor per frequency."""
        return self.states[:, self.system.voltage_index(node)]

    def magnitude_db(self, node: Node) -> np.ndarray:
        """Voltage magnitude in dB (re 1 V source)."""
        return 20.0 * np.log10(np.maximum(np.abs(self.voltage(node)), 1e-30))

    def source_current(self, name: str) -> np.ndarray:
        """Complex current phasor through the named source (into plus)."""
        for pos, comp in enumerate(self.netlist.components):
            if isinstance(comp, VoltageSource) and comp.name == name:
                return self.states[:, self.system.vsource_index[pos]]
        raise KeyError(f"no voltage source named {name!r}")

    def input_impedance(self, name: str) -> np.ndarray:
        """Impedance seen by the named (1 V phasor) source [Ohm]."""
        current_out = -self.source_current(name)
        with np.errstate(divide="ignore", invalid="ignore"):
            z = 1.0 / current_out
        return z

    def bandwidth_3db(self, node: Node) -> float:
        """First frequency where the node magnitude drops 3 dB below its
        lowest-frequency value [Hz]; inf if it never does on the grid."""
        mag = self.magnitude_db(node)
        threshold = mag[0] - 3.0
        below = np.flatnonzero(mag < threshold)
        if below.size == 0:
            return float("inf")
        return float(self.frequencies[below[0]])


class ACSolver:
    """Frequency sweep of a netlist with every source as a unit phasor.

    All voltage sources are driven with their *magnitude at t = 0* as the
    phasor amplitude (constant-waveform sources keep their value, callables
    are evaluated at 0); for a single-input transfer function build the
    netlist with one 1 V source.
    """

    def __init__(self, netlist: Netlist, gmin: float = 1e-12) -> None:
        self.netlist = netlist
        self.system = assemble(netlist)
        a = self.system.a_matrix.copy()
        a[: self.system.n_nodes, : self.system.n_nodes] += gmin * np.eye(
            self.system.n_nodes
        )
        self._a = a
        self._e = self.system.e_matrix
        self._s = self.system.source(0.0).astype(complex)

    def sweep(self, frequencies: Sequence[float]) -> ACResult:
        """Solve the phasor system at each frequency [Hz]."""
        frequencies = np.asarray(frequencies, dtype=float)
        if frequencies.ndim != 1 or frequencies.size == 0:
            raise ValueError("frequencies must be a non-empty 1-D sequence")
        if (frequencies < 0.0).any():
            raise ValueError("frequencies must be non-negative")
        states = np.empty((frequencies.size, self.system.size), dtype=complex)
        for k, freq in enumerate(frequencies):
            omega = 2.0 * np.pi * freq
            matrix = self._a + 1j * omega * self._e
            states[k] = np.linalg.solve(matrix, self._s)
        return ACResult(
            frequencies=frequencies,
            states=states,
            system=self.system,
            netlist=self.netlist,
        )
