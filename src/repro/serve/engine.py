"""Micro-batching engine: queues, coalescing, backpressure, deadlines.

The encode/decode kernels in :mod:`repro.serve.codecs` are vectorized —
their per-word cost collapses when many words go through at once — but
serving traffic arrives as many small requests. :class:`ServeEngine`
bridges the two with the standard inference-serving shape:

* every link gets a **bounded queue** and a **single worker task**: the
  queue bounds memory and converts overload into explicit
  :class:`OverloadedError` load shedding at submit time (never silent
  latency), and one worker per link keeps the stateful codec history a
  totally ordered stream;
* the worker **coalesces** consecutive same-direction requests into one
  NumPy batch under a :class:`BatchPolicy` (batch window, word and
  request caps), then runs the batch on a shared thread pool so the
  event loop never blocks on NumPy;
* every request may carry a **deadline** (a
  :class:`repro.runtime.supervision.Deadline`); requests that expire
  while queued are dropped *before* touching the codec — a dropped
  request is simply never transmitted, so the surviving stream stays
  exactly the concatenation of the served requests.

A :func:`repro.runtime.faults.fault_point` (``"slow_solve"``) fires per
executed batch so `REPRO_FAULTS` chaos pressure reaches the serving data
path just like the offline solvers.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.runtime.faults import fault_point
from repro.runtime.supervision import Deadline, RunControl
from repro.serve.metrics import LinkMetrics
from repro.serve.session import LinkConfig, LinkSession


class ServeEngineError(RuntimeError):
    """Base class of engine-level request failures."""


class UnknownLinkError(ServeEngineError, KeyError):
    """Request names a link id the engine has never seen (or dropped)."""


class OverloadedError(ServeEngineError):
    """The link's queue is full: the request was shed, not enqueued."""


class DeadlineExceededError(ServeEngineError):
    """The request's deadline expired while it waited in the queue."""


class EngineClosedError(ServeEngineError):
    """The engine shut down before the request could run."""


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the micro-batching loop.

    Attributes
    ----------
    window_s:
        How long the worker waits for more requests after the first one
        of a batch arrives. ``0`` disables coalescing (each request is
        its own batch).
    max_batch_words:
        Close the batch once it holds at least this many words.
    max_batch_requests:
        Close the batch once it holds this many requests.
    queue_limit:
        Bound of the per-link request queue; a full queue sheds.
    """

    window_s: float = 0.002
    max_batch_words: int = 65536
    max_batch_requests: int = 128
    queue_limit: int = 256

    def __post_init__(self) -> None:
        if self.window_s < 0.0:
            raise ValueError(f"window_s must be >= 0, got {self.window_s}")
        if self.max_batch_words < 1:
            raise ValueError(
                f"max_batch_words must be >= 1, got {self.max_batch_words}"
            )
        if self.max_batch_requests < 1:
            raise ValueError(
                f"max_batch_requests must be >= 1, "
                f"got {self.max_batch_requests}"
            )
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )


class _Request:
    """One queued encode/decode request."""

    __slots__ = ("op", "words", "future", "deadline", "enqueued_at", "seq")

    def __init__(
        self,
        op: str,
        words: np.ndarray,
        future: "asyncio.Future[np.ndarray]",
        deadline: Optional[Deadline],
        seq: Optional[int] = None,
    ) -> None:
        self.op = op
        self.words = words
        self.future = future
        self.deadline = deadline
        self.seq = seq
        self.enqueued_at = time.monotonic()


class _Link:
    """Per-link serving state: session, queue, worker, metrics."""

    def __init__(
        self, link_id: str, session: LinkSession, queue_limit: int
    ) -> None:
        self.link_id = link_id
        self.session = session
        self.queue: "asyncio.Queue[_Request]" = asyncio.Queue(queue_limit)
        self.metrics = LinkMetrics()
        self.worker: Optional["asyncio.Task[None]"] = None
        self.carry: Optional[_Request] = None
        #: The batch the worker is currently filling or executing;
        #: cancelling the worker mid-batch must still fail these.
        self.inflight: List[_Request] = []


class ServeEngine:
    """Micro-batching link-serving engine (one event loop, many links).

    Create inside a running event loop; ``async with`` (or explicit
    :meth:`close`) tears down workers and fails queued requests with
    :class:`EngineClosedError`.
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        max_workers: Optional[int] = None,
        control: Optional[RunControl] = None,
    ) -> None:
        self.policy = policy or BatchPolicy()
        self.control = control or RunControl()
        self._links: Dict[str, _Link] = {}
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._closed = False

    # -- link management ----------------------------------------------------

    def create_link(self, link_id: str, config: LinkConfig) -> LinkSession:
        """Build the session for ``link_id`` and start its worker."""
        return self.add_link(link_id, LinkSession(config))

    def add_link(self, link_id: str, session: LinkSession) -> LinkSession:
        """Adopt an already-built session (e.g. built on a worker thread)."""
        if self._closed:
            raise EngineClosedError("engine is closed")
        if link_id in self._links:
            raise ValueError(f"link {link_id!r} already exists")
        link = _Link(link_id, session, self.policy.queue_limit)
        link.worker = asyncio.get_running_loop().create_task(
            self._work(link)
        )
        self._links[link_id] = link
        return session

    def _get(self, link_id: str) -> _Link:
        try:
            return self._links[link_id]
        except KeyError:
            raise UnknownLinkError(f"unknown link {link_id!r}") from None

    def session(self, link_id: str) -> LinkSession:
        return self._get(link_id).session

    @property
    def link_ids(self) -> List[str]:
        return sorted(self._links)

    async def drop_link(self, link_id: str) -> None:
        """Stop the link's worker and fail its queued requests."""
        link = self._get(link_id)
        del self._links[link_id]
        await self._stop_link(link)

    async def _stop_link(self, link: _Link) -> None:
        if link.worker is not None:
            link.worker.cancel()
            try:
                await link.worker
            except asyncio.CancelledError:
                pass
        leftovers = list(link.inflight)
        link.inflight = []
        if link.carry is not None:
            leftovers.append(link.carry)
            link.carry = None
        while True:
            try:
                leftovers.append(link.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        for request in leftovers:
            if not request.future.done():
                request.future.set_exception(
                    EngineClosedError("link dropped before request ran")
                )

    # -- request path -------------------------------------------------------

    def enqueue(
        self,
        link_id: str,
        op: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
        seq: Optional[int] = None,
    ) -> "asyncio.Future[np.ndarray]":
        """Queue one request *synchronously*; the future holds the result.

        The synchronous enqueue is the ordering guarantee of the whole
        stack: a caller that enqueues requests in stream order (e.g. the
        server's frame-read loop) gets them encoded in stream order, no
        matter how response tasks interleave afterwards.

        ``seq`` tags the request with a fleet sequence number; the
        session folds the batch's highest tag into
        ``LinkSession.applied_seq`` when the batch runs, which is how
        fleet snapshots know their cut of the journal.

        Raises :class:`OverloadedError` immediately when the link queue
        is full (explicit load shedding — the words were *not* encoded);
        the future fails with :class:`DeadlineExceededError` when
        ``deadline_s`` elapses before the batch runs, or with whatever
        the codec raises on invalid words.
        """
        if op not in ("encode", "decode"):
            raise ValueError(f"op must be 'encode' or 'decode', got {op!r}")
        if self._closed:
            raise EngineClosedError("engine is closed")
        link = self._get(link_id)
        words = np.asarray(words)
        deadline = Deadline(deadline_s) if deadline_s is not None else None
        future: "asyncio.Future[np.ndarray]" = (
            asyncio.get_running_loop().create_future()
        )
        request = _Request(op, words, future, deadline, seq)
        try:
            link.queue.put_nowait(request)
        except asyncio.QueueFull:
            link.metrics.note_shed()
            raise OverloadedError(
                f"link {link_id!r} queue full "
                f"({self.policy.queue_limit} requests)"
            ) from None
        link.metrics.note_submitted(link.queue.qsize())
        return future

    async def submit(
        self,
        link_id: str,
        op: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Queue one request and await its batch's result."""
        return await self.enqueue(link_id, op, words, deadline_s)

    # -- worker loop --------------------------------------------------------

    def _take(self, link: _Link, request: _Request) -> bool:
        """Accept a dequeued request into the current batch; False = dropped."""
        if request.future.cancelled():
            return False
        if request.deadline is not None and request.deadline.expired():
            link.metrics.note_deadline_missed()
            request.future.set_exception(
                DeadlineExceededError(
                    f"spent {request.deadline.elapsed():.3f}s queued, "
                    f"budget was {request.deadline.budget_s:.3f}s"
                )
            )
            return False
        return True

    async def _fill_batch(self, link: _Link) -> List[_Request]:
        """Pull one batch: first request (or carry), then the window."""
        policy = self.policy
        batch: List[_Request] = []
        # Mutated in place, so the link always exposes the requests the
        # worker holds; _stop_link fails them if we are cancelled here
        # or during the executor run.
        link.inflight = batch
        n_words = 0
        while not batch:
            if link.carry is not None:
                head, link.carry = link.carry, None
            else:
                head = await link.queue.get()
            if self._take(link, head):
                batch.append(head)
                n_words = len(head.words)
        window = Deadline(policy.window_s)
        while (
            len(batch) < policy.max_batch_requests
            and n_words < policy.max_batch_words
        ):
            remaining = window.remaining()
            if remaining <= 0.0:
                break
            try:
                request = await asyncio.wait_for(link.queue.get(), remaining)
            except asyncio.TimeoutError:
                break
            if not self._take(link, request):
                continue
            if request.op != batch[0].op:
                # Direction flip: hold it for the next batch (codec
                # history is per-direction, but keep arrival order).
                link.carry = request
                break
            batch.append(request)
            n_words += len(request.words)
        return batch

    def _run_batch(
        self,
        session: LinkSession,
        op: str,
        words: np.ndarray,
        seq: Optional[int] = None,
    ) -> np.ndarray:
        fault_point("slow_solve", stage=f"serve-{op}", words=len(words))
        if op == "encode":
            return session.encode(words, seq=seq)
        return session.decode(words, seq=seq)

    async def _work(self, link: _Link) -> None:
        loop = asyncio.get_running_loop()
        while not self.control.should_stop():
            batch = await self._fill_batch(link)
            link.metrics.note_queue_depth(link.queue.qsize())
            op = batch[0].op
            lengths = [len(r.words) for r in batch]
            words = (
                np.concatenate([r.words for r in batch])
                if len(batch) > 1 else batch[0].words
            )
            seqs = [r.seq for r in batch if r.seq is not None]
            seq = max(seqs) if seqs else None
            try:
                result = await loop.run_in_executor(
                    self._pool, self._run_batch, link.session, op,
                    words, seq,
                )
            except Exception as exc:
                link.metrics.note_error()
                for request in batch:
                    if not request.future.done():
                        request.future.set_exception(exc)
                link.inflight = []
                continue
            link.metrics.note_batch(op, len(batch), int(sum(lengths)))
            now = time.monotonic()
            offset = 0
            for request, n in zip(batch, lengths):
                piece = result[offset:offset + n]
                offset += n
                if not request.future.done():
                    request.future.set_result(piece)
                link.metrics.latency.record(now - request.enqueued_at)
            link.inflight = []

    # -- stats and lifecycle ------------------------------------------------

    def stats(
        self,
        link_id: Optional[str] = None,
        include_histogram: bool = False,
    ) -> Dict[str, Any]:
        """Operational + energy snapshot of one link or of all links.

        ``include_histogram`` adds each link's raw latency bucket counts
        (``metrics.latency_state``) so a fleet front can merge per-link
        histograms exactly (see
        :func:`repro.serve.metrics.merge_latency_states`).
        """
        if link_id is not None:
            link = self._get(link_id)
            return {
                "link": link_id,
                "metrics": link.metrics.snapshot(include_histogram),
                "energy": link.session.energy_report(),
                "info": link.session.info(),
            }
        return {
            "links": {
                name: {
                    "metrics": link.metrics.snapshot(include_histogram),
                    "energy": link.session.energy_report(),
                }
                for name, link in self._links.items()
            }
        }

    async def close(self) -> None:
        """Stop all workers; queued requests fail with EngineClosedError."""
        if self._closed:
            return
        self._closed = True
        self.control.request_stop()
        links = list(self._links.values())
        self._links.clear()
        for link in links:
            await self._stop_link(link)
        self._pool.shutdown(wait=True)

    async def __aenter__(self) -> "ServeEngine":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.close()


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = request samples.
REPRO_SIGNATURES = {
    "BatchPolicy": {
        "window_s": "scalar second",
        "max_batch_words": "scalar dimensionless",
        "max_batch_requests": "scalar dimensionless",
        "queue_limit": "scalar dimensionless",
    },
    "ServeEngine.submit": {
        "link_id": "any",
        "op": "any",
        "words": "(T,) dimensionless",
        "deadline_s": "scalar second",
        "return": "(T,) dimensionless",
    },
    "ServeEngine.create_link": {
        "link_id": "any",
        "config": "LinkConfig",
        "return": "LinkSession",
    },
    # Concurrency discipline: batches execute on the engine's worker
    # pool; per-link state beyond that is event-loop-confined.
    "@threads": ["ServeEngine._run_batch"],
}
