"""Multi-worker serve fleet: routing, supervision, *exact* failover.

:class:`FleetServer` is a front process speaking the ordinary
:mod:`repro.serve.protocol` to clients while sharding links across a
pool of worker **processes** (:mod:`repro.serve.worker`, one
:class:`~repro.serve.engine.ServeEngine` each). Clients — including the
existing CLI ``stream --verify`` flow — cannot tell a fleet from a
single server; what they gain is that a worker death no longer loses
codec history or energy accounting.

Routing
-------
Link ids map onto worker slots with **rendezvous (HRW) hashing** over
SHA-256: each candidate slot scores ``sha256(link_id "|" slot)`` and the
highest score wins. Deterministic across processes and restarts (no
seed, no RNG), uniform in expectation, and when a slot drains only the
links that lived on it move.

Exact failover
--------------
The front gives every state-mutating request on a link (``encode``,
``decode``, ``reset``) a monotonically increasing **sequence number**
and journals it *before* forwarding. The worker folds the number into
``LinkSession.applied_seq`` under the session lock — the same lock that
guards the codec mutation — so a :meth:`LinkSession.snapshot` is always
a consistent cut: requests numbered at or below ``applied_seq`` are in
the snapshot, the rest are not.

Every ``snapshot_every`` journaled requests the front takes an **epoch
snapshot** of the link: it parks new traffic, waits until every
*forwarded* request is answered (quiesce — parked requests don't count,
they were never sent), asks the worker for the session snapshot,
persists it through a :class:`~repro.runtime.artifacts.CheckpointStore`
(envelope + SHA-256 checksum; the ``snapshot_corrupt`` fault point fires
right after the write so chaos runs can tear the file), keeps an
in-memory copy as a second line of defence, and trims the journal up to
the snapshot's cut. The quiesce is what makes the trim safe: every
trimmed entry has already delivered its response, and parked entries
always carry sequence numbers above the cut.

When a worker dies (its channel drops, or heartbeats go unanswered
``heartbeat_misses`` times in a row), the front parks the affected
links, restarts the worker with exponential backoff and a bumped
*generation* (so ``worker_crash(i,once)`` chaos stays confined to the
first incarnation), and for each link:

1. ``restore_link`` — ship the link config plus the newest usable
   snapshot (checkpoint first — a corrupt file is evicted by the
   store's checksum verification — then the in-memory copy);
2. **replay** the journal entries numbered after the snapshot's cut, in
   sequence order, flagged ``replay`` (the worker ignores deadlines
   during replay: an already-accepted request must be re-applied or the
   stream forks);
3. un-park the link and flush requests that arrived during the outage.

Requests the worker applied but never answered are answered from the
replay results; requests it never saw are simply applied. Chunk
invariance of every codec (``enc(x[:k]) ++ enc(x[k:]) == enc(x)``) plus
integer-exact energy accounting make the result **bit-identical** to an
uninterrupted run — the property ``tests/serve/test_fleet.py`` asserts
under an injected mid-stream ``worker_crash``.

An error response removes the entry from the journal: the serving stack
validates *before* mutating (word range checks at the chain boundary,
shedding at submit time), so a failed request was never part of the
stream and must not be replayed into it.

Drain
-----
:meth:`FleetServer.drain_worker` is the planned-maintenance path: park
the slot's links, settle in-flight work, take a final snapshot of each
link, move the links to surviving slots (restore + empty replay), then
terminate the worker. No request is lost; new links simply hash over
the remaining slots.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import signal
import subprocess
import sys
import tempfile
from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.runtime.artifacts import CheckpointStore
from repro.runtime.faults import fault_point
from repro.runtime.supervision import Deadline
from repro.serve.client import exception_from_header
from repro.serve.engine import (
    BatchPolicy,
    EngineClosedError,
    OverloadedError,
    UnknownLinkError,
)
from repro.serve.metrics import merge_latency_states
from repro.serve.protocol import (
    error_header,
    pack_frame,
    read_frame,
)
from repro.serve.server import (
    LinkServer,
    _Connection,
    _fence_admits,
    _fence_nack,
    _fence_record,
    jsonable,
)
from repro.serve.session import LinkConfig

#: A worker's answer to a forwarded data request: response header + raw
#: payload bytes, passed through to the client without re-encoding.
_WireReply = Tuple[Dict[str, Any], bytes]

logger = logging.getLogger("repro.serve")

#: Checkpoint kind tag of fleet snapshot files.
SNAPSHOT_KIND = "fleet-link-snapshot"


def worker_for(link_id: str, slots: List[int]) -> int:
    """Rendezvous-hash ``link_id`` onto one of the candidate ``slots``.

    Highest-random-weight over SHA-256 digests: deterministic across
    processes (no RNG, no seed), uniform in expectation, and minimal
    movement — removing a slot only relocates the links that lived on
    it.
    """
    if not slots:
        raise ValueError("no worker slots available")
    best_slot, best_score = slots[0], b""
    for slot in slots:
        score = hashlib.sha256(f"{link_id}|{slot}".encode("utf-8")).digest()
        if score > best_score:
            best_slot, best_score = slot, score
    return best_slot


class _ChannelClosed(ConnectionError):
    """The worker channel dropped before this request was answered."""


class _WorkerChannel:
    """Multiplexed asyncio RPC channel to one worker process.

    :meth:`request` assigns an id, registers a future and **writes the
    frame synchronously** — the write order on the socket is the call
    order, which carries the engine's enqueue-order guarantee across
    the process boundary. A reader task matches responses by id; a read
    failure fails every pending future with :class:`_ChannelClosed`
    (distinguishable from a worker-*reported* error, which means the
    request was rejected before mutating anything).
    """

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[int, "asyncio.Future[Any]"] = {}
        self._next_id = 0
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self.closed = False
        #: Called once, from the reader task, when the channel fails.
        self.on_failure: Optional[Callable[[], None]] = None

    async def open(self, path: str) -> None:
        self._reader, self._writer = await asyncio.open_unix_connection(path)
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    def request(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> "asyncio.Future[Any]":
        """Send one frame now (ordered); the future holds the response."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()
        if self.closed or self._writer is None:
            future.set_exception(_ChannelClosed("worker channel is down"))
            return future
        request_id = self._next_id
        self._next_id += 1
        self._pending[request_id] = future
        try:
            self._writer.write(pack_frame(dict(header, id=request_id), payload))
        except Exception as exc:
            self._pending.pop(request_id, None)
            future.set_exception(_ChannelClosed(str(exc)))
        return future

    async def call(
        self,
        header: Dict[str, Any],
        payload: bytes = b"",
        timeout: Optional[float] = None,
    ) -> Any:
        """Request and await the ``(header, payload)`` response."""
        return await asyncio.wait_for(self.request(header, payload), timeout)

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                header, payload = await read_frame(self._reader)
                future = self._pending.pop(int(header.get("id", -1)), None)
                if future is not None and not future.done():
                    future.set_result((header, payload))
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail(exc)

    def _fail(self, exc: BaseException) -> None:
        if self.closed:
            return
        self.closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(
                    _ChannelClosed(f"worker channel lost: {exc}")
                )
        callback = self.on_failure
        if callback is not None:
            callback()

    async def close(self) -> None:
        self.closed = True
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except asyncio.CancelledError:
                pass
            except Exception:  # pragma: no cover - reader died first
                pass
            self._reader_task = None
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except Exception:
                pass
            self._writer = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(_ChannelClosed("channel closed"))


class _WorkerHandle:
    """One worker slot: process, channel, lifecycle state."""

    def __init__(self, index: int, socket_path: Path) -> None:
        self.index = index
        self.socket_path = socket_path
        self.process: Optional[subprocess.Popen] = None
        self.channel = _WorkerChannel()
        #: Incarnation counter; passed to the worker at spawn so
        #: once-gated crash faults stay confined to generation 0.
        self.generation = 0
        self.restarts = 0
        #: "up" | "restarting" | "draining" | "stopped"
        self.state = "stopped"
        self.up = asyncio.Event()
        self.heartbeat_task: Optional["asyncio.Task[None]"] = None

    def kill(self) -> None:
        """Hard-stop the worker process (idempotent, blocking)."""
        process = self.process
        if process is None:
            return
        if process.poll() is None:
            try:
                process.send_signal(signal.SIGKILL)
            except OSError:
                pass
        try:
            process.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass


class _JournalEntry:
    """One journaled state-mutating request (encode/decode/reset).

    The payload is the client's wire bytes, kept verbatim: the front
    never decodes the words, so forwarding and replay are byte-faithful
    and cost no array round trips. The future resolves to the worker's
    ``(response_header, body)`` pair.
    """

    __slots__ = ("seq", "op", "payload", "future", "deadline_s")

    def __init__(
        self,
        seq: int,
        op: str,
        payload: bytes,
        future: "asyncio.Future[_WireReply]",
        deadline_s: Optional[float],
    ) -> None:
        self.seq = seq
        self.op = op
        self.payload = payload
        self.future = future
        self.deadline_s = deadline_s


class _FleetLink:
    """Front-side state of one link: route, journal, snapshot."""

    def __init__(
        self, link_id: str, config: Dict[str, Any], worker_index: int
    ) -> None:
        self.link_id = link_id
        self.config = config
        self.worker_index = worker_index
        self.next_seq = 1
        #: seq -> entry, in seq order. An entry leaves the journal two
        #: ways only: an *error* response (the worker rejected it before
        #: mutating — it is not part of the stream) or a snapshot trim
        #: (it is inside the persisted cut). Everything else must stay
        #: replayable.
        self.journal: "OrderedDict[int, _JournalEntry]" = OrderedDict()
        self.since_snapshot = 0
        self.snapshot: Optional[Dict[str, Any]] = None
        self.snapshot_seq = 0
        self.snapshot_task: Optional["asyncio.Task[None]"] = None
        #: Cleared while the link cannot accept traffic (worker down,
        #: snapshot quiesce); submissions park instead of forwarding.
        self.ready = asyncio.Event()
        self.parked: List[_JournalEntry] = []
        #: Serializes install/restore so a crash-restart and a
        #: concurrent ``create_link`` cannot both install the link.
        self.install_lock = asyncio.Lock()
        self.info: Dict[str, Any] = {}

    def outstanding(self) -> List["asyncio.Future[_WireReply]"]:
        """Futures of *forwarded* but unanswered entries.

        Parked entries are excluded — they were never written to a
        worker, so quiescing must not (and could not) wait on them.
        """
        parked = {entry.seq for entry in self.parked}
        return [
            entry.future
            for entry in self.journal.values()
            if not entry.future.done() and entry.seq not in parked
        ]


class FleetServer(LinkServer):
    """Front of a worker fleet; serves the LinkServer client protocol.

    Parameters
    ----------
    n_workers:
        Worker processes to spawn (>= 1).
    runtime_dir:
        Directory for worker sockets and snapshot checkpoints; a private
        temp dir (removed on close) when omitted.
    policy:
        Batch policy shipped to every worker engine.
    snapshot_every:
        Journaled requests per link between epoch snapshots.
    heartbeat_interval_s / heartbeat_misses:
        Ping cadence per worker and consecutive misses before the front
        declares it dead. Heartbeats only catch *hangs* — a crashed
        worker closes its channel and is detected immediately — so the
        cadence can stay slow; pinging aggressively measurably taxes
        the data plane on small machines (every ping is two extra
        process wakeups competing with the stream for cores).
    backoff_base_s / backoff_max_s:
        Exponential restart backoff: ``min(base * 2**restarts, max)``.
    worker_boot_timeout_s:
        How long a spawned worker may take to accept its socket.
    park_limit:
        Requests parked per link while its worker is down; beyond it
        the front sheds with a *retriable* NACK.
    """

    def __init__(
        self,
        n_workers: int = 2,
        runtime_dir: Optional[str] = None,
        policy: Optional[BatchPolicy] = None,
        snapshot_every: int = 512,
        heartbeat_interval_s: float = 1.0,
        heartbeat_misses: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        worker_boot_timeout_s: float = 20.0,
        park_limit: int = 256,
    ) -> None:
        # The inherited engine never sees data traffic (the front
        # forwards it); it exists so the LinkServer harness — start,
        # close, connection handling — works unchanged.
        super().__init__(policy=BatchPolicy(), max_workers=1)
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        if snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {snapshot_every}"
            )
        self.n_workers = int(n_workers)
        self._policy = policy
        self.snapshot_every = int(snapshot_every)
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.heartbeat_misses = int(heartbeat_misses)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.worker_boot_timeout_s = float(worker_boot_timeout_s)
        self.park_limit = int(park_limit)
        self._own_runtime_dir = runtime_dir is None
        self.runtime_dir = Path(
            runtime_dir
            if runtime_dir is not None
            else tempfile.mkdtemp(prefix="repro-fleet-")
        )
        self._store = CheckpointStore(
            self.runtime_dir / "snapshots", kind=SNAPSHOT_KIND
        )
        self.workers: List[_WorkerHandle] = []
        self.links: Dict[str, _FleetLink] = {}
        self._closing = False

    # -- worker lifecycle ----------------------------------------------------

    def _spawn(self, handle: _WorkerHandle) -> None:
        try:
            handle.socket_path.unlink()
        except OSError:
            pass
        argv = [
            sys.executable, "-m", "repro.serve.worker",
            "--path", str(handle.socket_path),
            "--index", str(handle.index),
            "--generation", str(handle.generation),
        ]
        if self._policy is not None:
            argv += ["--policy", json.dumps(asdict(self._policy))]
        # The worker inherits the environment: PYTHONPATH so it can
        # import repro, REPRO_FAULTS so chaos plans reach the fleet's
        # data plane.
        handle.process = subprocess.Popen(argv)

    async def _wait_ready(self, handle: _WorkerHandle) -> None:
        deadline = Deadline(self.worker_boot_timeout_s)
        while not handle.socket_path.exists():
            process = handle.process
            if process is not None and process.poll() is not None:
                raise RuntimeError(
                    f"worker {handle.index} exited with code "
                    f"{process.returncode} before serving"
                )
            if deadline.expired():
                raise RuntimeError(
                    f"worker {handle.index} did not open "
                    f"{handle.socket_path} within "
                    f"{self.worker_boot_timeout_s:.1f}s"
                )
            await asyncio.sleep(0.01)
        channel = _WorkerChannel()
        await channel.open(str(handle.socket_path))
        channel.on_failure = lambda: self._on_worker_failure(handle)
        handle.channel = channel
        await channel.call({"op": "ping"}, timeout=self.worker_boot_timeout_s)

    async def _boot_worker(self, handle: _WorkerHandle) -> None:
        self._spawn(handle)
        await self._wait_ready(handle)
        handle.state = "up"
        handle.up.set()
        if handle.heartbeat_task is None:
            handle.heartbeat_task = asyncio.get_running_loop().create_task(
                self._heartbeat(handle)
            )

    async def _heartbeat(self, handle: _WorkerHandle) -> None:
        """Ping the worker; declare it dead after consecutive misses."""
        misses = 0
        while not self._closing and handle.state != "stopped":
            await asyncio.sleep(self.heartbeat_interval_s)
            if handle.state != "up":
                misses = 0
                continue
            try:
                await handle.channel.call(
                    {"op": "ping"},
                    timeout=self.heartbeat_interval_s
                    * max(1, self.heartbeat_misses),
                )
                misses = 0
            except (asyncio.TimeoutError, _ChannelClosed):
                misses += 1
                if misses >= self.heartbeat_misses and handle.state == "up":
                    logger.warning(
                        "worker %d missed %d heartbeats; declaring dead",
                        handle.index, misses,
                    )
                    misses = 0
                    self._on_worker_failure(handle)

    def _on_worker_failure(self, handle: _WorkerHandle) -> None:
        """Entry point of crash recovery (channel reader, heartbeat)."""
        if self._closing or handle.state in ("restarting", "stopped"):
            return
        handle.state = "restarting"
        handle.up.clear()
        for link in self.links.values():
            if link.worker_index == handle.index:
                link.ready.clear()
        asyncio.get_running_loop().create_task(self._restart(handle))

    async def _restart(self, handle: _WorkerHandle) -> None:
        """Kill, back off, respawn, restore every link, reopen traffic."""
        await handle.channel.close()
        await asyncio.get_running_loop().run_in_executor(None, handle.kill)
        backoff = min(
            self.backoff_base_s * (2 ** handle.restarts),
            self.backoff_max_s,
        )
        handle.restarts += 1
        logger.warning(
            "restarting worker %d (restart #%d) after %.3fs backoff",
            handle.index, handle.restarts, backoff,
        )
        await asyncio.sleep(backoff)
        if self._closing:
            return
        handle.generation += 1
        try:
            await self._boot_worker(handle)
        except RuntimeError as exc:
            logger.error("worker %d failed to restart: %s", handle.index, exc)
            handle.state = "up"  # re-arm failure detection for another try
            self._on_worker_failure(handle)
            return
        for link in list(self.links.values()):
            if link.worker_index != handle.index:
                continue
            try:
                await self._install_link(handle, link)
            except (_ChannelClosed, asyncio.TimeoutError):
                return  # crashed again; the next restart replays
            except Exception:
                logger.exception("restore of link %r failed", link.link_id)
                self._fail_link(link)

    def _fail_link(self, link: _FleetLink) -> None:
        """Exactness cannot be guaranteed: fail the link loudly."""
        self.links.pop(link.link_id, None)
        exc = EngineClosedError(
            f"link {link.link_id!r} could not be restored exactly"
        )
        for entry in list(link.journal.values()) + link.parked:
            if not entry.future.done():
                entry.future.set_exception(exc)
        link.journal.clear()
        link.parked = []

    # -- link install / restore / replay -------------------------------------

    def _snapshot_name(self, link: _FleetLink) -> str:
        digest = hashlib.sha256(link.link_id.encode("utf-8")).hexdigest()[:16]
        return f"link-{digest}"

    def _best_snapshot(self, link: _FleetLink) -> Optional[Dict[str, Any]]:
        """Newest usable snapshot: verified checkpoint, else memory.

        The checkpoint path is preferred so the store's checksum
        verification runs — a checkpoint torn by ``snapshot_corrupt``
        (or a real torn write) is evicted there and the in-memory copy
        takes over. Both carry the same ``applied_seq`` cut when valid.
        """
        checkpoint = self._store.load(self._snapshot_name(link))
        if checkpoint is not None:
            payload = checkpoint.payload
            if (
                isinstance(payload, dict)
                and payload.get("link") == link.link_id
                and isinstance(payload.get("snapshot"), dict)
                and payload["snapshot"].get("applied_seq")
                == link.snapshot_seq
            ):
                return payload["snapshot"]
            logger.warning(
                "ignoring mismatched snapshot checkpoint for link %r",
                link.link_id,
            )
        return link.snapshot

    async def _install_link(
        self, handle: _WorkerHandle, link: _FleetLink
    ) -> None:
        """Create/restore ``link`` on ``handle``, replay, reopen traffic.

        Serialized per link: the crash-restart path and a concurrent
        ``create_link`` can both land here; whoever wins installs, the
        other sees the link ready and returns.
        """
        async with link.install_lock:
            if link.ready.is_set():
                return
            snapshot = self._best_snapshot(link)
            header, _ = await handle.channel.call({
                "op": "restore_link",
                "link": link.link_id,
                "config": link.config,
                "snapshot": snapshot,
            })
            if not header.get("ok"):
                raise exception_from_header(header)
            link.info = header.get("info", {})
            restored_seq = int(header.get("applied_seq", 0))
            expected = link.snapshot_seq if snapshot is not None else 0
            if restored_seq != expected:
                raise RuntimeError(
                    f"link {link.link_id!r} restored at seq "
                    f"{restored_seq}, journal expects {expected}"
                )
            # Replay everything after the snapshot cut, in seq order.
            # Entries whose client already has the answer re-execute
            # silently (bit-identical by chunk invariance); pending
            # entries are answered from the replay responses. Parked
            # entries were never sent to the dead worker — they are not
            # replayed but flushed as fresh traffic below.
            parked = {entry.seq for entry in link.parked}
            for entry in list(link.journal.values()):
                if entry.seq <= restored_seq or entry.seq in parked:
                    continue
                self._send_entry(handle, link, entry, replay=True)
            # No await between ready.set() and the flush: the loop
            # cannot interleave a new submission ahead of parked ones.
            link.ready.set()
            flushed, link.parked = link.parked, []
            for entry in flushed:
                self._send_entry(handle, link, entry)

    # -- data plane ----------------------------------------------------------

    def _send_entry(
        self,
        handle: _WorkerHandle,
        link: _FleetLink,
        entry: _JournalEntry,
        replay: bool = False,
    ) -> None:
        """Forward one journaled request to the link's worker (ordered)."""
        header: Dict[str, Any] = {
            "op": entry.op,
            "link": link.link_id,
            "seq": entry.seq,
        }
        if entry.op != "reset":
            if replay:
                header["replay"] = True
            elif entry.deadline_s is not None:
                header["deadline_s"] = float(entry.deadline_s)
        worker_future = handle.channel.request(header, entry.payload)

        def on_response(
            wfut: "asyncio.Future[Any]", entry: _JournalEntry = entry
        ) -> None:
            if wfut.cancelled():
                return
            exc = wfut.exception()
            if isinstance(exc, _ChannelClosed):
                # The worker died with this request in flight. Leave the
                # journal entry (and its pending future) alone: the
                # restart path replays it and answers from the replay.
                return
            if exc is not None:  # pragma: no cover - local write error
                link.journal.pop(entry.seq, None)
                if not entry.future.done():
                    entry.future.set_exception(exc)
                return
            response, body = wfut.result()
            if response.get("ok"):
                if not entry.future.done():
                    entry.future.set_result((response, body))
            else:
                # Worker-reported error: validated/shed *before* any
                # mutation, so the request is not part of the stream —
                # drop it from the journal or replay would fork history.
                link.journal.pop(entry.seq, None)
                if not entry.future.done():
                    entry.future.set_exception(exception_from_header(response))

        worker_future.add_done_callback(on_response)

    def _submit_data(
        self,
        link_id: str,
        op: str,
        payload: bytes,
        header: Dict[str, Any],
        on_shed: Optional[Callable[[], None]] = None,
    ) -> "asyncio.Future[_WireReply]":
        """Journal one data request and forward (or park) it."""
        link = self.links.get(link_id)
        if link is None:
            raise UnknownLinkError(f"unknown link {link_id!r}")
        future: "asyncio.Future[_WireReply]" = (
            asyncio.get_running_loop().create_future()
        )
        deadline_s = header.get("deadline_s")
        entry = _JournalEntry(
            self._next_seq(link), op, payload, future,
            None if deadline_s is None else float(deadline_s),
        )
        link.journal[entry.seq] = entry
        link.since_snapshot += 1
        handle = self.workers[link.worker_index]
        if link.ready.is_set() and handle.state == "up":
            self._send_entry(handle, link, entry)
            self._maybe_snapshot(link)
        else:
            self._park(link, entry, on_shed)
        return future

    def _next_seq(self, link: _FleetLink) -> int:
        seq = link.next_seq
        link.next_seq += 1
        return seq

    def _park(
        self,
        link: _FleetLink,
        entry: _JournalEntry,
        on_shed: Optional[Callable[[], None]] = None,
    ) -> None:
        """Hold a request while the link's worker is down/snapshotting."""
        if len(link.parked) >= self.park_limit:
            link.journal.pop(entry.seq, None)
            if on_shed is not None:
                # Record the shed *before* the NACK becomes visible:
                # later requests of the same pipelined stream must hit
                # the connection's order fence, or the client's re-issue
                # would be applied out of stream order.
                on_shed()
            entry.future.set_exception(OverloadedError(
                f"link {link.link_id!r} is failing over "
                f"({self.park_limit} requests already parked); retry"
            ))
            return
        link.parked.append(entry)

    # -- epoch snapshots ------------------------------------------------------

    def _maybe_snapshot(self, link: _FleetLink) -> None:
        if (
            link.since_snapshot < self.snapshot_every
            or link.snapshot_task is not None
        ):
            return
        link.since_snapshot = 0
        link.snapshot_task = asyncio.get_running_loop().create_task(
            self._snapshot_link(link)
        )

    async def _snapshot_link(self, link: _FleetLink) -> None:
        """One epoch: quiesce, snapshot, persist, trim the journal."""
        try:
            while True:
                handle = self.workers[link.worker_index]
                if handle.state != "up":
                    return  # the crash path owns the link now
                # Park new traffic and wait for forwarded requests to
                # settle. Loop: a crash-restart may reopen the link
                # mid-wait, letting fresh requests through — re-quiesce
                # until nothing forwarded is unanswered, so the trim
                # below never discards an unanswered entry.
                link.ready.clear()
                outstanding = link.outstanding()
                if not outstanding:
                    break
                await asyncio.wait(outstanding)
            header, _ = await handle.channel.call(
                {"op": "snapshot", "link": link.link_id}
            )
            if not header.get("ok"):
                raise exception_from_header(header)
            snapshot = header.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ValueError("worker returned a malformed snapshot")
            self._commit_snapshot(link, snapshot)
        except (_ChannelClosed, asyncio.TimeoutError):
            pass  # the crash path owns recovery
        except Exception:
            logger.exception("epoch snapshot of link %r failed", link.link_id)
        finally:
            link.snapshot_task = None
            handle = self.workers[link.worker_index]
            if handle.state == "up" and not link.ready.is_set():
                link.ready.set()
                flushed, link.parked = link.parked, []
                for entry in flushed:
                    self._send_entry(handle, link, entry)

    def _commit_snapshot(
        self, link: _FleetLink, snapshot: Dict[str, Any]
    ) -> None:
        """Persist a snapshot and trim the journal up to its cut."""
        cut = int(snapshot.get("applied_seq", 0))
        path = self._store.save(
            self._snapshot_name(link),
            {"link": link.link_id, "snapshot": snapshot},
            step=cut,
        )
        # Chaos hook: snapshot_corrupt truncates the file we just
        # wrote; restore must evict it and fall back to memory.
        fault_point("snapshot_corrupt", path=path)
        link.snapshot = snapshot
        link.snapshot_seq = cut
        for seq in [s for s in link.journal if s <= cut]:
            del link.journal[seq]

    # -- protocol glue --------------------------------------------------------

    def _dispatch(
        self,
        header: Dict[str, Any],
        payload: bytes,
        reply: Any,
        conn: Optional[_Connection] = None,
    ) -> Optional["asyncio.Task[None]"]:
        op = header.get("op")
        if op not in ("encode", "decode"):
            return super()._dispatch(header, payload, reply, conn)
        # Same shape as LinkServer's data branch — synchronous journal
        # and forward in frame order — but the future comes from the
        # fleet path instead of a local engine.
        request_id = header.get("id")
        loop = asyncio.get_running_loop()
        session = conn.session if conn is not None else None
        if session is not None:
            cached = session.recall(request_id)
            if cached is not None:
                return loop.create_task(reply(cached[0], cached[1]))
            pending = session.begin(request_id)
            if pending is not None:
                # Replay raced the original (still executing): answer
                # from its future instead of journaling a second copy.
                return loop.create_task(
                    self._answer_pending(pending, reply)
                )

        async def finish(response: Dict[str, Any], body: bytes = b"") -> None:
            if session is not None:
                session.complete(request_id, response, body)
            await reply(response, body)

        link_key = str(header.get("link"))
        on_shed: Optional[Callable[[], None]] = None
        if session is not None and conn is not None:
            if not _fence_admits(conn, link_key, request_id):
                _fence_record(conn, link_key, request_id)
                return loop.create_task(
                    finish(_fence_nack(link_key, request_id))
                )
            fence_conn = conn

            def on_shed() -> None:
                _fence_record(fence_conn, link_key, request_id)

        try:
            future = self._submit_data(
                link_key, op, payload, header, on_shed
            )
        except Exception as exc:
            return loop.create_task(finish(_error(request_id, exc)))

        async def respond() -> None:
            try:
                worker_response, body = await future
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                await finish(_error(request_id, exc))
                return
            # The worker already validated the payload and priced the
            # batch; pass its count and coded bytes through verbatim.
            await finish(
                {
                    "id": request_id,
                    "ok": True,
                    "count": worker_response.get("count", 0),
                },
                body,
            )

        return loop.create_task(respond())

    async def _run_control(
        self, op: Optional[str], header: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"links": sorted(self.links)}
        if op == "create_link":
            return await self._create_link(header)
        if op == "drop_link":
            return await self._drop_link(str(header.get("link")))
        if op == "reset":
            return await self._reset_link(str(header.get("link")))
        if op == "stats":
            link = header.get("link")
            return await self._stats(None if link is None else str(link))
        if op == "fleet":
            return {"fleet": self.describe()}
        raise ValueError(
            f"unknown op {op!r}; known: ['ping', 'create_link', "
            f"'drop_link', 'encode', 'decode', 'stats', 'reset', "
            f"'hello', 'fleet']"
        )

    async def _create_link(self, header: Dict[str, Any]) -> Dict[str, Any]:
        link_id = str(header.get("link"))
        config = LinkConfig.from_dict(header.get("config"))
        if link_id in self.links:
            raise ValueError(f"link {link_id!r} already exists")
        slots = [
            h.index for h in self.workers
            if h.state not in ("stopped", "draining")
        ]
        index = worker_for(link_id, slots)
        link = _FleetLink(link_id, config.to_dict(), index)
        self.links[link_id] = link
        handle = self.workers[index]
        try:
            await asyncio.wait_for(
                handle.up.wait(), self.worker_boot_timeout_s
            )
            await self._install_link(handle, link)
        except (_ChannelClosed, asyncio.TimeoutError):
            # The worker died mid-create; the restart path installs the
            # link from its (empty) journal. Wait for that instead.
            try:
                await asyncio.wait_for(
                    link.ready.wait(), self.worker_boot_timeout_s
                )
            except asyncio.TimeoutError:
                self.links.pop(link_id, None)
                raise RuntimeError(
                    f"link {link_id!r} could not be created: worker "
                    f"{index} did not come back"
                ) from None
        except Exception:
            self.links.pop(link_id, None)
            raise
        return {"link": link_id, "info": link.info, "worker": index}

    async def _drop_link(self, link_id: str) -> Dict[str, Any]:
        link = self.links.get(link_id)
        if link is None:
            raise UnknownLinkError(f"unknown link {link_id!r}")
        del self.links[link_id]
        self._store.discard(self._snapshot_name(link))
        exc = EngineClosedError("link dropped before request ran")
        for entry in list(link.journal.values()) + link.parked:
            if not entry.future.done():
                entry.future.set_exception(exc)
        handle = self.workers[link.worker_index]
        if handle.state == "up":
            try:
                await handle.channel.call(
                    {"op": "drop_link", "link": link_id}
                )
            except (_ChannelClosed, asyncio.TimeoutError):
                pass
        return {}

    async def _reset_link(self, link_id: str) -> Dict[str, Any]:
        """Journal a reset and apply it between batches (quiesced)."""
        link = self.links.get(link_id)
        if link is None:
            raise UnknownLinkError(f"unknown link {link_id!r}")
        future: "asyncio.Future[_WireReply]" = (
            asyncio.get_running_loop().create_future()
        )
        entry = _JournalEntry(self._next_seq(link), "reset", b"", future, None)
        link.journal[entry.seq] = entry
        handle = self.workers[link.worker_index]
        if not (link.ready.is_set() and handle.state == "up"):
            self._park(link, entry)
        else:
            # The worker applies reset inline (not through the batch
            # queue), so order it behind in-flight data by quiescing.
            outstanding = [f for f in link.outstanding() if f is not future]
            if outstanding:
                link.ready.clear()
                await asyncio.wait(outstanding)
                handle = self.workers[link.worker_index]
                if handle.state == "up":
                    link.ready.set()
                    flushed, link.parked = link.parked, []
                    self._send_entry(handle, link, entry)
                    for parked_entry in flushed:
                        self._send_entry(handle, link, parked_entry)
                else:
                    self._park(link, entry)
            else:
                self._send_entry(handle, link, entry)
        await future
        return {}

    async def _stats(self, link_id: Optional[str]) -> Dict[str, Any]:
        """Aggregate worker stats; merge per-link latency histograms."""
        if link_id is not None:
            link = self.links.get(link_id)
            if link is None:
                raise UnknownLinkError(f"unknown link {link_id!r}")
            handle = self.workers[link.worker_index]
            header, _ = await handle.channel.call(
                {"op": "stats", "link": link_id, "latency_state": True}
            )
            if not header.get("ok"):
                raise exception_from_header(header)
            stats = dict(header.get("stats", {}))
            stats["worker"] = link.worker_index
            return {"stats": stats}
        links: Dict[str, Any] = {}
        latency_states: List[Dict[str, Any]] = []
        for handle in self.workers:
            if handle.state != "up":
                continue
            try:
                header, _ = await handle.channel.call(
                    {"op": "stats", "latency_state": True}
                )
            except (_ChannelClosed, asyncio.TimeoutError):
                continue
            if not header.get("ok"):
                continue
            for name, entry in header.get("stats", {}).get(
                "links", {}
            ).items():
                entry["worker"] = handle.index
                links[name] = entry
                state = entry.get("metrics", {}).pop("latency_state", None)
                if state is not None:
                    latency_states.append(state)
        fleet: Dict[str, Any] = {"workers": self.describe()["workers"]}
        if latency_states:
            # Commutative fold — any worker/link order gives the same
            # bits (see merge_latency_states).
            fleet["latency"] = merge_latency_states(latency_states)
        return {"stats": {"links": links, "fleet": fleet}}

    def describe(self) -> Dict[str, Any]:
        """Control-plane view of the fleet (workers, links, routing)."""
        return {
            "n_workers": self.n_workers,
            "workers": [
                {
                    "index": handle.index,
                    "state": handle.state,
                    "generation": handle.generation,
                    "restarts": handle.restarts,
                    "pid": (
                        handle.process.pid
                        if handle.process is not None else None
                    ),
                }
                for handle in self.workers
            ],
            "links": {
                link_id: {
                    "worker": link.worker_index,
                    "next_seq": link.next_seq,
                    "snapshot_seq": link.snapshot_seq,
                    "journal_depth": len(link.journal),
                }
                for link_id, link in self.links.items()
            },
        }

    # -- drain ----------------------------------------------------------------

    async def drain_worker(self, index: int) -> None:
        """Gracefully retire worker ``index``: settle, move links, stop.

        Every link on the slot is parked, its in-flight requests
        settle, a final snapshot is taken, and the link is restored
        onto a surviving slot (the journal is empty after the snapshot,
        so the replay step is a no-op). Requests parked during the move
        are flushed to the new worker. Raises when this is the last
        live worker.
        """
        handle = self.workers[index]
        if handle.state != "up":
            raise RuntimeError(
                f"worker {index} is {handle.state}, cannot drain"
            )
        survivors = [
            h.index for h in self.workers
            if h.index != index and h.state == "up"
        ]
        if not survivors:
            raise RuntimeError("cannot drain the last live worker")
        handle.state = "draining"
        affected = [
            link for link in self.links.values()
            if link.worker_index == index
        ]
        for link in affected:
            link.ready.clear()
        for link in affected:
            outstanding = link.outstanding()
            if outstanding:
                await asyncio.wait(outstanding)
            header, _ = await handle.channel.call(
                {"op": "snapshot", "link": link.link_id}
            )
            if not header.get("ok"):
                raise exception_from_header(header)
            snapshot = header.get("snapshot")
            if not isinstance(snapshot, dict):
                raise ValueError("worker returned a malformed snapshot")
            self._commit_snapshot(link, snapshot)
            link.worker_index = worker_for(link.link_id, survivors)
            await self._install_link(self.workers[link.worker_index], link)
        handle.state = "stopped"
        handle.up.clear()
        await handle.channel.close()
        process = handle.process
        if process is not None and process.poll() is None:
            process.terminate()
            await asyncio.get_running_loop().run_in_executor(
                None, handle.kill
            )
        logger.info("worker %d drained and stopped", index)

    # -- lifecycle ------------------------------------------------------------

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
    ) -> None:
        self.runtime_dir.mkdir(parents=True, exist_ok=True)
        for index in range(self.n_workers):
            self.workers.append(_WorkerHandle(
                index, self.runtime_dir / f"worker-{index}.sock"
            ))
        await asyncio.gather(
            *(self._boot_worker(handle) for handle in self.workers)
        )
        await super().start(host=host, port=port, path=path)
        logger.info(
            "fleet front serving %d workers from %s",
            self.n_workers, self.runtime_dir,
        )

    async def close(self) -> None:
        self._closing = True
        loop = asyncio.get_running_loop()
        for handle in self.workers:
            handle.state = "stopped"
            if handle.heartbeat_task is not None:
                handle.heartbeat_task.cancel()
                try:
                    await handle.heartbeat_task
                except asyncio.CancelledError:
                    pass
                handle.heartbeat_task = None
            await handle.channel.close()
            process = handle.process
            if process is not None and process.poll() is None:
                process.terminate()
        for handle in self.workers:
            if handle.process is not None:
                await loop.run_in_executor(None, handle.kill)
            try:
                handle.socket_path.unlink()
            except OSError:
                pass
        exc = EngineClosedError("fleet closed")
        for link in self.links.values():
            for entry in list(link.journal.values()) + link.parked:
                if not entry.future.done():
                    entry.future.set_exception(exc)
        self.links.clear()
        await super().close()
        if self._own_runtime_dir:
            import shutil

            shutil.rmtree(self.runtime_dir, ignore_errors=True)


def _error(request_id: Any, exc: Exception) -> Dict[str, Any]:
    """An error response header; overload NACKs are marked retriable."""
    retriable = isinstance(exc, OverloadedError)
    return jsonable(error_header(request_id, exc, retriable=retriable))


#: Signatures for the lint passes. The fleet has no shape/unit surface
#: of its own (payloads are typed at the worker's session boundary); the
#: entries declare the routing function's determinism contract — a link
#: that hashed to a different slot after a front restart would lose its
#: journal continuity.
REPRO_SIGNATURES = {
    "worker_for": {"link_id": "any", "slots": "any",
                   "return": "scalar dimensionless"},
    "FleetServer": {
        "n_workers": "scalar dimensionless",
        "snapshot_every": "scalar dimensionless",
        "heartbeat_interval_s": "scalar second",
        "heartbeat_misses": "scalar dimensionless",
        "backoff_base_s": "scalar second",
        "backoff_max_s": "scalar second",
        "worker_boot_timeout_s": "scalar second",
        "park_limit": "scalar dimensionless",
    },
    "@deterministic": ["worker_for"],
}
