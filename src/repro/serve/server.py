"""Asyncio link server speaking the :mod:`repro.serve.protocol` framing.

:class:`LinkServer` accepts TCP or unix-socket connections, parses frames
and drives a shared :class:`~repro.serve.engine.ServeEngine`. The read
loop enqueues ``encode``/``decode`` requests *synchronously* (stream
order = arrival order, see :meth:`ServeEngine.enqueue`) and answers each
one from a detached task as its batch completes, so a pipelining client
is never serialized on the slowest batch; control ops (``create_link``,
``stats``, ...) are answered inline.

:class:`BackgroundServer` runs a :class:`LinkServer` on a private event
loop in a daemon thread — the shape tests, benchmarks and examples use
to talk to a *real* server over a real socket from ordinary synchronous
code.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.serve.engine import BatchPolicy, ServeEngine, ServeEngineError
from repro.serve.protocol import (
    ProtocolError,
    payload_to_words,
    read_frame,
    words_to_payload,
    write_frame,
)
from repro.serve.session import LinkConfig, LinkConfigError, LinkSession

logger = logging.getLogger("repro.serve")

#: ``op`` values the server answers.
OPS = (
    "ping", "create_link", "drop_link", "encode", "decode", "stats", "reset"
)


def jsonable(value: Any) -> Any:
    """Recursively convert NumPy scalars/arrays for JSON serialization."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    return value


class LinkServer:
    """One engine behind one listening socket (TCP or unix)."""

    def __init__(
        self,
        engine: Optional[ServeEngine] = None,
        policy: Optional[BatchPolicy] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.engine = engine or ServeEngine(
            policy=policy, max_workers=max_workers
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Union[Tuple[str, int], str]] = None

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
    ) -> None:
        """Listen on ``path`` (unix socket) or ``host:port`` (TCP).

        ``port=0`` binds an ephemeral port; :attr:`address` holds the
        actual endpoint either way.
        """
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=path
            )
            self.address = path
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        logger.info("serving coded links on %s", self.address)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.engine.close()

    # -- connection handling ------------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        tasks = set()

        async def reply(
            header: Dict[str, Any], payload: bytes = b""
        ) -> None:
            async with write_lock:
                await write_frame(writer, header, payload)

        try:
            while True:
                try:
                    header, payload = await read_frame(reader)
                except EOFError:
                    break
                task = self._dispatch(header, payload, reply)
                if task is not None:
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except (ProtocolError, ConnectionResetError) as exc:
            logger.warning("dropping connection: %s", exc)
        finally:
            for task in list(tasks):
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(
        self, header: Dict[str, Any], payload: bytes, reply: Any
    ) -> Optional["asyncio.Task[None]"]:
        """Handle one request frame; returns the detached response task.

        Data-plane requests are enqueued synchronously *here*, in frame
        arrival order, before any await — that is what makes a client's
        stream order the codec's stream order.
        """
        request_id = header.get("id")
        op = header.get("op")
        loop = asyncio.get_running_loop()

        async def fail(exc: Exception) -> None:
            await reply({
                "id": request_id,
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            })

        if op in ("encode", "decode"):
            link = header.get("link")
            try:
                words = payload_to_words(payload)
                future = self.engine.enqueue(
                    str(link), op, words,
                    deadline_s=header.get("deadline_s"),
                )
            except (ServeEngineError, ProtocolError, ValueError) as exc:
                return loop.create_task(fail(exc))

            async def respond() -> None:
                try:
                    result = await future
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    await fail(exc)
                    return
                await reply(
                    {"id": request_id, "ok": True, "count": len(result)},
                    words_to_payload(result),
                )

            return loop.create_task(respond())
        return loop.create_task(self._control(op, header, request_id, reply))

    async def _control(
        self,
        op: Optional[str],
        header: Dict[str, Any],
        request_id: Any,
        reply: Any,
    ) -> None:
        try:
            result = await self._run_control(op, header)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Always answer the frame — an unanswered id hangs blocking
            # clients. Expected errors are the client's fault; anything
            # else is a server bug worth a traceback in the log.
            if not isinstance(
                exc, (ServeEngineError, LinkConfigError, ValueError, KeyError)
            ):
                logger.exception("control op %r failed", op)
            await reply({
                "id": request_id,
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            })
            return
        response = {"id": request_id, "ok": True}
        response.update(result)
        await reply(jsonable(response))

    async def _run_control(
        self, op: Optional[str], header: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"links": self.engine.link_ids}
        if op == "create_link":
            link_id = str(header.get("link"))
            config = LinkConfig.from_dict(header.get("config"))
            # The first session on a geometry fits the capacitance
            # model; keep that off the event loop.
            session = await asyncio.get_running_loop().run_in_executor(
                None, LinkSession, config
            )
            self.engine.add_link(link_id, session)
            return {"link": link_id, "info": session.info()}
        if op == "drop_link":
            await self.engine.drop_link(str(header.get("link")))
            return {}
        if op == "stats":
            link = header.get("link")
            return {
                "stats": self.engine.stats(
                    None if link is None else str(link)
                )
            }
        if op == "reset":
            self.engine.session(str(header.get("link"))).reset()
            return {}
        raise ValueError(f"unknown op {op!r}; known: {list(OPS)}")


class BackgroundServer:
    """A :class:`LinkServer` on a private event loop in a daemon thread.

    .. code-block:: python

        with BackgroundServer() as server:
            client = LinkClient.connect(server.address)

    The context manager guarantees the server is accepting connections on
    entry and fully torn down (engine included) on exit.
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self._policy = policy
        self._host = host
        self._port = port
        self._path = path
        self._max_workers = max_workers
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Future] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[LinkServer] = None

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        if self.server is None or self.server.address is None:
            raise RuntimeError("server not running")
        return self.server.address

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        server = LinkServer(
            policy=self._policy, max_workers=self._max_workers
        )
        try:
            await server.start(
                host=self._host, port=self._port, path=self._path
            )
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self._stop = asyncio.get_running_loop().create_future()
        self._ready.set()
        try:
            await self._stop
        finally:
            await server.close()

    def stop(self) -> None:
        loop, stop = self._loop, self._stop
        if loop is None or self._thread is None:
            return
        if stop is not None:
            def _finish() -> None:
                if not stop.done():
                    stop.set_result(None)
            loop.call_soon_threadsafe(_finish)
        self._thread.join(timeout=30.0)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()


#: Signatures for the lint passes. The server has no shape/unit surface
#: of its own (payloads are typed at the session boundary); the entries
#: here declare its threading structure for the concurrency pass.
REPRO_SIGNATURES = {
    # The serve loop runs on the background thread; everything it touches
    # is event-loop-confined or handed over via call_soon_threadsafe.
    "@threads": ["BackgroundServer._run"],
}
