"""Asyncio link server speaking the :mod:`repro.serve.protocol` framing.

:class:`LinkServer` accepts TCP or unix-socket connections, parses frames
and drives a shared :class:`~repro.serve.engine.ServeEngine`. The read
loop enqueues ``encode``/``decode`` requests *synchronously* (stream
order = arrival order, see :meth:`ServeEngine.enqueue`) and answers each
one from a detached task as its batch completes, so a pipelining client
is never serialized on the slowest batch; control ops (``create_link``,
``stats``, ...) are answered inline.

:class:`BackgroundServer` runs a :class:`LinkServer` on a private event
loop in a daemon thread — the shape tests, benchmarks and examples use
to talk to a *real* server over a real socket from ordinary synchronous
code.
"""

from __future__ import annotations

import asyncio
import logging
import sys
import threading
import traceback
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Tuple, Union

import numpy as np

from repro.serve.engine import (
    BatchPolicy,
    OverloadedError,
    ServeEngine,
    ServeEngineError,
)
from repro.serve.protocol import (
    ProtocolError,
    error_header,
    payload_to_words,
    read_frame,
    words_to_payload,
    write_frame,
)
from repro.serve.session import LinkConfig, LinkConfigError, LinkSession

logger = logging.getLogger("repro.serve")

#: ``op`` values the server answers.
OPS = (
    "ping", "create_link", "drop_link", "encode", "decode", "stats",
    "reset", "hello",
)

#: Responses remembered per client session (for reconnect replay).
SESSION_CACHE_LIMIT = 1024
#: Client sessions remembered per server (LRU beyond this).
MAX_CLIENT_SESSIONS = 64


def jsonable(value: Any) -> Any:
    """Recursively convert NumPy scalars/arrays for JSON serialization."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [jsonable(v) for v in value.tolist()]
    return value


class _SessionCache:
    """Recent and in-flight responses of one client session.

    A client that said ``hello`` with a session token may lose its
    connection after the server executed a request but before the
    response arrived. The cache answers the re-issued request with the
    *original* response instead of re-executing it — re-encoding would
    advance the codec history twice and corrupt the stream. Bounded LRU:
    a client window deeper than the bound cannot be replayed safely and
    surfaces as an ordinary unknown-request execution.

    The cache also tracks ids that are *still executing*: a reconnect
    can replay an id while the previous connection's dispatch task is
    mid-flight (the client's read timed out, but the server is merely
    slow), and only the responses of finished requests are in the LRU.
    :meth:`begin` hands such a replay the original's pending future so
    it waits for the one execution instead of starting a second.
    """

    def __init__(self, limit: int = SESSION_CACHE_LIMIT) -> None:
        self._responses: "OrderedDict[int, Tuple[Dict[str, Any], bytes]]" = (
            OrderedDict()
        )
        self._limit = limit
        self._inflight: Dict[
            int, "asyncio.Future[Tuple[Dict[str, Any], bytes]]"
        ] = {}

    def remember(
        self, request_id: Any, header: Dict[str, Any], payload: bytes
    ) -> None:
        if not isinstance(request_id, int):
            return
        self._responses[request_id] = (header, payload)
        self._responses.move_to_end(request_id)
        while len(self._responses) > self._limit:
            self._responses.popitem(last=False)

    def recall(
        self, request_id: Any
    ) -> Optional[Tuple[Dict[str, Any], bytes]]:
        if not isinstance(request_id, int):
            return None
        return self._responses.get(request_id)

    def begin(
        self, request_id: Any
    ) -> Optional["asyncio.Future[Tuple[Dict[str, Any], bytes]]"]:
        """Mark ``request_id`` as executing; owner must :meth:`complete`.

        Returns the original's pending future when the id is already in
        flight — the caller must answer from that future rather than
        execute the request a second time (exactly-once across replay).
        Returns ``None`` when the caller owns the (single) execution.
        """
        if not isinstance(request_id, int):
            return None
        pending = self._inflight.get(request_id)
        if pending is not None:
            return pending
        self._inflight[request_id] = (
            asyncio.get_running_loop().create_future()
        )
        return None

    def complete(
        self, request_id: Any, header: Dict[str, Any], payload: bytes
    ) -> None:
        """Record a finished execution and wake replay waiters.

        Retriable NACKs are deliberately *not* remembered: they promise
        the request was never applied, so its re-issue under the same id
        must execute fresh instead of being answered with the stale NACK
        forever.
        """
        if not header.get("retriable"):
            self.remember(request_id, header, payload)
        if not isinstance(request_id, int):
            return
        pending = self._inflight.pop(request_id, None)
        if pending is not None and not pending.done():
            pending.set_result((header, payload))


class _Connection:
    """Per-connection state threaded through the dispatch path."""

    __slots__ = ("session", "shed")

    def __init__(self) -> None:
        self.session: Optional[_SessionCache] = None
        #: link id -> client request ids shed with a retriable NACK whose
        #: re-issue has not been admitted yet. While non-empty the link's
        #: stream is *fenced* on this connection: every later data/reset
        #: request is shed too, so a pipelining client can re-issue the
        #: shed requests in id order without forking the codec history.
        self.shed: Dict[str, set] = {}


def _fence_admits(conn: _Connection, link: str, request_id: Any) -> bool:
    """Whether the connection's order fence lets this request through.

    Admitted: no fence on the link, or the in-order re-issue of the
    lowest shed id (which steps out of the fence). Everything else must
    be shed again — applying it would put it ahead of a request the
    client sent earlier but the server never applied, forking a stateful
    codec's history.
    """
    shed = conn.shed.get(link)
    if not shed:
        return True
    if (
        isinstance(request_id, int)
        and request_id in shed
        and request_id == min(shed)
    ):
        shed.discard(request_id)
        if not shed:
            del conn.shed[link]
        return True
    return False


def _fence_record(conn: _Connection, link: str, request_id: Any) -> None:
    """Mark ``request_id`` shed: the link is fenced until its re-issue."""
    if isinstance(request_id, int):
        conn.shed.setdefault(link, set()).add(request_id)


def _fence_nack(link: str, request_id: Any) -> Dict[str, Any]:
    """The retriable NACK answering a request the order fence shed."""
    return error_header(
        request_id,
        OverloadedError(
            f"link {link!r}: an earlier request of this stream was "
            f"shed; re-issue the shed requests in id order"
        ),
        retriable=True,
    )


class LinkServer:
    """One engine behind one listening socket (TCP or unix)."""

    def __init__(
        self,
        engine: Optional[ServeEngine] = None,
        policy: Optional[BatchPolicy] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        self.engine = engine or ServeEngine(
            policy=policy, max_workers=max_workers
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[Union[Tuple[str, int], str]] = None
        self._client_sessions: "OrderedDict[str, _SessionCache]" = (
            OrderedDict()
        )
        self._conn_tasks: "set[asyncio.Task[None]]" = set()

    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
    ) -> None:
        """Listen on ``path`` (unix socket) or ``host:port`` (TCP).

        ``port=0`` binds an ephemeral port; :attr:`address` holds the
        actual endpoint either way.
        """
        if path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_client, path=path
            )
            self.address = path
        else:
            self._server = await asyncio.start_server(
                self._handle_client, host=host, port=port
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        logger.info("serving coded links on %s", self.address)

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server not started")
        await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # wait_closed() does not cover handler coroutines on 3.11: a
        # client parked in read_frame would outlive the loop and leak a
        # GeneratorExit warning at GC. Cancel and reap them explicitly.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
            self._conn_tasks.clear()
        await self.engine.close()

    # -- connection handling ------------------------------------------------

    def _client_session(self, token: str) -> _SessionCache:
        """The (possibly new) response cache of client session ``token``."""
        session = self._client_sessions.get(token)
        if session is None:
            session = _SessionCache()
            self._client_sessions[token] = session
        self._client_sessions.move_to_end(token)
        while len(self._client_sessions) > MAX_CLIENT_SESSIONS:
            self._client_sessions.popitem(last=False)
        return session

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        me = asyncio.current_task()
        if me is not None:
            self._conn_tasks.add(me)
            me.add_done_callback(self._conn_tasks.discard)
        write_lock = asyncio.Lock()
        tasks = set()
        conn = _Connection()

        async def reply(
            header: Dict[str, Any], payload: bytes = b""
        ) -> None:
            # Best-effort: a peer that vanished mid-response loses the
            # frame, not the server. Session connections rely on this —
            # their in-flight tasks drain into the response cache after
            # the writer is gone, so the reconnecting client replays.
            try:
                async with write_lock:
                    await write_frame(writer, header, payload)
            except (ConnectionResetError, BrokenPipeError, OSError) as exc:
                logger.debug("response write failed: %s", exc)

        try:
            while True:
                try:
                    header, payload = await read_frame(reader)
                except EOFError:
                    break
                task = self._dispatch(header, payload, reply, conn)
                if task is not None:
                    tasks.add(task)
                    task.add_done_callback(tasks.discard)
        except (ProtocolError, ConnectionResetError) as exc:
            logger.warning("dropping connection: %s", exc)
        except asyncio.CancelledError:
            # close() reaps parked handlers; end the task cleanly so the
            # stream wrapper's done-callback doesn't log the cancel.
            pass
        finally:
            if conn.session is None:
                for task in list(tasks):
                    task.cancel()
            # else: let in-flight responses finish into the session
            # cache; their replies to the dead writer are swallowed.
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _dispatch(
        self,
        header: Dict[str, Any],
        payload: bytes,
        reply: Any,
        conn: Optional[_Connection] = None,
    ) -> Optional["asyncio.Task[None]"]:
        """Handle one request frame; returns the detached response task.

        Data-plane requests are enqueued synchronously *here*, in frame
        arrival order, before any await — that is what makes a client's
        stream order the codec's stream order.
        """
        request_id = header.get("id")
        op = header.get("op")
        loop = asyncio.get_running_loop()
        conn = conn or _Connection()
        session = conn.session

        if session is not None:
            cached = session.recall(request_id)
            if cached is not None:
                # Reconnect replay: the previous connection already
                # executed this id; answer with the original response.
                return loop.create_task(reply(cached[0], cached[1]))
            pending = session.begin(request_id)
            if pending is not None:
                # Replay raced the original (still executing, e.g. the
                # client's read timed out on a slow server): answer from
                # the one execution instead of starting a second, which
                # would advance the codec history twice.
                return loop.create_task(
                    self._answer_pending(pending, reply)
                )

        async def finish(
            response: Dict[str, Any], body: bytes = b""
        ) -> None:
            if session is not None:
                session.complete(request_id, response, body)
            await reply(response, body)

        async def fail(exc: Exception) -> None:
            await finish(error_header(request_id, exc))

        if session is not None and op in ("encode", "decode", "reset"):
            link_key = str(header.get("link"))
            if not _fence_admits(conn, link_key, request_id):
                _fence_record(conn, link_key, request_id)
                return loop.create_task(
                    finish(_fence_nack(link_key, request_id))
                )

        if op == "hello":
            token = header.get("session")
            if not isinstance(token, str) or not token:
                return loop.create_task(fail(
                    ValueError("hello needs a non-empty 'session' token")
                ))
            conn.session = self._client_session(token)
            return loop.create_task(reply({"id": request_id, "ok": True}))

        if op in ("encode", "decode"):
            link = header.get("link")
            deadline_s = header.get("deadline_s")
            if header.get("replay"):
                # Replayed requests were already accepted once; expiring
                # them now would fork the restored stream from history.
                deadline_s = None
            try:
                seq = header.get("seq")
                words = payload_to_words(payload)
                future = self.engine.enqueue(
                    str(link), op, words,
                    deadline_s=deadline_s,
                    seq=None if seq is None else int(seq),
                )
            except (
                ServeEngineError, ProtocolError, ValueError, TypeError
            ) as exc:
                if isinstance(exc, OverloadedError) and session is not None:
                    # Overload shed of a session (retrying) client: the
                    # request was never applied, so NACK it retriably —
                    # and fence the link so later pipelined requests are
                    # shed too and the re-issues land in stream order.
                    _fence_record(conn, str(link), request_id)
                    return loop.create_task(finish(
                        error_header(request_id, exc, retriable=True)
                    ))
                return loop.create_task(fail(exc))

            async def respond() -> None:
                try:
                    result = await future
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    await fail(exc)
                    return
                await finish(
                    {"id": request_id, "ok": True, "count": len(result)},
                    words_to_payload(result),
                )

            return loop.create_task(respond())
        return loop.create_task(
            self._control(op, header, request_id, finish, conn)
        )

    @staticmethod
    async def _answer_pending(
        pending: "asyncio.Future[Tuple[Dict[str, Any], bytes]]", reply: Any
    ) -> None:
        """Answer a replayed request from its original's future."""
        header, payload = await pending
        await reply(header, payload)

    async def _control(
        self,
        op: Optional[str],
        header: Dict[str, Any],
        request_id: Any,
        reply: Any,
        conn: Optional[_Connection] = None,
    ) -> None:
        try:
            result = await self._run_control(op, header)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # Always answer the frame — an unanswered id hangs blocking
            # clients. Expected errors are the client's fault; anything
            # else is a server bug worth a traceback in the log.
            if not isinstance(
                exc, (ServeEngineError, LinkConfigError, ValueError, KeyError)
            ):
                logger.exception("control op %r failed", op)
            # Overload NACKs are retriable on the control path too (a
            # fleet reset can be shed at the park limit): the request
            # was never applied and the client may re-issue it.
            retriable = isinstance(exc, OverloadedError)
            if (
                retriable
                and conn is not None
                and conn.session is not None
                and header.get("link") is not None
            ):
                _fence_record(conn, str(header["link"]), request_id)
            await reply(error_header(request_id, exc, retriable=retriable))
            return
        response = {"id": request_id, "ok": True}
        response.update(result)
        await reply(jsonable(response))

    async def _run_control(
        self, op: Optional[str], header: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == "ping":
            return {"links": self.engine.link_ids}
        if op == "create_link":
            link_id = str(header.get("link"))
            config = LinkConfig.from_dict(header.get("config"))
            # The first session on a geometry fits the capacitance
            # model; keep that off the event loop.
            session = await asyncio.get_running_loop().run_in_executor(
                None, LinkSession, config
            )
            self.engine.add_link(link_id, session)
            return {"link": link_id, "info": session.info()}
        if op == "drop_link":
            await self.engine.drop_link(str(header.get("link")))
            return {}
        if op == "stats":
            link = header.get("link")
            return {
                "stats": self.engine.stats(
                    None if link is None else str(link),
                    include_histogram=bool(header.get("latency_state")),
                )
            }
        if op == "reset":
            seq = header.get("seq")
            self.engine.session(str(header.get("link"))).reset(
                seq=None if seq is None else int(seq)
            )
            return {}
        raise ValueError(f"unknown op {op!r}; known: {list(OPS)}")


class BackgroundServer:
    """A :class:`LinkServer` on a private event loop in a daemon thread.

    .. code-block:: python

        with BackgroundServer() as server:
            client = LinkClient.connect(server.address)

    The context manager guarantees the server is accepting connections on
    entry and fully torn down (engine included) on exit.
    """

    def __init__(
        self,
        policy: Optional[BatchPolicy] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        path: Optional[str] = None,
        max_workers: Optional[int] = None,
        server_factory: Optional[Callable[[], Any]] = None,
        stop_timeout_s: float = 30.0,
    ) -> None:
        self._policy = policy
        self._host = host
        self._port = port
        self._path = path
        self._max_workers = max_workers
        #: Builds the server object on the loop thread. Anything with
        #: the LinkServer surface (async start/close, .address) works —
        #: the fleet front rides the same harness.
        self._server_factory = server_factory
        self._stop_timeout_s = float(stop_timeout_s)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Future] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._startup_error: Optional[BaseException] = None
        self.server: Optional[Any] = None

    @property
    def address(self) -> Union[Tuple[str, int], str]:
        if self.server is None or self.server.address is None:
            raise RuntimeError("server not running")
        return self.server.address

    def start(self) -> "BackgroundServer":
        if self._thread is not None:
            raise RuntimeError("already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-loop", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._main())
        finally:
            loop.close()

    async def _main(self) -> None:
        if self._server_factory is not None:
            server = self._server_factory()
        else:
            server = LinkServer(
                policy=self._policy, max_workers=self._max_workers
            )
        try:
            await server.start(
                host=self._host, port=self._port, path=self._path
            )
        except Exception as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self._stop = asyncio.get_running_loop().create_future()
        self._ready.set()
        try:
            await self._stop
        finally:
            await server.close()

    def stop(self) -> None:
        """Stop the loop and join its thread.

        Raises :class:`RuntimeError` — with the stuck thread's current
        stack — when the thread outlives ``stop_timeout_s``: a hung
        teardown must never masquerade as a clean stop (the daemon
        thread would keep mutating engine state behind the caller's
        back). The thread reference is kept so a later ``stop()`` can
        retry the join.
        """
        loop, stop = self._loop, self._stop
        if loop is None or self._thread is None:
            return
        thread = self._thread
        if stop is not None:
            def _finish() -> None:
                if not stop.done():
                    stop.set_result(None)
            try:
                loop.call_soon_threadsafe(_finish)
            except RuntimeError:
                # Loop already closed: the thread is past its teardown
                # (a retried stop() after a hang) — just join below.
                pass
        thread.join(timeout=self._stop_timeout_s)
        if thread.is_alive():
            frame = sys._current_frames().get(thread.ident)
            stack = (
                "".join(traceback.format_stack(frame))
                if frame is not None else "  <stack unavailable>\n"
            )
            message = (
                f"server thread {thread.name!r} still alive "
                f"{self._stop_timeout_s:.1f}s after stop was requested; "
                f"stuck at:\n{stack.rstrip()}"
            )
            logger.error("%s", message)
            raise RuntimeError(message)
        self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()


#: Signatures for the lint passes. The server has no shape/unit surface
#: of its own (payloads are typed at the session boundary); the entries
#: here declare its threading structure for the concurrency pass.
REPRO_SIGNATURES = {
    # The serve loop runs on the background thread; everything it touches
    # is event-loop-confined or handed over via call_soon_threadsafe.
    "@threads": ["BackgroundServer._run"],
}
