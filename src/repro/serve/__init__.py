"""Online serving layer for coded TSV links (``repro.serve``).

The offline transforms in :mod:`repro.coding` only pay off when applied to
a *live* data stream: the Gray-XNOR coder, the temporal correlator and the
invert codes all carry per-link history, and the energy argument of the
paper is about sustained traffic, not single arrays. This package turns
them into a serving subsystem with inference-stack bones:

:mod:`repro.serve.codecs`
    Stateful streaming codecs wrapping the offline array transforms, with
    guaranteed chunk-invariance (encoding a stream in arbitrary chunks is
    bit-identical to encoding it at once) and exact inverses.
:mod:`repro.serve.session`
    :class:`LinkSession` — binds a TSV geometry, a bit-to-TSV assignment
    and a codec chain; vectorized batch ``encode``/``decode`` with
    ``decode(encode(x)) == x``, plus online energy accounting.
:mod:`repro.serve.engine`
    :class:`ServeEngine` — asyncio micro-batching engine: coalesces queued
    requests into NumPy batches under a window/max-size policy, runs them
    on a worker pool, applies backpressure via a bounded queue with
    explicit load shedding and per-request deadlines.
:mod:`repro.serve.protocol` / :mod:`repro.serve.server` /
:mod:`repro.serve.client`
    Length-prefixed framed protocol over TCP or unix sockets: a JSON
    control channel and a binary int64 data plane, an asyncio server and
    a pipelining synchronous client.
:mod:`repro.serve.metrics`
    Per-link counters, latency histograms (p50/p95/p99), queue depth and
    throughput meters, and the :class:`EnergyAccount` that prices every
    encoded batch with :class:`~repro.core.fastpower.CompiledPowerModel`
    so a live link reports coded-vs-uncoded power savings that match the
    offline model bit for bit.
:mod:`repro.serve.fleet` / :mod:`repro.serve.worker`
    Multi-process serving: :class:`FleetServer` consistently hashes
    links onto a pool of worker processes and survives worker crashes
    with *exact* failover — journaled requests, epoch snapshots of the
    codec/energy state, and post-snapshot replay keep round trips and
    energy accounting bit-identical across a mid-stream worker kill.

See ``docs/serving.md`` for the wire protocol, the batching and
backpressure policy and the metrics schema, and ``docs/robustness.md``
for the failover guarantees.
"""

from repro.serve.codecs import (
    BusInvertCodec,
    CacCodec,
    CodecChain,
    CorrelatorCodec,
    CouplingInvertCodec,
    GrayCodec,
    StreamCodec,
    build_chain,
    build_codec,
    parse_codec_spec,
)
from repro.serve.engine import (
    BatchPolicy,
    DeadlineExceededError,
    EngineClosedError,
    OverloadedError,
    ServeEngine,
    UnknownLinkError,
)
from repro.serve.metrics import (
    EnergyAccount,
    LatencyHistogram,
    LinkMetrics,
    merge_latency_states,
)
from repro.serve.session import LinkConfig, LinkConfigError, LinkSession
from repro.serve.server import BackgroundServer, LinkServer
from repro.serve.client import LinkClient, ServeError
from repro.serve.fleet import FleetServer, worker_for
from repro.serve.worker import WorkerServer

__all__ = [
    "BackgroundServer",
    "BatchPolicy",
    "BusInvertCodec",
    "CacCodec",
    "CodecChain",
    "CorrelatorCodec",
    "CouplingInvertCodec",
    "DeadlineExceededError",
    "EnergyAccount",
    "EngineClosedError",
    "FleetServer",
    "GrayCodec",
    "LatencyHistogram",
    "LinkClient",
    "LinkConfig",
    "LinkConfigError",
    "LinkMetrics",
    "LinkServer",
    "LinkSession",
    "OverloadedError",
    "ServeEngine",
    "ServeError",
    "StreamCodec",
    "UnknownLinkError",
    "WorkerServer",
    "build_chain",
    "build_codec",
    "merge_latency_states",
    "parse_codec_spec",
    "worker_for",
]
