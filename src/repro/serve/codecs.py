"""Stateful streaming codecs over the offline :mod:`repro.coding` transforms.

The offline functions transform a complete word stream at once; a serving
link sees the same stream in arbitrary request-sized chunks. Each codec
here carries exactly the history its scheme needs across chunk boundaries
(the correlator's previous same-channel words, the invert codes' last
transmitted bus state) so that

* **chunk invariance** holds: encoding a stream chunk by chunk, under any
  split, is bit-identical to the offline transform of the whole stream;
* **exact inversion** holds: ``decode(encode(x)) == x`` for every codec
  and every chain of codecs, with the decode side keeping its own
  independent history (one codec instance can serve both directions of
  the same link).

Invert-code flags travel *in band*: the flag occupies bit ``width`` of
the coded word (the MSB-adjacent line, matching
:func:`repro.coding.businvert.coded_bit_stream`), so every codec is a
plain ``words -> words`` map and codecs compose into a
:class:`CodecChain`.

Codecs are built from JSON-able *specs* (``{"kind": "gray",
"negated": true}``); :func:`parse_codec_spec` additionally accepts the
CLI shorthand ``"correlator:channels=4,negated"``.

Every codec encodes a chunk as NumPy batch kernels — no per-word Python
loop. The gray/correlator transforms are array ops outright; the invert
codes' sequential decisions collapse to :func:`_invert_state_walk`, a
prefix scan over the one-bit decision state. The per-word reference
loops are retained (``_encode_scalar``) and proven bit-identical by the
parity suite; ``REPRO_SCALAR_CODECS=1`` swaps them back in.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.coding.businvert import (
    _popcount,
    coupling_transition_cost,
    coupling_transition_costs,
)
from repro.tsv.geometry import TSVArrayGeometry

#: Widest word the int64 codecs support; wider streams must be split
#: across links (see the width guard in ``repro.coding``).
MAX_WORD_WIDTH = 62

#: Widest bus for which the coupling-invert codec precomputes its
#: transition-cost table (``(2^(w+1))^2`` int8 entries; 10 lines = 1 MiB).
_MAX_COST_TABLE_LINES = 10

#: Widest bus for which the bus-invert codec precomputes its popcount
#: table (``2^w`` int64 entries; 20 bits = 8 MiB).
_MAX_POPCOUNT_TABLE_BITS = 20


def _check_words(words: np.ndarray, width: int) -> np.ndarray:
    """Validate a 1-D unsigned word chunk for ``width``-bit transport."""
    if not 1 <= width <= MAX_WORD_WIDTH:
        raise ValueError(
            f"width must be in 1..{MAX_WORD_WIDTH}, got {width}"
        )
    words = np.asarray(words)
    if words.ndim != 1:
        raise ValueError(f"word stream must be 1-D, got {words.ndim}-D")
    if not np.issubdtype(words.dtype, np.integer):
        raise ValueError(f"word stream must be integer, got {words.dtype}")
    words = words.astype(np.int64)
    if len(words) and ((words < 0) | (words >= (1 << width))).any():
        raise ValueError(f"words outside unsigned range for width {width}")
    return words


def _use_scalar_kernels() -> bool:
    """Whether codecs should run their per-word reference loops.

    The batch kernels below are bit-identical to the scalar loops (the
    parity suite in ``tests/serve/test_codec_parity.py`` proves it on
    random words, widths and chunk splits), but the loops remain the
    ground truth: set ``REPRO_SCALAR_CODECS=1`` to serve through them,
    e.g. to bisect a suspect kernel on a very wide bus.
    """
    return os.environ.get("REPRO_SCALAR_CODECS", "") not in ("", "0")


def _state_int(
    state: Mapping[str, object], key: str, lo: int, hi: int
) -> int:
    """One validated integer field of a codec state snapshot."""
    try:
        value = state[key]
    except KeyError:
        raise ValueError(f"codec state is missing field {key!r}") from None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(
            f"codec state field {key!r} must be an int, got {value!r}"
        )
    if not lo <= value <= hi:
        raise ValueError(
            f"codec state field {key!r} must be in {lo}..{hi}, got {value}"
        )
    return int(value)


def _state_bool(state: Mapping[str, object], key: str) -> bool:
    """One validated boolean field of a codec state snapshot."""
    try:
        value = state[key]
    except KeyError:
        raise ValueError(f"codec state is missing field {key!r}") from None
    if not isinstance(value, bool):
        raise ValueError(
            f"codec state field {key!r} must be a bool, got {value!r}"
        )
    return value


def _state_int_list(
    state: Mapping[str, object], key: str, length: int, lo: int, hi: int
) -> np.ndarray:
    """One validated per-channel integer list of a codec state snapshot."""
    try:
        value = state[key]
    except KeyError:
        raise ValueError(f"codec state is missing field {key!r}") from None
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ValueError(f"codec state field {key!r} must be a list")
    if len(value) != length:
        raise ValueError(
            f"codec state field {key!r} must have {length} entries, "
            f"got {len(value)}"
        )
    out = np.empty(length, dtype=np.int64)
    for index, item in enumerate(value):
        if isinstance(item, bool) or not isinstance(item, int):
            raise ValueError(
                f"codec state field {key!r}[{index}] must be an int, "
                f"got {item!r}"
            )
        if not lo <= item <= hi:
            raise ValueError(
                f"codec state field {key!r}[{index}] must be in "
                f"{lo}..{hi}, got {item}"
            )
        out[index] = item
    return out


def _state_bool_list(
    state: Mapping[str, object], key: str, length: int
) -> np.ndarray:
    """One validated per-channel boolean list of a codec state snapshot."""
    try:
        value = state[key]
    except KeyError:
        raise ValueError(f"codec state is missing field {key!r}") from None
    if not isinstance(value, Sequence) or isinstance(value, (str, bytes)):
        raise ValueError(f"codec state field {key!r} must be a list")
    if len(value) != length:
        raise ValueError(
            f"codec state field {key!r} must have {length} entries, "
            f"got {len(value)}"
        )
    out = np.empty(length, dtype=bool)
    for index, item in enumerate(value):
        if not isinstance(item, bool):
            raise ValueError(
                f"codec state field {key!r}[{index}] must be a bool, "
                f"got {item!r}"
            )
        out[index] = item
    return out


def _invert_state_walk(
    if_plain: np.ndarray, if_inverted: np.ndarray, carry: bool
) -> np.ndarray:
    """Resolve a chain of sequential invert decisions in O(T) array ops.

    The invert codes decide per word whether to transmit the complement,
    and each decision conditions on the *previous* decision (through the
    previously transmitted bus state). That recurrence looks inherently
    serial, but the state is a single bit, so word ``t`` is fully
    described by two precomputable booleans: ``if_plain[t]`` /
    ``if_inverted[t]``, its decision assuming word ``t - 1`` went out
    plain / inverted (position 0 conditions on ``carry``, the flag that
    crossed the chunk boundary). Each position is then one of four
    transfer functions of the previous flag — constant 0, constant 1,
    hold, or toggle — and composing transfer functions collapses to a
    prefix scan: an XOR-parity accumulate over the toggles, re-anchored
    at each position's most recent *constant* (found with a running
    ``np.int64`` maximum over constant positions).
    """
    toggle = if_plain & ~if_inverted
    parity = np.bitwise_xor.accumulate(toggle)
    constant = if_plain == if_inverted
    positions = np.where(
        constant, np.arange(len(if_plain), dtype=np.int64), np.int64(-1)
    )
    anchor = np.maximum.accumulate(positions)
    anchored = anchor >= 0
    idx = np.maximum(anchor, 0)
    base = np.where(anchored, if_plain[idx], np.bool_(carry))
    base_parity = np.where(anchored, parity[idx], np.bool_(False))
    return base ^ parity ^ base_parity


class StreamCodec:
    """One stage of a streaming codec chain.

    Concrete codecs define :attr:`width_in`/:attr:`width_out` (payload and
    coded word widths) and implement chunk-wise :meth:`encode` /
    :meth:`decode`. Encode-side and decode-side history are independent.
    """

    #: Spec ``kind`` of this codec (registry key).
    kind: str = ""

    def __init__(self, width_in: int, width_out: int) -> None:
        self.width_in = int(width_in)
        self.width_out = int(width_out)

    def encode(self, words: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def decode(self, words: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop both directions' histories (start of a new stream)."""

    def spec(self) -> Dict[str, object]:
        """The JSON-able spec reconstructing this codec."""
        return {"kind": self.kind}

    # -- state round-trip ---------------------------------------------------
    #
    # Failover (see ``repro.serve.fleet``) moves a link between worker
    # processes by snapshotting *exactly* the history each codec carries
    # across chunk boundaries.  ``state_dict`` must therefore return a
    # JSON-able dict of plain ints/bools (JSON round-trips those exactly)
    # and ``load_state_dict`` must rebuild a codec whose next chunk is
    # bit-identical to the next chunk of the snapshotted one.

    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the codec's streaming history.

        Stateless codecs return ``{}``; every entry of a stateful codec's
        dict is an int or bool so the snapshot survives JSON and the
        checkpoint store without any loss.
        """
        return {}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot; exact inverse of it.

        Raises :class:`ValueError` when the snapshot does not fit this
        codec (wrong fields, wrong channel count, out-of-range words).
        """
        if not isinstance(state, Mapping):
            raise ValueError(
                f"codec state must be a mapping, got {type(state).__name__}"
            )
        if state:
            raise ValueError(
                f"{self.kind} codec carries no state, got fields "
                f"{sorted(state)}"
            )


class GrayCodec(StreamCodec):
    """Binary <-> Gray conversion; stateless (``y = x ^ (x >> 1)``).

    ``negated=True`` is the paper's Sec. 6 XNOR variant.
    """

    kind = "gray"

    def __init__(self, width: int, negated: bool = False) -> None:
        super().__init__(width, width)
        self.negated = bool(negated)

    def encode(self, words: np.ndarray) -> np.ndarray:
        from repro.coding.gray import gray_encode_words

        return gray_encode_words(
            _check_words(words, self.width_in), self.width_in,
            negated=self.negated,
        )

    def decode(self, words: np.ndarray) -> np.ndarray:
        from repro.coding.gray import gray_decode_words

        return gray_decode_words(
            _check_words(words, self.width_out), self.width_out,
            negated=self.negated,
        )

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind, "negated": self.negated}


class CorrelatorCodec(StreamCodec):
    """Temporal XOR (de)correlator with per-channel history (paper Sec. 7).

    Each word is XORed with the previous word of the same mux channel;
    the overall first word of each channel passes through unchanged (and,
    with ``negated=True``, un-negated — matching
    :func:`repro.coding.correlator.correlate_words` on the whole stream).
    """

    kind = "correlator"

    def __init__(
        self, width: int, n_channels: int = 1, negated: bool = False
    ) -> None:
        if n_channels < 1:
            raise ValueError(f"n_channels must be >= 1, got {n_channels}")
        super().__init__(width, width)
        self.n_channels = int(n_channels)
        self.negated = bool(negated)
        self.reset()

    def reset(self) -> None:
        nc = self.n_channels
        self._enc_prev = np.zeros(nc, dtype=np.int64)
        self._enc_primed = np.zeros(nc, dtype=bool)
        self._enc_phase = 0
        self._dec_prev = np.zeros(nc, dtype=np.int64)
        self._dec_primed = np.zeros(nc, dtype=bool)
        self._dec_phase = 0

    def encode(self, words: np.ndarray) -> np.ndarray:
        words = _check_words(words, self.width_in)
        length = len(words)
        if length == 0:
            return words
        nc = self.n_channels
        mask = (1 << self.width_in) - 1
        # Chunk position i (< nc) belongs to channel (phase + i) % nc; the
        # first nc positions pull their predecessor from the carried
        # per-channel history, everything after from the chunk itself.
        head = min(nc, length)
        head_channels = (self._enc_phase + np.arange(head)) % nc
        primed = self._enc_primed[head_channels]
        prev = np.empty(length, dtype=np.int64)
        prev[:head] = np.where(primed, self._enc_prev[head_channels], 0)
        if length > nc:
            prev[nc:] = words[:-nc]
        out = words ^ prev
        if self.negated:
            out ^= mask
            # The overall first word of each channel passes un-negated.
            out[np.flatnonzero(~primed)] ^= mask
        # The last occurrence of each channel in the chunk sits in the
        # final min(nc, length) positions, one position per channel; those
        # words become the carried history.
        last = length - 1 - np.arange(head)
        last_channels = (self._enc_phase + last) % nc
        self._enc_prev[last_channels] = words[last]
        self._enc_primed[last_channels] = True
        self._enc_phase = (self._enc_phase + length) % nc
        return out

    def decode(self, coded: np.ndarray) -> np.ndarray:
        coded = _check_words(coded, self.width_out)
        length = len(coded)
        if length == 0:
            return coded
        nc = self.n_channels
        mask = (1 << self.width_out) - 1
        head = min(nc, length)
        head_channels = (self._dec_phase + np.arange(head)) % nc
        primed = self._dec_primed[head_channels]
        if self.negated:
            values = coded ^ mask
            # The overall first word of each channel arrived un-negated.
            values[np.flatnonzero(~primed)] ^= mask
        else:
            values = coded
        # Decoding is a per-channel running XOR of the (un-negated) coded
        # words: ``x[t] = y'[t] ^ x[t - nc]`` telescopes to an XOR prefix
        # scan with the stored channel history as carry-in. Laid out as a
        # zero-padded (rounds, nc) grid — column j is channel
        # (phase + j) % nc — all channels scan in one accumulate, with the
        # histories as row 0.
        rounds = -(-length // nc)
        grid = np.zeros((rounds + 1, nc), dtype=np.int64)
        grid[0, :head] = np.where(primed, self._dec_prev[head_channels], 0)
        grid[1:].reshape(-1)[:length] = values
        out = np.bitwise_xor.accumulate(grid, axis=0)[1:].reshape(-1)[:length]
        last = length - 1 - np.arange(head)
        last_channels = (self._dec_phase + last) % nc
        self._dec_prev[last_channels] = out[last]
        self._dec_primed[last_channels] = True
        self._dec_phase = (self._dec_phase + length) % nc
        return out

    def spec(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "n_channels": self.n_channels,
            "negated": self.negated,
        }

    def state_dict(self) -> Dict[str, object]:
        return {
            "enc_prev": [int(x) for x in self._enc_prev],
            "enc_primed": [bool(x) for x in self._enc_primed],
            "enc_phase": int(self._enc_phase),
            "dec_prev": [int(x) for x in self._dec_prev],
            "dec_primed": [bool(x) for x in self._dec_primed],
            "dec_phase": int(self._dec_phase),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        if not isinstance(state, Mapping):
            raise ValueError(
                f"codec state must be a mapping, got {type(state).__name__}"
            )
        nc = self.n_channels
        top = (1 << self.width_in) - 1
        enc_prev = _state_int_list(state, "enc_prev", nc, 0, top)
        enc_primed = _state_bool_list(state, "enc_primed", nc)
        enc_phase = _state_int(state, "enc_phase", 0, nc - 1)
        dec_prev = _state_int_list(state, "dec_prev", nc, 0, top)
        dec_primed = _state_bool_list(state, "dec_primed", nc)
        dec_phase = _state_int(state, "dec_phase", 0, nc - 1)
        self._enc_prev = enc_prev
        self._enc_primed = enc_primed
        self._enc_phase = enc_phase
        self._dec_prev = dec_prev
        self._dec_primed = dec_primed
        self._dec_phase = dec_phase


class BusInvertCodec(StreamCodec):
    """Classic bus-invert with the flag in band on line ``width``.

    The per-word decision — invert when ``2 * distance > width``, the
    integer tie-exact form of "Hamming distance to the previously
    *transmitted* word exceeds ``width / 2``" — conditions on the
    previous decision, but only through one bit (whether word ``t - 1``
    went out inverted), so a chunk encodes as a batch kernel: the raw
    word-to-word distances price both branches of every decision at once
    (popcount table for buses up to ``_MAX_POPCOUNT_TABLE_BITS`` bits,
    SWAR popcount beyond) and :func:`_invert_state_walk` resolves the
    decision chain without a Python loop. :meth:`_encode_scalar` keeps
    the reference loop (see :func:`_use_scalar_kernels`).
    """

    kind = "businvert"

    def __init__(self, width: int) -> None:
        if width >= MAX_WORD_WIDTH:
            raise ValueError(
                f"bus-invert adds a flag line; width must be < "
                f"{MAX_WORD_WIDTH}, got {width}"
            )
        super().__init__(width, width + 1)
        self._popcount: Optional[np.ndarray] = None
        if width <= _MAX_POPCOUNT_TABLE_BITS:
            self._popcount = np.asarray(
                _popcount(np.arange(1 << width, dtype=np.int64)),
                dtype=np.int64,
            )
        self._scalar = _use_scalar_kernels()
        self.reset()

    def reset(self) -> None:
        self._enc_prev = 0  # previously transmitted data word
        self._enc_flag = False  # whether it was the complement

    def encode(self, words: np.ndarray) -> np.ndarray:
        words = _check_words(words, self.width_in)
        if self._scalar or len(words) == 0:
            return self._encode_scalar(words)
        width = self.width_in
        mask = (1 << width) - 1
        flag_bit = 1 << width
        # Distances between consecutive *raw* words; position 0 uses the
        # carried word with its inversion undone. The distance to the
        # actually transmitted predecessor is then ``d`` or ``width - d``
        # depending on the previous flag — which is exactly the two-branch
        # input of the state walk.
        prev_raw = np.empty(len(words), dtype=np.int64)
        prev_raw[0] = self._enc_prev ^ (mask if self._enc_flag else 0)
        prev_raw[1:] = words[:-1]
        diff = prev_raw ^ words
        if self._popcount is not None:
            doubled = 2 * self._popcount[diff]
        else:
            doubled = 2 * _popcount(diff)
        invert = _invert_state_walk(
            doubled > width, doubled < width, self._enc_flag
        )
        out = np.where(invert, (words ^ mask) | flag_bit, words)
        self._enc_prev = int(out[-1]) & mask
        self._enc_flag = bool(invert[-1])
        return out

    def _encode_scalar(self, words: np.ndarray) -> np.ndarray:
        """Reference per-word loop; bit-identical to the batch kernel."""
        width = self.width_in
        mask = (1 << width) - 1
        popcount = self._popcount
        out = np.empty(len(words), dtype=np.int64)
        previous = self._enc_prev
        flag = self._enc_flag
        flag_bit = 1 << width
        for t, word in enumerate(map(int, words)):
            if popcount is not None:
                distance = int(popcount[previous ^ word])
            else:
                distance = bin(previous ^ word).count("1")
            if 2 * distance > width:
                previous = word ^ mask
                flag = True
                out[t] = previous | flag_bit
            else:
                previous = word
                flag = False
                out[t] = word
        self._enc_prev = previous
        self._enc_flag = flag
        return out

    def decode(self, coded: np.ndarray) -> np.ndarray:
        coded = _check_words(coded, self.width_out)
        width = self.width_in
        mask = (1 << width) - 1
        flags = coded >> width
        return (coded & mask) ^ (flags * mask)

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind}

    def state_dict(self) -> Dict[str, object]:
        return {
            "enc_prev": int(self._enc_prev),
            "enc_flag": bool(self._enc_flag),
        }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        if not isinstance(state, Mapping):
            raise ValueError(
                f"codec state must be a mapping, got {type(state).__name__}"
            )
        top = (1 << self.width_in) - 1
        enc_prev = _state_int(state, "enc_prev", 0, top)
        enc_flag = _state_bool(state, "enc_flag")
        self._enc_prev = enc_prev
        self._enc_flag = enc_flag


def _coupling_cost_table(n_lines: int) -> np.ndarray:
    """All-pairs planar coupling costs for an ``n_lines``-bit bus state.

    ``table[prev, cur]`` equals
    :func:`repro.coding.businvert.coupling_transition_cost` — adjacent
    wires toggling in opposite directions cost 2, a lone toggle next to a
    quiet wire costs 1, everything else is free.
    """
    size = 1 << n_lines
    shifts = np.arange(n_lines, dtype=np.int64)
    prev_bits = ((np.arange(size, dtype=np.int64)[:, None] >> shifts) & 1)
    delta = (
        prev_bits[None, :, :].astype(np.int8)
        - prev_bits[:, None, :].astype(np.int8)
    )
    da, db = delta[:, :, :-1], delta[:, :, 1:]
    opposite = (da.astype(np.int16) * db.astype(np.int16)) == -1
    lone = (da != 0) ^ (db != 0)
    return (2 * opposite + lone).sum(axis=2, dtype=np.int64)


class CouplingInvertCodec(StreamCodec):
    """Coupling-driven invert (the paper's NoC code, ref [24]), flag in band.

    Minimizes the planar crosstalk cost of each bus transition, counting
    the flag wire adjacent to the MSB exactly as
    :func:`repro.coding.businvert.coupling_invert_encode` does. Encoding
    runs as a batch kernel over the one-bit decision chain (see
    :func:`_invert_state_walk`): for buses up to ``_MAX_COST_TABLE_LINES``
    lines the costs come from a precomputed table, wider buses use the
    vectorized :func:`~repro.coding.businvert.coupling_transition_costs`
    bit tricks. :meth:`_encode_scalar` keeps the reference loop (see
    :func:`_use_scalar_kernels`).
    """

    kind = "couplinginvert"

    def __init__(self, width: int) -> None:
        if width >= MAX_WORD_WIDTH:
            raise ValueError(
                f"coupling-invert adds a flag line; width must be < "
                f"{MAX_WORD_WIDTH}, got {width}"
            )
        super().__init__(width, width + 1)
        self._table: Optional[np.ndarray] = None
        if width + 1 <= _MAX_COST_TABLE_LINES:
            self._table = _coupling_cost_table(width + 1)
        self._scalar = _use_scalar_kernels()
        self.reset()

    def reset(self) -> None:
        self._enc_prev = 0  # bus state including the flag as bit `width`

    def encode(self, words: np.ndarray) -> np.ndarray:
        words = _check_words(words, self.width_in)
        if self._scalar or len(words) == 0:
            return self._encode_scalar(words)
        width = self.width_in
        mask = (1 << width) - 1
        flag_bit = 1 << width
        # Word t's predecessor on the bus is one of two known states —
        # word t-1 plain, or complemented with the flag raised — so both
        # branches of every cost comparison price in batch (four table
        # gathers, or four vectorized cost passes on wide buses) and the
        # one-bit decision chain resolves with the state walk. Position 0
        # compares against the carried bus state on both branches, making
        # it a constant of the walk.
        plain = words
        inverted = (words ^ mask) | flag_bit
        prev_plain = np.empty(len(words), dtype=np.int64)
        prev_inverted = np.empty(len(words), dtype=np.int64)
        prev_plain[0] = prev_inverted[0] = self._enc_prev
        prev_plain[1:] = plain[:-1]
        prev_inverted[1:] = inverted[:-1]
        table = self._table
        if table is not None:
            if_plain = table[prev_plain, inverted] < table[prev_plain, plain]
            if_inverted = (
                table[prev_inverted, inverted] < table[prev_inverted, plain]
            )
        else:
            lines = width + 1
            if_plain = (
                coupling_transition_costs(prev_plain, inverted, lines)
                < coupling_transition_costs(prev_plain, plain, lines)
            )
            if_inverted = (
                coupling_transition_costs(prev_inverted, inverted, lines)
                < coupling_transition_costs(prev_inverted, plain, lines)
            )
        invert = _invert_state_walk(if_plain, if_inverted, False)
        out = np.where(invert, inverted, plain)
        self._enc_prev = int(out[-1])
        return out

    def _encode_scalar(self, words: np.ndarray) -> np.ndarray:
        """Reference per-word loop; bit-identical to the batch kernel."""
        width = self.width_in
        mask = (1 << width) - 1
        flag_bit = 1 << width
        out = np.empty(len(words), dtype=np.int64)
        previous = self._enc_prev
        table = self._table
        if table is not None:
            for t, word in enumerate(map(int, words)):
                row = table[previous]
                inverted = (word ^ mask) | flag_bit
                if row[inverted] < row[word]:
                    previous = inverted
                else:
                    previous = word
                out[t] = previous
        else:
            for t, word in enumerate(map(int, words)):
                inverted = (word ^ mask) | flag_bit
                if (coupling_transition_cost(previous, inverted, width + 1)
                        < coupling_transition_cost(previous, word, width + 1)):
                    previous = inverted
                else:
                    previous = word
                out[t] = previous
        self._enc_prev = previous
        return out

    def decode(self, coded: np.ndarray) -> np.ndarray:
        coded = _check_words(coded, self.width_out)
        width = self.width_in
        mask = (1 << width) - 1
        flags = coded >> width
        return (coded & mask) ^ (flags * mask)

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind}

    def state_dict(self) -> Dict[str, object]:
        return {"enc_prev": int(self._enc_prev)}

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        if not isinstance(state, Mapping):
            raise ValueError(
                f"codec state must be a mapping, got {type(state).__name__}"
            )
        # The carried bus state includes the in-band flag as bit `width`.
        self._enc_prev = _state_int(
            state, "enc_prev", 0, (1 << self.width_out) - 1
        )


class CacCodec(StreamCodec):
    """Crosstalk-avoidance codebook lookup for one TSV array geometry.

    Builds (and caches per geometry) the greedy LAT codebook of
    :func:`repro.coding.cac.build_lat_codebook`; payloads map to codeword
    integers over all ``n_tsvs`` lines. Stateless; decode of a
    non-codeword raises :class:`ValueError`.
    """

    kind = "cac"

    _codebook_cache: Dict[tuple, object] = {}
    _cache_lock = threading.Lock()

    def __init__(
        self, geometry: TSVArrayGeometry, include_diagonal: bool = False
    ) -> None:
        from repro.coding.cac import build_lat_codebook

        key = (geometry.cache_key(), bool(include_diagonal))
        with self._cache_lock:
            codebook = self._codebook_cache.get(key)
        if codebook is None:
            # Build outside the lock: LAT construction is seconds-slow for
            # big arrays and must not serialize unrelated links. Losing a
            # duplicate-build race is fine; setdefault keeps one winner.
            built = build_lat_codebook(
                geometry, include_diagonal=include_diagonal
            )
            with self._cache_lock:
                codebook = self._codebook_cache.setdefault(key, built)
        if codebook.payload_bits < 1:
            raise ValueError("codebook carries no payload bits")
        super().__init__(codebook.payload_bits, codebook.n_lines)
        self.codebook = codebook
        self.include_diagonal = bool(include_diagonal)
        self._table = np.asarray(codebook.codewords, dtype=np.int64)
        self._inverse = np.full(1 << codebook.n_lines, -1, dtype=np.int64)
        self._inverse[self._table] = np.arange(
            len(codebook.codewords), dtype=np.int64
        )

    def encode(self, words: np.ndarray) -> np.ndarray:
        words = _check_words(words, self.width_in)
        return self._table[words]

    def decode(self, coded: np.ndarray) -> np.ndarray:
        coded = _check_words(coded, self.width_out)
        payload = self._inverse[coded]
        if (payload < 0).any():
            bad = coded[payload < 0][0]
            raise ValueError(f"not a codeword: {int(bad)}")
        # Table order assigns payloads beyond 2**payload_bits to the
        # greedy surplus codewords; transport never emits them.
        return payload

    def spec(self) -> Dict[str, object]:
        return {"kind": self.kind, "include_diagonal": self.include_diagonal}


#: Codec registry: spec ``kind`` -> constructor wrapper.
CODEC_KINDS = ("gray", "correlator", "businvert", "couplinginvert", "cac")


def build_codec(
    spec: Mapping[str, object],
    width_in: int,
    geometry: Optional[TSVArrayGeometry] = None,
) -> StreamCodec:
    """Build one codec from its JSON-able spec at a given input width."""
    if not isinstance(spec, Mapping):
        raise ValueError(f"codec spec must be a mapping, got {type(spec)}")
    fields = dict(spec)
    kind = fields.pop("kind", None)
    if kind == "gray":
        codec: StreamCodec = GrayCodec(
            width_in, negated=bool(fields.pop("negated", False))
        )
    elif kind == "correlator":
        codec = CorrelatorCodec(
            width_in,
            n_channels=int(fields.pop("n_channels", 1)),
            negated=bool(fields.pop("negated", False)),
        )
    elif kind == "businvert":
        codec = BusInvertCodec(width_in)
    elif kind == "couplinginvert":
        codec = CouplingInvertCodec(width_in)
    elif kind == "cac":
        if geometry is None:
            raise ValueError("cac codec needs the link geometry")
        codec = CacCodec(
            geometry,
            include_diagonal=bool(fields.pop("include_diagonal", False)),
        )
        if codec.width_in != width_in:
            raise ValueError(
                f"cac codebook on this geometry carries {codec.width_in} "
                f"payload bits, but the chain arrives with {width_in}"
            )
    else:
        raise ValueError(
            f"unknown codec kind {kind!r}; known: {CODEC_KINDS}"
        )
    if fields:
        raise ValueError(
            f"unknown {kind} codec options: {sorted(fields)}"
        )
    return codec


class CodecChain:
    """An ordered stack of streaming codecs applied payload -> line side.

    ``encode`` folds the chunk through every codec in order; ``decode``
    unwinds in reverse. Chunk invariance and exact inversion compose.
    """

    def __init__(self, codecs: Sequence[StreamCodec], width_in: int) -> None:
        self.codecs = list(codecs)
        self.width_in = int(width_in)
        width = int(width_in)
        for codec in self.codecs:
            if codec.width_in != width:
                raise ValueError(
                    f"codec {codec.kind} expects width {codec.width_in}, "
                    f"chain arrives with {width}"
                )
            width = codec.width_out
        self.width_out = width

    def encode(self, words: np.ndarray) -> np.ndarray:
        out = _check_words(words, self.width_in)
        for codec in self.codecs:
            out = codec.encode(out)
        return out

    def decode(self, words: np.ndarray) -> np.ndarray:
        out = _check_words(words, self.width_out)
        for codec in reversed(self.codecs):
            out = codec.decode(out)
        return out

    def reset(self) -> None:
        for codec in self.codecs:
            codec.reset()

    def specs(self) -> List[Dict[str, object]]:
        return [codec.spec() for codec in self.codecs]

    def state_dict(self) -> List[Dict[str, object]]:
        """Per-codec streaming histories, payload -> line-side order.

        Each entry carries the codec's ``kind`` so a restore onto a
        differently-configured chain fails loudly instead of silently
        misinterpreting another codec's fields.
        """
        return [
            {"kind": codec.kind, "state": codec.state_dict()}
            for codec in self.codecs
        ]

    def load_state_dict(self, state: Sequence[Mapping[str, object]]) -> None:
        """Restore a :meth:`state_dict` snapshot into this chain."""
        if isinstance(state, (str, bytes)) or not isinstance(state, Sequence):
            raise ValueError("chain state must be a list of codec states")
        if len(state) != len(self.codecs):
            raise ValueError(
                f"chain state has {len(state)} codec entries, chain has "
                f"{len(self.codecs)} codecs"
            )
        previous = self.state_dict()
        try:
            for index, (codec, entry) in enumerate(zip(self.codecs, state)):
                if not isinstance(entry, Mapping):
                    raise ValueError(
                        f"chain state entry {index} must be a mapping"
                    )
                kind = entry.get("kind")
                if kind != codec.kind:
                    raise ValueError(
                        f"chain state entry {index} is for codec kind "
                        f"{kind!r}, chain has {codec.kind!r}"
                    )
                codec.load_state_dict(entry.get("state", {}))
        except ValueError:
            # A later entry failing must not leave the chain half-restored;
            # the pre-load state is known-good, so rolling back cannot fail.
            for codec, entry in zip(self.codecs, previous):
                codec.load_state_dict(entry["state"])
            raise


def build_chain(
    specs: Sequence[Mapping[str, object]],
    width_in: int,
    geometry: Optional[TSVArrayGeometry] = None,
) -> CodecChain:
    """Build a :class:`CodecChain` from a list of codec specs."""
    codecs: List[StreamCodec] = []
    width = int(width_in)
    for spec in specs:
        codec = build_codec(spec, width, geometry=geometry)
        codecs.append(codec)
        width = codec.width_out
    return CodecChain(codecs, width_in)


def parse_codec_spec(text: str) -> Dict[str, object]:
    """Parse the CLI shorthand ``kind[:opt[=value],...]`` into a spec dict.

    ``"gray:negated"`` -> ``{"kind": "gray", "negated": True}``;
    ``"correlator:n_channels=4,negated"`` sets integer options by value.
    """
    head, _, rest = text.strip().partition(":")
    if not head:
        raise ValueError("empty codec spec")
    spec: Dict[str, object] = {"kind": head}
    if rest:
        for token in rest.split(","):
            token = token.strip()
            if not token:
                continue
            key, _, value = token.partition("=")
            if not _:
                spec[key] = True
            elif value.lower() in ("true", "false"):
                spec[key] = value.lower() == "true"
            else:
                spec[key] = int(value)
    return spec


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = chunk samples.
REPRO_SIGNATURES = {
    "GrayCodec": {"width": "scalar dimensionless", "negated": "any"},
    "GrayCodec.encode": {"words": "(T,) dimensionless",
                         "return": "(T,) dimensionless"},
    "GrayCodec.decode": {"words": "(T,) dimensionless",
                         "return": "(T,) dimensionless"},
    "CorrelatorCodec": {
        "width": "scalar dimensionless",
        "n_channels": "scalar dimensionless",
        "negated": "any",
    },
    "CorrelatorCodec.encode": {"words": "(T,) dimensionless",
                               "return": "(T,) dimensionless"},
    "CorrelatorCodec.decode": {"coded": "(T,) dimensionless",
                               "return": "(T,) dimensionless"},
    "BusInvertCodec": {"width": "scalar dimensionless"},
    "BusInvertCodec.encode": {"words": "(T,) dimensionless",
                              "return": "(T,) dimensionless"},
    "BusInvertCodec.decode": {"coded": "(T,) dimensionless",
                              "return": "(T,) dimensionless"},
    "CouplingInvertCodec": {"width": "scalar dimensionless"},
    "CouplingInvertCodec.encode": {"words": "(T,) dimensionless",
                                   "return": "(T,) dimensionless"},
    "CouplingInvertCodec.decode": {"coded": "(T,) dimensionless",
                                   "return": "(T,) dimensionless"},
    "CacCodec": {"geometry": "TSVArrayGeometry", "include_diagonal": "any"},
    "CacCodec.encode": {"words": "(T,) dimensionless",
                        "return": "(T,) dimensionless"},
    "CacCodec.decode": {"coded": "(T,) dimensionless",
                        "return": "(T,) dimensionless"},
    # Concurrency discipline: the codebook cache is class-level state
    # shared by every link whose session constructs a CacCodec, and
    # sessions are built concurrently on executor threads.
    "@threads": ["CacCodec"],
    "@guards": ["CacCodec._codebook_cache guarded_by _cache_lock"],
    "@blocking": ["build_lat_codebook"],
    "CodecChain.encode": {"words": "(T,) dimensionless",
                          "return": "(T,) dimensionless"},
    "CodecChain.decode": {"words": "(T,) dimensionless",
                          "return": "(T,) dimensionless"},
    "build_codec": {
        "spec": "any",
        "width_in": "scalar dimensionless",
        "geometry": "TSVArrayGeometry",
        "return": "StreamCodec",
    },
    "build_chain": {
        "specs": "any",
        "width_in": "scalar dimensionless",
        "geometry": "TSVArrayGeometry",
        "return": "CodecChain",
    },
    "parse_codec_spec": {"text": "any"},
    # Exactness discipline (REP3xx): codeword streams on the wire are
    # exact integer words — a float temporary anywhere in a chain round
    # trip would corrupt the transition counts downstream.
    "@exact": [
        "CodecChain.encode return",
        "CodecChain.decode return",
    ],
}
