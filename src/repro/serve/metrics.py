"""Per-link serving metrics: counters, latency histograms, energy accounts.

Two kinds of observability live here:

* **operational** — request/word counters, queue depth, shed and
  deadline-missed counts, a windowed words/s meter, and a log-bucketed
  latency histogram reporting p50/p95/p99;
* **physical** — :class:`EnergyAccount`, which accumulates the *exact*
  sufficient statistics of the physical bit stream a link has carried
  (integer transition Gram matrix, integer ones counts, the boundary
  sample between batches) and prices them with
  :class:`~repro.core.fastpower.CompiledPowerModel`. Because every
  accumulated quantity is an integer exactly representable in float64,
  the account's reported power is *bit-identical* to an offline
  ``CompiledPowerModel(BitStatistics.from_stream(stream), cap).power()``
  over the concatenation of all batches — the live coded-vs-uncoded
  savings a server reports are the paper's numbers, not an estimate.

All classes are thread-safe: the engine updates them from worker threads
while the control plane snapshots them from the event loop.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro import constants
from repro.core.fastpower import CompiledPowerModel
from repro.stats.switching import BitStatistics
from repro.tsv.capmodel import LinearCapacitanceModel


#: Bucket boundaries shared by every latency histogram (seconds, 1 us ..
#: ~100 s, 8 per decade).  Module-level so fleet-level merges of
#: histograms recorded in different processes line up bucket for bucket.
_BUCKET_BOUNDS = np.logspace(-6.0, 2.0, 65)


def _percentile_from_counts(
    q: float, total: int, counts: np.ndarray, maximum: float
) -> float:
    """Percentile from one consistent (total, counts, max) snapshot."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in 0..100, got {q}")
    if total == 0:
        return 0.0
    bounds = _BUCKET_BOUNDS
    rank = q / 100.0 * total
    cumulative = 0
    for index, bucket in enumerate(counts):
        if bucket == 0:
            continue
        if cumulative + bucket >= rank:
            lo = bounds[index - 1] if index > 0 else 0.0
            hi = bounds[index] if index < len(bounds) else maximum
            fraction = (rank - cumulative) / bucket
            estimate = lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            # The true maximum is known exactly; never estimate past it.
            return float(min(estimate, maximum))
        cumulative += bucket
    return maximum


def _summary_from_counts(
    total: int, latency_sum: float, counts: np.ndarray, maximum: float
) -> Dict[str, float]:
    mean = latency_sum / total if total else 0.0
    return {
        "count": float(total),
        "mean_s": mean,
        "p50_s": _percentile_from_counts(50.0, total, counts, maximum),
        "p95_s": _percentile_from_counts(95.0, total, counts, maximum),
        "p99_s": _percentile_from_counts(99.0, total, counts, maximum),
        "max_s": maximum,
    }


def merge_latency_states(
    states: Sequence[Mapping[str, object]],
) -> Dict[str, float]:
    """Fold per-link histogram snapshots into one fleet-level summary.

    The fold is **commutative and order-invariant**: bucket counts and
    totals are integer sums, the maximum is a max, and the mean comes
    from :func:`math.fsum` over the per-histogram sums — fsum returns the
    correctly-rounded true sum, so any permutation of ``states`` (links
    arriving from workers in any order) produces the bit-identical
    summary.  That is what keeps the merge ``@deterministic`` under
    ``lint --exact`` even though workers answer stats races apart.
    """
    n_buckets = len(_BUCKET_BOUNDS) + 1
    counts = np.zeros(n_buckets, dtype=np.int64)
    total = 0
    maximum = 0.0
    sums: List[float] = []
    for state in states:
        if not isinstance(state, Mapping):
            raise ValueError(
                f"histogram state must be a mapping, "
                f"got {type(state).__name__}"
            )
        raw = state.get("counts")
        if raw is None:
            raise ValueError("histogram state is missing 'counts'")
        part = np.asarray(raw, dtype=np.int64)
        if part.shape != (n_buckets,):
            raise ValueError(
                f"histogram state needs {n_buckets} bucket counts, "
                f"got shape {part.shape}"
            )
        if (part < 0).any():
            raise ValueError("histogram bucket counts must be >= 0")
        counts += part
        total += int(state.get("total", int(part.sum())))
        maximum = max(maximum, float(state.get("max_s", 0.0)))
        sums.append(float(state.get("sum_s", 0.0)))
    return _summary_from_counts(total, math.fsum(sums), counts, maximum)


class LatencyHistogram:
    """Log-bucketed latency histogram with percentile estimation.

    Buckets span 1 us .. ~100 s with 8 buckets per decade; percentiles
    interpolate linearly inside the bucket, which is accurate to ~15 %
    everywhere — plenty for p50/p95/p99 serving dashboards.
    """

    def __init__(self) -> None:
        self._bounds = _BUCKET_BOUNDS  # seconds
        self._counts = np.zeros(len(self._bounds) + 1, dtype=np.int64)
        self._total = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        index = int(np.searchsorted(self._bounds, seconds, side="right"))
        with self._lock:
            self._counts[index] += 1
            self._total += 1
            self._sum += float(seconds)
            if seconds > self._max:
                self._max = float(seconds)

    @property
    def count(self) -> int:
        with self._lock:
            return self._total

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile latency in seconds (0..100)."""
        with self._lock:
            total = self._total
            counts = self._counts.copy()
            maximum = self._max
        return _percentile_from_counts(q, total, counts, maximum)

    def summary(self) -> Dict[str, float]:
        # One snapshot for everything, so p50 <= p95 <= p99 <= max even
        # while recorders are racing this reader.
        with self._lock:
            total, latency_sum = self._total, self._sum
            counts = self._counts.copy()
            maximum = self._max
        return _summary_from_counts(total, latency_sum, counts, maximum)

    def state_dict(self) -> Dict[str, object]:
        """Mergeable snapshot (see :func:`merge_latency_states`)."""
        with self._lock:
            return {
                "counts": [int(c) for c in self._counts],
                "total": int(self._total),
                "sum_s": float(self._sum),
                "max_s": float(self._max),
            }


class RateMeter:
    """Windowed event rate (words per second over the trailing window)."""

    def __init__(self, window_s: float = 10.0) -> None:
        self.window_s = float(window_s)
        self._events: List[tuple] = []  # (monotonic time, count)
        self._total = 0
        self._lock = threading.Lock()

    def add(self, count: int, now: Optional[float] = None) -> None:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._events.append((now, int(count)))
            self._total += int(count)
            self._prune(now)

    def _prune(self, now: float) -> None:
        cutoff = now - self.window_s
        drop = 0
        for stamp, _ in self._events:
            if stamp >= cutoff:
                break
            drop += 1
        if drop:
            del self._events[:drop]

    @property
    def total(self) -> int:
        with self._lock:
            return self._total

    def rate(self, now: Optional[float] = None) -> float:
        now = time.monotonic() if now is None else now
        with self._lock:
            self._prune(now)
            if not self._events:
                return 0.0
            span = now - self._events[0][0]
            count = sum(c for _, c in self._events)
        if span <= 0.0:
            return 0.0
        return count / span


class LinkMetrics:
    """Operational counters and gauges of one served link."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.batched_requests = 0
        self.words_encoded = 0
        self.words_decoded = 0
        self.shed = 0
        self.deadline_missed = 0
        self.errors = 0
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.max_batch_words = 0
        self.latency = LatencyHistogram()
        self.throughput = RateMeter()
        self.created_at = time.monotonic()

    def note_submitted(self, queue_depth: int) -> None:
        with self._lock:
            self.requests += 1
            self.queue_depth = queue_depth
            if queue_depth > self.max_queue_depth:
                self.max_queue_depth = queue_depth

    def note_queue_depth(self, queue_depth: int) -> None:
        with self._lock:
            self.queue_depth = queue_depth

    def note_shed(self) -> None:
        with self._lock:
            self.shed += 1

    def note_deadline_missed(self) -> None:
        with self._lock:
            self.deadline_missed += 1

    def note_error(self) -> None:
        with self._lock:
            self.errors += 1

    def note_batch(self, op: str, n_requests: int, n_words: int) -> None:
        with self._lock:
            self.batches += 1
            self.batched_requests += n_requests
            if n_words > self.max_batch_words:
                self.max_batch_words = n_words
            if op == "encode":
                self.words_encoded += n_words
            else:
                self.words_decoded += n_words
        self.throughput.add(n_words)

    def snapshot(self, include_histogram: bool = False) -> Dict[str, object]:
        """Counter/gauge snapshot; ``include_histogram`` adds the raw
        latency bucket state so a fleet front can merge per-link
        histograms with :func:`merge_latency_states`."""
        with self._lock:
            uptime = time.monotonic() - self.created_at
            batches = self.batches
            data = {
                "requests": self.requests,
                "batches": batches,
                "words_encoded": self.words_encoded,
                "words_decoded": self.words_decoded,
                "shed": self.shed,
                "deadline_missed": self.deadline_missed,
                "errors": self.errors,
                "queue_depth": self.queue_depth,
                "max_queue_depth": self.max_queue_depth,
                "max_batch_words": self.max_batch_words,
                "mean_batch_requests": (
                    self.batched_requests / batches if batches else 0.0
                ),
                "uptime_s": uptime,
            }
        data["words_per_s"] = self.throughput.rate()
        data["latency"] = self.latency.summary()
        if include_histogram:
            data["latency_state"] = self.latency.state_dict()
        return data


#: Row cap per float32 Gram slab.  Partial sums inside one SGEMM are
#: integers bounded by the slab length; 2**22 keeps them two orders of
#: magnitude inside float32's exact-integer range (2**24).
_GRAM_SLAB_ROWS = 1 << 22


class EnergyAccount:
    """Exact online energy accounting of one physical bit stream.

    Accumulates, across arbitrarily-sized batches, the integer moments
    that :meth:`BitStatistics.from_stream` would compute on the whole
    stream — the transition Gram matrix ``sum_t db_t db_t^T``, the ones
    count ``sum_t b_t`` and the sample count — keeping the last sample of
    the previous batch so inter-batch transitions are counted too. All
    entries stay exactly representable in float64 (they are bounded by
    the sample count), so :meth:`normalized_power` reproduces the offline

    ``CompiledPowerModel(BitStatistics.from_stream(stream), cap).power()``

    bit for bit.
    """

    def __init__(
        self,
        n_lines: int,
        capacitance: Union[np.ndarray, LinearCapacitanceModel],
    ) -> None:
        if n_lines < 1:
            raise ValueError(f"n_lines must be >= 1, got {n_lines}")
        self.n_lines = int(n_lines)
        self._capacitance = capacitance
        self._gram = np.zeros((n_lines, n_lines), dtype=np.int64)
        self._ones = np.zeros(n_lines, dtype=np.int64)
        self._n_samples = 0
        self._last: Optional[np.ndarray] = None
        self._lock = threading.Lock()

    def update(self, bits: np.ndarray) -> None:
        """Account one ``(batch, n_lines)`` physical bit batch."""
        bits = np.asarray(bits)
        if bits.ndim != 2 or bits.shape[1] != self.n_lines:
            raise ValueError(
                f"expected (batch, {self.n_lines}) bits, got {bits.shape}"
            )
        if bits.shape[0] == 0:
            return
        bits = bits.astype(np.uint8)
        with self._lock:
            if self._last is None:
                extended = bits
            else:
                extended = np.concatenate([self._last[None, :], bits])
            if extended.shape[0] >= 2:
                # Accumulate the transition Gram matrix through float32
                # SGEMM.  The deltas are exactly 0/±1, every product is
                # 0/±1, and each (blocked) partial sum is an integer
                # bounded by the slab length (2**22) — far inside the
                # 2**24 range where float32 holds integers exactly — so
                # the product is bit-equal to the int64 one, summation
                # order notwithstanding, at roughly 4x the throughput.
                levels = extended.astype(np.float32)
                deltas = levels[1:] - levels[:-1]
                for lo in range(0, deltas.shape[0], _GRAM_SLAB_ROWS):
                    slab = deltas[lo:lo + _GRAM_SLAB_ROWS]
                    gram = slab.T @ slab
                    self._gram += gram.astype(np.int64)  # repro: noqa[REP304] integer-valued float32 sums stay < 2**24, exact in any order
            self._ones += bits.sum(axis=0, dtype=np.int64)
            self._n_samples += bits.shape[0]
            self._last = bits[-1].copy()

    def state_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of the exact accumulated stream moments.

        Every entry is a plain int (the Gram matrix, ones counts, sample
        count and boundary sample are integers by construction), so the
        snapshot survives JSON and the checkpoint store losslessly and a
        :meth:`load_state_dict` restore continues the accounting
        bit-identically.
        """
        with self._lock:
            return {
                "n_lines": self.n_lines,
                "gram": [[int(x) for x in row] for row in self._gram],
                "ones": [int(x) for x in self._ones],
                "n_samples": int(self._n_samples),
                "last": (
                    None if self._last is None
                    else [int(x) for x in self._last]
                ),
            }

    def load_state_dict(self, state: Mapping[str, object]) -> None:
        """Restore a :meth:`state_dict` snapshot (exact inverse)."""
        if not isinstance(state, Mapping):
            raise ValueError(
                f"account state must be a mapping, got {type(state).__name__}"
            )
        n = self.n_lines
        if state.get("n_lines") != n:
            raise ValueError(
                f"account state is for {state.get('n_lines')!r} lines, "
                f"account has {n}"
            )
        # np.asarray raises TypeError on None/non-numeric input; keep
        # the whole validation surface ValueError so callers (e.g.
        # LinkSession.restore's atomic rollback) catch one family.
        try:
            gram = np.asarray(state.get("gram"), dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"account state 'gram' must be an integer matrix: {exc}"
            ) from None
        if gram.shape != (n, n):
            raise ValueError(
                f"account state 'gram' must be ({n}, {n}), "
                f"got shape {gram.shape}"
            )
        try:
            ones = np.asarray(state.get("ones"), dtype=np.int64)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"account state 'ones' must be an integer vector: {exc}"
            ) from None
        if ones.shape != (n,):
            raise ValueError(
                f"account state 'ones' must have {n} entries, "
                f"got shape {ones.shape}"
            )
        n_samples = state.get("n_samples")
        if not isinstance(n_samples, int) or isinstance(n_samples, bool) \
                or n_samples < 0:
            raise ValueError(
                f"account state 'n_samples' must be an int >= 0, "
                f"got {n_samples!r}"
            )
        if (ones < 0).any() or (ones > n_samples).any():
            raise ValueError(
                "account state 'ones' counts must be in 0..n_samples"
            )
        raw_last = state.get("last")
        last: Optional[np.ndarray] = None
        if raw_last is not None:
            try:
                last = np.asarray(raw_last, dtype=np.int64)
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"account state 'last' must be a bit vector: {exc}"
                ) from None
            if last.shape != (n,) or not np.isin(last, (0, 1)).all():
                raise ValueError(
                    f"account state 'last' must be {n} bits (0/1)"
                )
            last = last.astype(np.uint8)
        if (last is None) != (n_samples == 0):
            raise ValueError(
                "account state 'last' must be present exactly when "
                "n_samples > 0"
            )
        with self._lock:
            self._gram = gram.copy()
            self._ones = ones.copy()
            self._n_samples = n_samples
            self._last = last

    @property
    def n_samples(self) -> int:
        with self._lock:
            return self._n_samples

    @property
    def n_transitions(self) -> int:
        with self._lock:
            return max(0, self._n_samples - 1)

    def statistics(self) -> Optional[BitStatistics]:
        """The accumulated stream's :class:`BitStatistics`, or ``None``.

        Identical (to the last ulp) to ``BitStatistics.from_stream`` over
        the concatenated batches; ``None`` before two samples exist.
        """
        with self._lock:
            transitions = self._n_samples - 1
            if transitions < 1:
                return None
            coupling = self._gram / float(transitions)
            probabilities = self._ones / float(self._n_samples)
            n_samples = self._n_samples
        return BitStatistics(
            self_switching=np.diag(coupling).copy(),
            coupling=coupling,
            probabilities=probabilities,
            n_samples=n_samples,
        )

    def normalized_power(self) -> Optional[float]:
        """Normalized link power ``P_n`` [F] of the accumulated stream."""
        stats = self.statistics()
        if stats is None:
            return None
        return CompiledPowerModel(stats, self._capacitance).power()

    def report(
        self,
        vdd: float = constants.V_DD,
        frequency: float = constants.F_CLOCK,
    ) -> Dict[str, object]:
        power = self.normalized_power()
        return {
            "n_samples": self.n_samples,
            "normalized_power_farad": power,
            "power_mw": (
                None if power is None
                else 1.0e3 * power * vdd * vdd * frequency / 2.0
            ),
        }


#: Shape/unit signatures for the deep-lint flow pass (see
#: ``docs/static_analysis.md``). ``T`` = batch samples, ``N`` = lines.
REPRO_SIGNATURES = {
    "LatencyHistogram.record": {"seconds": "scalar second"},
    "LatencyHistogram.percentile": {
        "q": "scalar dimensionless",
        "return": "scalar second",
    },
    "RateMeter": {"window_s": "scalar second"},
    "RateMeter.add": {"count": "scalar dimensionless",
                      "now": "scalar second"},
    "RateMeter.rate": {"now": "scalar second",
                       "return": "scalar hertz"},
    "EnergyAccount": {
        "n_lines": "scalar dimensionless",
        "capacitance": "(N, N) farad spice | LinearCapacitanceModel",
    },
    "EnergyAccount.update": {"bits": "(T, N) bit"},
    "EnergyAccount.statistics": {"return": "BitStatistics"},
    "EnergyAccount.normalized_power": {"return": "scalar farad"},
    "EnergyAccount.n_lines": "scalar dimensionless",
    "EnergyAccount.n_samples": "scalar dimensionless",
    "EnergyAccount.n_transitions": "scalar dimensionless",
    # Concurrency discipline (see the REP2xx section of the docs): these
    # classes are updated from worker threads and snapshotted from the
    # event loop, so every mutable field is guarded by its owner's lock.
    "@threads": [
        "LatencyHistogram.record",
        "RateMeter.add",
        "LinkMetrics.note_batch",
        "EnergyAccount.update",
    ],
    "@guards": [
        "LatencyHistogram._counts guarded_by _lock",
        "LatencyHistogram._total guarded_by _lock",
        "LatencyHistogram._sum guarded_by _lock",
        "LatencyHistogram._max guarded_by _lock",
        "RateMeter._events guarded_by _lock",
        "RateMeter._total guarded_by _lock",
        "LinkMetrics.requests guarded_by _lock",
        "LinkMetrics.batches guarded_by _lock",
        "LinkMetrics.batched_requests guarded_by _lock",
        "LinkMetrics.words_encoded guarded_by _lock",
        "LinkMetrics.words_decoded guarded_by _lock",
        "LinkMetrics.shed guarded_by _lock",
        "LinkMetrics.deadline_missed guarded_by _lock",
        "LinkMetrics.errors guarded_by _lock",
        "LinkMetrics.queue_depth guarded_by _lock",
        "LinkMetrics.max_queue_depth guarded_by _lock",
        "LinkMetrics.max_batch_words guarded_by _lock",
        "EnergyAccount._gram guarded_by _lock",
        "EnergyAccount._ones guarded_by _lock",
        "EnergyAccount._n_samples guarded_by _lock",
        "EnergyAccount._last guarded_by _lock",
    ],
    # Exactness discipline (REP3xx): the energy tallies are the paper's
    # integer statistic — float contamination would break the bit-exact
    # online-vs-offline agreement the serve layer guarantees — and the
    # derived statistics/report must be reproducible for a given stream.
    "@exact": [
        "EnergyAccount._gram",
        "EnergyAccount._ones",
        "EnergyAccount._n_samples",
    ],
    "@deterministic": [
        "EnergyAccount.statistics",
        "EnergyAccount.report",
        # Fleet-level fold: integer bucket/total sums, max of maxima and
        # math.fsum (the correctly rounded true sum) make the merge a
        # commutative monoid — any merge order yields the same bits.
        "merge_latency_states",
        "EnergyAccount.state_dict",
    ],
}
