"""Synchronous pipelining client for the link server.

:class:`LinkClient` speaks :mod:`repro.serve.protocol` over a TCP or
unix socket from ordinary blocking code (examples, benchmarks, CLI). It
pipelines: requests carry client-chosen ids and responses are matched by
id, so :meth:`stream` keeps a window of chunks in flight instead of
paying a round trip per chunk.

Server-side failures surface as the *matching engine exception* when one
exists (:class:`~repro.serve.engine.OverloadedError`,
:class:`~repro.serve.engine.DeadlineExceededError`, ...) and as a generic
:class:`ServeError` otherwise, so client code handles overload and
deadline pressure with the same ``except`` clauses whether the engine is
in-process or across a socket.
"""

from __future__ import annotations

import logging
import os
import random
import socket
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serve import engine as _engine
from repro.serve.protocol import (
    payload_to_words,
    read_frame_blocking,
    words_to_payload,
    write_frame_blocking,
)
from repro.serve.session import LinkConfig

logger = logging.getLogger("repro.serve")

Address = Union[str, Tuple[str, int]]


class ServeError(RuntimeError):
    """A server-reported failure with no local exception class.

    Attributes
    ----------
    error:
        Exception class name reported by the server.
    """

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error


#: Server-side error names that map back onto local exception classes.
_ERROR_CLASSES: Dict[str, type] = {
    "UnknownLinkError": _engine.UnknownLinkError,
    "OverloadedError": _engine.OverloadedError,
    "DeadlineExceededError": _engine.DeadlineExceededError,
    "EngineClosedError": _engine.EngineClosedError,
}


def exception_from_header(header: Dict[str, Any]) -> Exception:
    """The local exception matching an ``ok: false`` response header."""
    error = str(header.get("error", "ServeError"))
    message = str(header.get("message", ""))
    cls = _ERROR_CLASSES.get(error)
    if cls is not None:
        return cls(message)
    return ServeError(error, message)


def _raise_server_error(header: Dict[str, Any]) -> None:
    raise exception_from_header(header)


#: Socket-level failures that a retrying client treats as "connection
#: lost, reconnect and replay" (``TimeoutError`` covers socket timeouts).
_CONNECTION_ERRORS = (EOFError, ConnectionError, TimeoutError, OSError)


class LinkClient:
    """One connection to a :class:`~repro.serve.server.LinkServer`.

    Not thread-safe: one client per thread (the server happily accepts
    many connections).

    Retries — **off by default** — are opted into with
    ``connect(..., retries=N)``. A retrying client introduces itself
    with a ``hello`` session token, so the server caches its responses;
    when the connection drops it reconnects with bounded exponential
    backoff plus jitter and **re-issues only the un-ACKed requests**
    (its request ids double as sequence numbers: anything without a
    response frame is re-sent, in id order, under the same id). The
    session cache answers re-issued requests the server already
    executed from the cache instead of executing them twice — that is
    what keeps a retried ``encode`` from advancing the codec history
    twice. A response marked ``retriable`` (an explicit
    not-applied NACK, e.g. fleet failover shedding) is also re-issued,
    up to the retry budget.

    Retriable NACKs compose with pipelining through the server's *order
    fence*: once the server sheds one request of a link's stream it
    keeps shedding every later data request of that link on this
    session until the shed requests are re-issued in id order — which is
    exactly the order NACKs arrive and :meth:`_receive` re-issues them
    in, so a re-issued chunk is never applied behind a later one. The
    client verifies the promise: a retriable NACK older than an
    already-ACKed request of the same link means the fence was broken
    (or the server predates it); re-issuing would fork the codec
    history, so the NACK surfaces as its exception instead.
    """

    def __init__(
        self,
        sock: socket.socket,
        address: Optional[Address] = None,
        timeout: Optional[float] = 30.0,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if retries and address is None:
            raise ValueError("retries need the server address to reconnect")
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0
        self._parked: Dict[int, Tuple[Dict[str, Any], bytes]] = {}
        self._address = address
        self._timeout = timeout
        self._retries = int(retries)
        self._backoff_base_s = float(backoff_base_s)
        self._backoff_max_s = float(backoff_max_s)
        #: Un-ACKed requests by id (only tracked when retrying): the
        #: replay set after a reconnect.
        self._outbox: "OrderedDict[int, Tuple[Dict[str, Any], bytes]]" = (
            OrderedDict()
        )
        self._nack_counts: Dict[int, int] = {}
        #: Highest request id ACKed ok per link (only tracked when
        #: retrying): the safety bound for retriable-NACK re-issue.
        self._link_acked: Dict[str, int] = {}
        self._session_token = os.urandom(8).hex() if retries else None
        # Deterministic per-session jitter (seeded stdlib RNG): spreads
        # concurrent reconnects without hurting reproducibility.
        self._rng = random.Random(self._session_token)

    @staticmethod
    def _open_socket(
        address: Address, timeout: Optional[float]
    ) -> socket.socket:
        if isinstance(address, tuple):
            sock = socket.create_connection(address, timeout=timeout)
        elif ":" in address:
            host, _, port = address.rpartition(":")
            sock = socket.create_connection((host, int(port)), timeout=timeout)
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address)
        if sock.family != socket.AF_UNIX:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock

    @classmethod
    def connect(
        cls,
        address: Address,
        timeout: Optional[float] = 30.0,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> "LinkClient":
        """Connect to ``(host, port)``, ``"host:port"`` or a unix path.

        ``retries`` opts into reconnect-and-replay (see the class
        docstring); the default ``0`` keeps the old fail-fast behavior.
        """
        client = cls(
            cls._open_socket(address, timeout),
            address=address,
            timeout=timeout,
            retries=retries,
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
        )
        if retries:
            client._hello()
        return client

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            # Best-effort flush: the peer may already be gone (severed
            # transport, dead server); close must not raise on teardown.
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "LinkClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- framing / recovery --------------------------------------------------

    def _hello(self) -> None:
        """Bind this connection to the client's session token.

        Written and read inline (not through ``_send``/``_receive``): a
        fresh connection has nothing else in flight, so the next frame
        *is* the hello response.
        """
        request_id = self._next_id
        self._next_id += 1
        write_frame_blocking(
            self._file,
            {"op": "hello", "session": self._session_token, "id": request_id},
            b"",
        )
        header, _ = read_frame_blocking(self._file)
        if not header.get("ok"):
            _raise_server_error(header)

    def _backoff(self, attempt: int) -> None:
        delay = min(
            self._backoff_base_s * (2 ** attempt), self._backoff_max_s
        )
        # Full jitter on the upper half keeps the bound while spreading
        # synchronized retriers.
        time.sleep(delay * (0.5 + 0.5 * self._rng.random()))

    def _recover(self, cause: BaseException) -> None:
        """Reconnect with backoff and replay the un-ACKed requests."""
        last: BaseException = cause
        for attempt in range(self._retries):
            self._backoff(attempt)
            try:
                self.close()
            except OSError:
                pass
            try:
                assert self._address is not None
                self._sock = self._open_socket(self._address, self._timeout)
                self._file = self._sock.makefile("rwb")
                self._hello()
                # Replay: every request without a response frame, in id
                # order, under its original id. The server's session
                # cache answers the ones it already executed; the rest
                # run fresh. Either way the stream is applied once.
                for request_id in sorted(self._outbox):
                    header, payload = self._outbox[request_id]
                    write_frame_blocking(self._file, header, payload)
                logger.warning(
                    "reconnected to %s after %s (replayed %d requests)",
                    self._address, cause, len(self._outbox),
                )
                return
            except _CONNECTION_ERRORS as exc:
                last = exc
        raise ConnectionError(
            f"could not reconnect to {self._address} after "
            f"{self._retries} retries"
        ) from last

    def _send(self, header: Dict[str, Any], payload: bytes = b"") -> int:
        request_id = self._next_id
        self._next_id += 1
        header = dict(header, id=request_id)
        if not self._retries:
            write_frame_blocking(self._file, header, payload)
            return request_id
        self._outbox[request_id] = (header, payload)
        try:
            write_frame_blocking(self._file, header, payload)
        except _CONNECTION_ERRORS as exc:
            self._recover(exc)
        return request_id

    def _receive(self, request_id: int) -> Tuple[Dict[str, Any], bytes]:
        """The response to ``request_id``, parking out-of-order arrivals."""
        while request_id not in self._parked:
            try:
                header, payload = read_frame_blocking(self._file)
            except _CONNECTION_ERRORS as exc:
                if not self._retries:
                    raise
                self._recover(exc)
                continue
            response_id = int(header.get("id", -1))
            frame = self._outbox.pop(response_id, None)
            if frame is not None and header.get("ok"):
                link = frame[0].get("link")
                if (
                    link is not None
                    and response_id > self._link_acked.get(link, -1)
                ):
                    self._link_acked[link] = response_id
            if (
                not header.get("ok")
                and header.get("retriable")
                and frame is not None
                and self._nack_counts.get(response_id, 0) < self._retries
                and self._reissue_safe(frame[0], response_id)
            ):
                # Explicit not-applied NACK (e.g. fleet failover
                # shedding): safe to re-issue the identical request.
                self._nack_counts[response_id] = (
                    self._nack_counts.get(response_id, 0) + 1
                )
                self._backoff(self._nack_counts[response_id] - 1)
                self._outbox[response_id] = frame
                try:
                    write_frame_blocking(self._file, frame[0], frame[1])
                except _CONNECTION_ERRORS as exc:
                    self._recover(exc)
                continue
            self._nack_counts.pop(response_id, None)
            self._parked[response_id] = (header, payload)
        header, payload = self._parked.pop(request_id)
        if not header.get("ok"):
            _raise_server_error(header)
        return header, payload

    def _reissue_safe(
        self, request_header: Dict[str, Any], response_id: int
    ) -> bool:
        """Whether a retriable NACK may be re-issued without reordering.

        The server's order fence (see the class docstring) promises no
        later request of the same link was — or will be — applied before
        the re-issue. A retriable NACK *older* than an ACKed request of
        its link breaks that promise; re-issuing it would append the
        chunk behind later ones and fork a stateful codec's history, so
        it must surface as an error instead.
        """
        link = request_header.get("link")
        if link is None:
            return True
        return response_id > self._link_acked.get(link, -1)

    def _call(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        return self._receive(self._send(header, payload))

    # -- control plane ------------------------------------------------------

    def ping(self) -> List[str]:
        """Server liveness check; returns the served link ids."""
        header, _ = self._call({"op": "ping"})
        return [str(x) for x in header.get("links", [])]

    def create_link(
        self, link: str, config: Union[LinkConfig, Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Create a link from a :class:`LinkConfig` (or its dict form)."""
        spec = config.to_dict() if isinstance(config, LinkConfig) else config
        header, _ = self._call(
            {"op": "create_link", "link": link, "config": spec}
        )
        return header.get("info", {})

    def drop_link(self, link: str) -> None:
        self._call({"op": "drop_link", "link": link})

    def reset(self, link: str) -> None:
        """Restart the link's stream (codec histories, energy accounts)."""
        self._call({"op": "reset", "link": link})

    def stats(self, link: Optional[str] = None) -> Dict[str, Any]:
        header, _ = self._call(
            {"op": "stats"} if link is None else {"op": "stats", "link": link}
        )
        return header.get("stats", {})

    # -- data plane ---------------------------------------------------------

    def encode(
        self,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Encode one chunk (single request, single response)."""
        return self._data("encode", link, words, deadline_s)

    def decode(
        self,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Decode one chunk (single request, single response)."""
        return self._data("decode", link, words, deadline_s)

    def _data(
        self,
        op: str,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float],
    ) -> np.ndarray:
        header: Dict[str, Any] = {"op": op, "link": link}
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        _, payload = self._call(header, words_to_payload(words))
        return payload_to_words(payload)

    def stream(
        self,
        link: str,
        words: np.ndarray,
        op: str = "encode",
        chunk_words: int = 4096,
        max_in_flight: int = 32,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Push a long stream through the link with pipelined chunks.

        Splits ``words`` into ``chunk_words``-sized requests and keeps up
        to ``max_in_flight`` of them outstanding; the result is the
        concatenated responses in stream order (codec chunk invariance
        makes it bit-identical to one giant request).
        """
        if chunk_words < 1:
            raise ValueError(f"chunk_words must be >= 1, got {chunk_words}")
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        words = np.asarray(words)
        header: Dict[str, Any] = {"op": op, "link": link}
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        pending: List[int] = []
        results: List[np.ndarray] = []

        def harvest() -> None:
            _, payload = self._receive(pending.pop(0))
            results.append(payload_to_words(payload))

        for start in range(0, len(words), chunk_words):
            chunk = words[start:start + chunk_words]
            while len(pending) >= max_in_flight:
                harvest()
            pending.append(
                self._send(header, words_to_payload(chunk))
            )
        while pending:
            harvest()
        if not results:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(results)
