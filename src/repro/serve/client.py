"""Synchronous pipelining client for the link server.

:class:`LinkClient` speaks :mod:`repro.serve.protocol` over a TCP or
unix socket from ordinary blocking code (examples, benchmarks, CLI). It
pipelines: requests carry client-chosen ids and responses are matched by
id, so :meth:`stream` keeps a window of chunks in flight instead of
paying a round trip per chunk.

Server-side failures surface as the *matching engine exception* when one
exists (:class:`~repro.serve.engine.OverloadedError`,
:class:`~repro.serve.engine.DeadlineExceededError`, ...) and as a generic
:class:`ServeError` otherwise, so client code handles overload and
deadline pressure with the same ``except`` clauses whether the engine is
in-process or across a socket.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.serve import engine as _engine
from repro.serve.protocol import (
    payload_to_words,
    read_frame_blocking,
    words_to_payload,
    write_frame_blocking,
)
from repro.serve.session import LinkConfig

Address = Union[str, Tuple[str, int]]


class ServeError(RuntimeError):
    """A server-reported failure with no local exception class.

    Attributes
    ----------
    error:
        Exception class name reported by the server.
    """

    def __init__(self, error: str, message: str) -> None:
        super().__init__(f"{error}: {message}")
        self.error = error


#: Server-side error names that map back onto local exception classes.
_ERROR_CLASSES: Dict[str, type] = {
    "UnknownLinkError": _engine.UnknownLinkError,
    "OverloadedError": _engine.OverloadedError,
    "DeadlineExceededError": _engine.DeadlineExceededError,
    "EngineClosedError": _engine.EngineClosedError,
}


def _raise_server_error(header: Dict[str, Any]) -> None:
    error = str(header.get("error", "ServeError"))
    message = str(header.get("message", ""))
    cls = _ERROR_CLASSES.get(error)
    if cls is not None:
        raise cls(message)
    raise ServeError(error, message)


class LinkClient:
    """One connection to a :class:`~repro.serve.server.LinkServer`.

    Not thread-safe: one client per thread (the server happily accepts
    many connections).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._file = sock.makefile("rwb")
        self._next_id = 0
        self._parked: Dict[int, Tuple[Dict[str, Any], bytes]] = {}

    @classmethod
    def connect(
        cls, address: Address, timeout: Optional[float] = 30.0
    ) -> "LinkClient":
        """Connect to ``(host, port)``, ``"host:port"`` or a unix path."""
        if isinstance(address, tuple):
            sock = socket.create_connection(address, timeout=timeout)
        elif ":" in address:
            host, _, port = address.rpartition(":")
            sock = socket.create_connection(
                (host, int(port)), timeout=timeout
            )
        else:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(address)
        if sock.family != socket.AF_UNIX:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return cls(sock)

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "LinkClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()

    # -- framing ------------------------------------------------------------

    def _send(self, header: Dict[str, Any], payload: bytes = b"") -> int:
        request_id = self._next_id
        self._next_id += 1
        header = dict(header, id=request_id)
        write_frame_blocking(self._file, header, payload)
        return request_id

    def _receive(self, request_id: int) -> Tuple[Dict[str, Any], bytes]:
        """The response to ``request_id``, parking out-of-order arrivals."""
        while request_id not in self._parked:
            header, payload = read_frame_blocking(self._file)
            self._parked[int(header.get("id", -1))] = (header, payload)
        header, payload = self._parked.pop(request_id)
        if not header.get("ok"):
            _raise_server_error(header)
        return header, payload

    def _call(
        self, header: Dict[str, Any], payload: bytes = b""
    ) -> Tuple[Dict[str, Any], bytes]:
        return self._receive(self._send(header, payload))

    # -- control plane ------------------------------------------------------

    def ping(self) -> List[str]:
        """Server liveness check; returns the served link ids."""
        header, _ = self._call({"op": "ping"})
        return [str(x) for x in header.get("links", [])]

    def create_link(
        self, link: str, config: Union[LinkConfig, Dict[str, Any]]
    ) -> Dict[str, Any]:
        """Create a link from a :class:`LinkConfig` (or its dict form)."""
        spec = config.to_dict() if isinstance(config, LinkConfig) else config
        header, _ = self._call(
            {"op": "create_link", "link": link, "config": spec}
        )
        return header.get("info", {})

    def drop_link(self, link: str) -> None:
        self._call({"op": "drop_link", "link": link})

    def reset(self, link: str) -> None:
        """Restart the link's stream (codec histories, energy accounts)."""
        self._call({"op": "reset", "link": link})

    def stats(self, link: Optional[str] = None) -> Dict[str, Any]:
        header, _ = self._call(
            {"op": "stats"} if link is None else {"op": "stats", "link": link}
        )
        return header.get("stats", {})

    # -- data plane ---------------------------------------------------------

    def encode(
        self,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Encode one chunk (single request, single response)."""
        return self._data("encode", link, words, deadline_s)

    def decode(
        self,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Decode one chunk (single request, single response)."""
        return self._data("decode", link, words, deadline_s)

    def _data(
        self,
        op: str,
        link: str,
        words: np.ndarray,
        deadline_s: Optional[float],
    ) -> np.ndarray:
        header: Dict[str, Any] = {"op": op, "link": link}
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        _, payload = self._call(header, words_to_payload(words))
        return payload_to_words(payload)

    def stream(
        self,
        link: str,
        words: np.ndarray,
        op: str = "encode",
        chunk_words: int = 4096,
        max_in_flight: int = 32,
        deadline_s: Optional[float] = None,
    ) -> np.ndarray:
        """Push a long stream through the link with pipelined chunks.

        Splits ``words`` into ``chunk_words``-sized requests and keeps up
        to ``max_in_flight`` of them outstanding; the result is the
        concatenated responses in stream order (codec chunk invariance
        makes it bit-identical to one giant request).
        """
        if chunk_words < 1:
            raise ValueError(f"chunk_words must be >= 1, got {chunk_words}")
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        words = np.asarray(words)
        header: Dict[str, Any] = {"op": op, "link": link}
        if deadline_s is not None:
            header["deadline_s"] = float(deadline_s)
        pending: List[int] = []
        results: List[np.ndarray] = []

        def harvest() -> None:
            _, payload = self._receive(pending.pop(0))
            results.append(payload_to_words(payload))

        for start in range(0, len(words), chunk_words):
            chunk = words[start:start + chunk_words]
            while len(pending) >= max_in_flight:
                harvest()
            pending.append(
                self._send(header, words_to_payload(chunk))
            )
        while pending:
            harvest()
        if not results:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(results)
